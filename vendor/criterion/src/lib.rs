//! Minimal vendored stand-in for the `criterion` crate.
//!
//! The build image has no registry access, so this workspace vendors the
//! slice of the criterion 0.5 API its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`], `Bencher::iter`,
//! `Bencher::iter_batched` (with [`BatchSize`]), [`black_box`], and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery it runs a short
//! fixed-budget timing loop per benchmark and prints one line with the
//! mean wall-clock time per iteration — enough to compare hot paths
//! between commits while keeping `cargo bench` fast and dependency-free.
//! Honors the `--bench` flag cargo passes and treats any other non-flag
//! CLI argument as a substring filter on benchmark names, like criterion.

use std::fmt;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Wall-clock budget per benchmark. Criterion defaults to seconds per
/// benchmark; the stand-in keeps whole suites cheap.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 1_000;

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Accepted wherever criterion takes "a benchmark id": a pre-built
/// [`BenchmarkId`] or anything displayable (e.g. `&str`).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl<T: fmt::Display> IntoBenchmarkId for T {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
        }
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct Bencher {
    iters: u64,
    total: Duration,
}

/// How criterion amortizes setup cost across a batch. The stand-in times
/// every routine call individually, so the variants only document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call outside the timed region.
        black_box(f());
        let budget_start = Instant::now();
        while self.iters < MAX_ITERS && budget_start.elapsed() < MEASURE_BUDGET {
            let t = Instant::now();
            black_box(f());
            self.total += t.elapsed();
            self.iters += 1;
        }
    }

    /// Runs `setup` outside the timed region before every `routine` call,
    /// for benchmarks whose subject consumes (or memoizes into) its input.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // One warm-up call outside the timed region.
        black_box(routine(setup()));
        let budget_start = Instant::now();
        while self.iters < MAX_ITERS && budget_start.elapsed() < MEASURE_BUDGET {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.total += t.elapsed();
            self.iters += 1;
        }
    }
}

pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench invokes the harness with `--bench`; skip flags and
        // take the first free argument as a name filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            pending_throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        self.run_one(&id.name, None, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &self,
        full_name: &str,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            iters: 0,
            total: Duration::ZERO,
        };
        f(&mut b);
        let mean = if b.iters > 0 {
            b.total / b.iters as u32
        } else {
            Duration::ZERO
        };
        let rate = match throughput {
            Some(Throughput::Elements(n)) if !mean.is_zero() => {
                format!("  thrpt: {:.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if !mean.is_zero() => {
                format!("  thrpt: {:.0} B/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{full_name:<60} time: {mean:>12.3?}  ({} iters){rate}",
            b.iters
        );
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    pending_throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the fixed time budget makes the
    /// criterion sample count irrelevant here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.pending_throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let full = format!("{}/{}", self.name, id.name);
        let throughput = self.pending_throughput;
        self.criterion.run_one(&full, throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.name);
        let throughput = self.pending_throughput;
        self.criterion.run_one(&full, throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion { filter: None };
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("smoke");
            g.throughput(Throughput::Elements(4));
            g.bench_with_input(BenchmarkId::new("double", 4), &4u64, |b, &n| {
                b.iter(|| black_box(n) * 2);
            });
            g.bench_function("count", |b| {
                b.iter(|| {
                    ran += 1;
                });
            });
            g.finish();
        }
        assert!(ran > 0, "bencher closure never ran");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            b.iter(|| ran = true);
        });
        assert!(!ran);
    }
}
