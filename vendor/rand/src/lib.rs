//! Minimal vendored stand-in for the `rand` crate.
//!
//! The build image has no access to a crate registry, so this workspace
//! vendors the small slice of the rand 0.8 API the repo actually uses:
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`Rng::gen`], [`SeedableRng`],
//! and [`rngs::SmallRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed on every platform, which
//! is exactly what the test suites and benchmarks require.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable generator. Only the `seed_from_u64` entry point is used by
/// this workspace, so that is all the stand-in provides.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] like in the real crate.
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`0..n`, `1..=m`, ...).
    ///
    /// Panics on an empty range, mirroring rand's behaviour.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        // 53 random bits -> uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Sample a value of a type with a standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types `Rng::gen` can produce (stand-in for `Standard: Distribution<T>`).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange {
    type Output;
    fn sample_single<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same family the real `SmallRng` uses on 64-bit
    /// targets. Deterministic across platforms for a given seed.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state is invalid for xoshiro; splitmix64 cannot
            // produce it from any seed, but keep the guard explicit.
            if s == [0; 4] {
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u32..=5);
            assert_eq!(y, 5);
            let z = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
