//! Minimal vendored stand-in for the `proptest` crate.
//!
//! The build image has no registry access, so this workspace vendors the
//! slice of the proptest 1.x API its property suites use: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], `prop::bool::ANY`, [`arbitrary::any`],
//! the `proptest!` macro with `#![proptest_config(..)]`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, on purpose:
//! * **No shrinking.** A failing case reports its seed and case index; the
//!   deterministic RNG makes every failure reproducible as-is.
//! * **Fully deterministic.** Each test derives its RNG stream from a
//!   fixed global seed, the test's module path and name, and the case
//!   index, so CI runs are bit-for-bit repeatable.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// Always produces a clone of the same value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Uniform random booleans (`prop::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.rng.gen::<bool>()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    /// `any::<T>()` — the full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    #[derive(Clone, Copy, Debug)]
    pub struct FullRange<T>(std::marker::PhantomData<T>);

    macro_rules! impl_arbitrary_uint {
        ($($t:ty => $via:ty),*) => {$(
            impl Strategy for FullRange<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen::<$via>() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;
                fn arbitrary() -> Self::Strategy {
                    FullRange(std::marker::PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                         i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64);

    impl Strategy for FullRange<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.rng.gen::<bool>()
        }
    }

    impl Arbitrary for bool {
        type Strategy = FullRange<bool>;
        fn arbitrary() -> Self::Strategy {
            FullRange(std::marker::PhantomData)
        }
    }
}

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Global seed for every property test in the workspace. Bump to
    /// explore a different deterministic sample of each property's space.
    pub const GLOBAL_SEED: u64 = 0x5EED_0001;

    /// The RNG handed to strategies. Wraps the vendored [`SmallRng`].
    pub struct TestRng {
        pub rng: SmallRng,
    }

    impl TestRng {
        /// Derive a reproducible stream from the test's identity and the
        /// case index: FNV-1a over the name, mixed with the global seed.
        pub fn deterministic(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let seed = h ^ GLOBAL_SEED.rotate_left(17) ^ ((case as u64) << 32 | case as u64);
            TestRng {
                rng: SmallRng::seed_from_u64(seed),
            }
        }
    }

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case (no shrinking in the stand-in).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
        #[allow(clippy::self_named_constructors)]
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// `prop::bool::ANY`, `prop::collection::vec`, ... — the crate root
    /// under its conventional prelude alias.
    pub use crate as prop;
}

/// Define deterministic property tests. Supports the subset of real
/// proptest syntax used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, flips in prop::collection::vec(prop::bool::ANY, 0..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategies = ($($strat,)*);
            for case in 0..config.cases {
                let mut test_rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let ($($pat,)*) =
                    $crate::strategy::Strategy::generate(&strategies, &mut test_rng);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    ::std::panic!(
                        "property {} failed at case {}/{} (global seed {:#x}): {}",
                        stringify!($name),
                        case,
                        config.cases,
                        $crate::test_runner::GLOBAL_SEED,
                        err
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($lhs), stringify!($rhs), lhs, rhs
                ),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                    stringify!($lhs), stringify!($rhs), lhs, rhs, format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($lhs), stringify!($rhs), lhs
                ),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: {:?}\n{}",
                    stringify!($lhs), stringify!($rhs), lhs, format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 10u32..=20) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((10..=20).contains(&y));
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(prop::bool::ANY, 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
        }

        #[test]
        fn flat_map_and_map_compose(
            pair in (1usize..4).prop_flat_map(|n| {
                prop::collection::vec(0usize..n, 1..=3).prop_map(move |v| (n, v))
            })
        ) {
            let (n, v) = pair;
            prop_assert!(v.iter().all(|&x| x < n), "n={} v={:?}", n, v);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0usize..100, crate::bool::ANY);
        let mut a = TestRng::deterministic("t", 0);
        let mut b = TestRng::deterministic("t", 0);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
