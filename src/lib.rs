//! # tie-breaking-datalog
//!
//! A complete Rust reproduction of Papadimitriou & Yannakakis,
//! *"Tie-Breaking Semantics and Structural Totality"*
//! (PODS 1992; JCSS 54, 1997): a Datalog-with-negation engine with
//!
//! * the **well-founded** interpreter (§2),
//! * the **pure** and **well-founded tie-breaking** interpreters (§3)
//!   with pluggable tie policies,
//! * fixpoint (supported-model) and stable-model checkers and exhaustive
//!   enumerators,
//! * stratified and perfect-model evaluation,
//! * the paper's structural analyses — program graph, stratification,
//!   **structural totality** (Theorem 2), useless predicates and the
//!   reduced program (Theorem 3), bounded totality oracles (§5),
//! * every proof construction as executable code: alphabetic variants,
//!   the monotone-circuit P-completeness reduction (Theorem 4), 2-counter
//!   machines and the undecidability reduction (Theorem 6), and the
//!   ∀∃-SAT Π₂ᵖ reduction (§5 Proposition).
//!
//! ## Quickstart
//!
//! ```
//! use tie_breaking_datalog::prelude::*;
//!
//! // The paper's archetypal structurally-total, unstratifiable program.
//! let engine = Engine::from_sources(
//!     "p(X) :- not q(X).\n q(X) :- not p(X).",
//!     "e(a).",
//! ).unwrap();
//!
//! assert!(engine.analyze().unwrap().structurally_total);
//! let out = engine.well_founded_tie_breaking(&mut RootTruePolicy).unwrap();
//! assert!(out.total);
//! ```
//!
//! The crates re-exported here can also be used individually:
//! [`ast`] (language front-end), [`graph`] (signed graphs and ties),
//! [`ground`] (ground graphs and `close`), [`core`] (semantics and
//! analyses), [`analyze`] (the pre-grounding static analyzer: safety
//! lints, totality certificates, grounding cost estimates),
//! [`runtime`] (the parallel session solver: ground once, close once,
//! serve many evaluations), [`trace`] (structured tracing and metrics
//! across every layer), and [`constructions`] (reductions and
//! generators).

pub use datalog_analyze as analyze;
pub use datalog_ast as ast;
pub use datalog_ground as ground;
pub use paper_constructions as constructions;
pub use signed_graph as graph;
pub use tiebreak_core as core;
pub use tiebreak_runtime as runtime;
pub use tiebreak_trace as trace;

/// The most commonly used items in one import.
pub mod prelude {
    pub use datalog_analyze::{
        analyze, AnalysisReport, AnalyzeConfig, CertificateGrade, Lint, LintCode, Severity,
        TotalityCertificate,
    };
    pub use datalog_ast::{
        parse_database, parse_program, Atom, Database, GroundAtom, Literal, Program,
        ProgramBuilder, Rule, Term,
    };
    pub use datalog_ground::{ground, GroundConfig, GroundMode, PartialModel, TruthValue};
    pub use tiebreak_core::analysis::{
        stratify, structural_nonuniform_totality, structural_totality, useless_predicates,
    };
    pub use tiebreak_core::semantics::{
        pure_tie_breaking, pure_tie_breaking_stratified, well_founded, well_founded_stratified,
        well_founded_tie_breaking, well_founded_tie_breaking_stratified, RandomPolicy,
        RootFalsePolicy, RootTruePolicy, ScriptedPolicy, TiePolicy,
    };
    pub use tiebreak_core::{
        Engine, EngineConfig, EvalMode, EvalOptions, Mutation, PrepareDelta, RuntimeConfig,
        SessionConfig,
    };
    pub use tiebreak_runtime::{uniform, PolicyFactory, Solver};
    pub use tiebreak_trace::{metrics, MetricsSnapshot, Trace};
}
