//! Interned identifiers.
//!
//! Every name in a program — predicate symbols, variable names, constant
//! symbols — is interned once in a process-global table and thereafter
//! represented by a 4-byte [`Symbol`]. Equality and hashing are integer
//! operations; the text is recovered with [`Symbol::as_str`].
//!
//! The table leaks its strings deliberately: interned names live for the
//! lifetime of the process (the set of distinct identifiers is bounded by
//! the input programs), and leaking lets `as_str` hand out `&'static str`
//! without reference-counting overhead. This is the standard compiler
//! interner design.
//!
//! Three transparent newtypes keep the kinds apart at compile time:
//! [`PredSym`] for predicate symbols, [`VarSym`] for variables, and
//! [`ConstSym`] for constants. Mixing them up is a type error, which is
//! load-bearing in the alphabetic-variant constructions where predicate
//! names survive but argument patterns are rewritten.

use std::fmt;
use std::sync::{Mutex, OnceLock};

use crate::fxhash::FxHashMap;

/// An interned string. Cheap to copy, compare, and hash.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: FxHashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: FxHashMap::default(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `text`, returning its canonical [`Symbol`].
    ///
    /// Interning the same text twice yields the same symbol.
    pub fn intern(text: &str) -> Self {
        let mut guard = interner().lock().expect("symbol interner poisoned");
        if let Some(&id) = guard.map.get(text) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(text.to_owned().into_boxed_str());
        let id = u32::try_from(guard.strings.len()).expect("interner overflow: > 2^32 symbols");
        guard.strings.push(leaked);
        guard.map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned text.
    pub fn as_str(self) -> &'static str {
        let guard = interner().lock().expect("symbol interner poisoned");
        guard.strings[self.0 as usize]
    }

    /// The raw interner index. Stable within a process run only.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(text: &str) -> Self {
        Symbol::intern(text)
    }
}

macro_rules! symbol_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub Symbol);

        impl $name {
            /// Interns `text` as this kind of identifier.
            pub fn new(text: &str) -> Self {
                Self(Symbol::intern(text))
            }

            /// The interned text.
            pub fn as_str(self) -> &'static str {
                self.0.as_str()
            }

            /// The underlying generic [`Symbol`].
            pub fn symbol(self) -> Symbol {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:?})"), self.as_str())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }

        impl From<&str> for $name {
            fn from(text: &str) -> Self {
                Self::new(text)
            }
        }
    };
}

symbol_newtype! {
    /// A predicate symbol (e.g. the `p` in `p(X, a)`).
    PredSym
}

symbol_newtype! {
    /// A variable name (e.g. the `X` in `p(X, a)`).
    VarSym
}

symbol_newtype! {
    /// A constant symbol (e.g. the `a` in `p(X, a)`).
    ConstSym
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("edge");
        let b = Symbol::intern("edge");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "edge");
    }

    #[test]
    fn distinct_texts_distinct_symbols() {
        assert_ne!(Symbol::intern("p"), Symbol::intern("q"));
    }

    #[test]
    fn newtypes_share_the_interner_but_not_the_type() {
        let p = PredSym::new("shared");
        let c = ConstSym::new("shared");
        // Same underlying symbol...
        assert_eq!(p.symbol(), c.symbol());
        // ...but the newtypes cannot be compared directly (compile-time
        // property; this test documents the runtime view).
        assert_eq!(p.as_str(), c.as_str());
    }

    #[test]
    fn display_matches_text() {
        let v = VarSym::new("X1");
        assert_eq!(v.to_string(), "X1");
        assert_eq!(format!("{v:?}"), "VarSym(\"X1\")");
    }

    #[test]
    fn many_symbols_survive() {
        let syms: Vec<Symbol> = (0..1000)
            .map(|i| Symbol::intern(&format!("s{i}")))
            .collect();
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(s.as_str(), format!("s{i}"));
        }
    }
}
