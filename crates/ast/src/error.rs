//! Error types for the language front-end.

use std::fmt;

use crate::symbol::PredSym;

/// A source position (1-based line and column).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A parse error with position information.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Where the error was detected.
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(pos: Pos, message: impl Into<String>) -> Self {
        ParseError {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A semantic validation error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ValidationError {
    /// A predicate was used with two different arities.
    ArityMismatch {
        /// The offending predicate.
        pred: PredSym,
        /// The arity seen first.
        first: usize,
        /// The conflicting arity.
        second: usize,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::ArityMismatch {
                pred,
                first,
                second,
            } => write!(
                f,
                "predicate `{pred}` used with conflicting arities {first} and {second}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Any front-end error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AstError {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// Semantic validation failed.
    Validation(ValidationError),
}

impl fmt::Display for AstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AstError::Parse(e) => e.fmt(f),
            AstError::Validation(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for AstError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AstError::Parse(e) => Some(e),
            AstError::Validation(e) => Some(e),
        }
    }
}

impl From<ParseError> for AstError {
    fn from(e: ParseError) -> Self {
        AstError::Parse(e)
    }
}

impl From<ValidationError> for AstError {
    fn from(e: ValidationError) -> Self {
        AstError::Validation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let pe = ParseError::new(Pos { line: 3, col: 7 }, "expected `.`");
        assert_eq!(pe.to_string(), "parse error at 3:7: expected `.`");
        let ve = ValidationError::ArityMismatch {
            pred: PredSym::new("p"),
            first: 1,
            second: 2,
        };
        assert_eq!(
            ve.to_string(),
            "predicate `p` used with conflicting arities 1 and 2"
        );
        let ae: AstError = pe.into();
        assert!(ae.to_string().contains("3:7"));
    }
}
