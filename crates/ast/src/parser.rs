//! Recursive-descent parser for Datalog¬ programs and fact files.
//!
//! Grammar:
//!
//! ```text
//! program  ::= clause* EOF
//! clause   ::= atom ( ":-" literal ("," literal)* )? "."
//! literal  ::= ("not" | "!" | "~")? atom
//! atom     ::= IDENT ( "(" term ("," term)* ")" )?
//! term     ::= IDENT            -- uppercase/underscore ⇒ variable
//! ```
//!
//! [`parse_program`] accepts the full grammar; [`parse_database`] accepts
//! only ground facts and produces a [`Database`].

use crate::atom::{Atom, Literal};
use crate::database::Database;
use crate::error::{AstError, ParseError, Pos};
use crate::lexer::{lex, Spanned, Token};
use crate::program::{Program, RuleSpan};
use crate::rule::Rule;
use crate::term::Term;

struct Parser {
    tokens: Vec<Spanned>,
    at: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: lex(input)?,
            at: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.at].token
    }

    fn pos(&self) -> Pos {
        self.tokens[self.at].pos
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.at].token.clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(ParseError::new(
                self.pos(),
                format!("expected {what}, found {}", self.peek()),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(ParseError::new(
                self.pos(),
                format!("expected {what}, found {other}"),
            )),
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let name = self.ident("a predicate name")?;
        let mut args = Vec::new();
        if *self.peek() == Token::LParen {
            self.bump();
            loop {
                let t = self.ident("a term")?;
                args.push(Term::from_text(&t));
                match self.peek() {
                    Token::Comma => {
                        self.bump();
                    }
                    Token::RParen => {
                        self.bump();
                        break;
                    }
                    other => {
                        return Err(ParseError::new(
                            self.pos(),
                            format!("expected `,` or `)`, found {other}"),
                        ))
                    }
                }
            }
        }
        Ok(Atom::new(name.as_str(), args))
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        if *self.peek() == Token::Not {
            self.bump();
            Ok(Literal::neg(self.atom()?))
        } else {
            Ok(Literal::pos(self.atom()?))
        }
    }

    fn clause(&mut self) -> Result<(Rule, RuleSpan), ParseError> {
        let head_pos = self.pos();
        let head = self.atom()?;
        let mut body = Vec::new();
        let mut literal_positions = Vec::new();
        if *self.peek() == Token::Arrow {
            self.bump();
            loop {
                literal_positions.push(self.pos());
                body.push(self.literal()?);
                if *self.peek() == Token::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::Dot, "`.` terminating the clause")
            .map_err(|e| {
                ParseError::new(
                    e.pos,
                    format!("{} (clause starting at {head_pos})", e.message),
                )
            })?;
        let span = RuleSpan {
            rule: head_pos,
            literals: literal_positions,
        };
        Ok((Rule::new(head, body), span))
    }

    fn program(&mut self) -> Result<Vec<(Rule, RuleSpan)>, ParseError> {
        let mut rules = Vec::new();
        while *self.peek() != Token::Eof {
            rules.push(self.clause()?);
        }
        Ok(rules)
    }
}

/// Parses a Datalog¬ program from text.
///
/// # Errors
///
/// [`AstError::Parse`] on syntax errors; [`AstError::Validation`] if a
/// predicate occurs with inconsistent arities.
pub fn parse_program(input: &str) -> Result<Program, AstError> {
    let mut span = tiebreak_trace::span("parse", "parse_program", &[("bytes", input.len() as u64)]);
    let rules = Parser::new(input)?.program()?;
    span.arg("rules", rules.len() as u64);
    Ok(Program::with_spans(rules)?)
}

/// Parses a database (fact file): every clause must be a ground fact.
///
/// # Errors
///
/// [`AstError::Parse`] on syntax errors or non-fact clauses;
/// [`AstError::Validation`] on arity conflicts.
pub fn parse_database(input: &str) -> Result<Database, AstError> {
    let _span = tiebreak_trace::span("parse", "parse_database", &[("bytes", input.len() as u64)]);
    let mut parser = Parser::new(input)?;
    let mut db = Database::new();
    while *parser.peek() != Token::Eof {
        let pos = parser.pos();
        let (rule, _span) = parser.clause()?;
        if !rule.is_fact() {
            return Err(ParseError::new(pos, "expected a fact (no `:-` in fact files)").into());
        }
        let Some(ground) = rule.head.to_ground() else {
            return Err(ParseError::new(pos, "facts must be ground (no variables)").into());
        };
        db.insert(ground)?;
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_win_move() {
        let p = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(
            p.rules()[0].to_string(),
            "win(X) :- move(X, Y), not win(Y)."
        );
    }

    #[test]
    fn parses_propositional_rules() {
        // The paper's §3 example: p ← p, ¬q ; q ← q, ¬p.
        let p = parse_program("p :- p, not q.\nq :- q, not p.").unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.rules()[0].to_string(), "p :- p, not q.");
        assert!(p.is_idb("p".into()));
        assert!(p.is_idb("q".into()));
    }

    #[test]
    fn parses_facts_and_alternative_negations() {
        let p = parse_program("e(a, b).\np(X) :- e(X, Y), !q(Y), ~r(X).").unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.rules()[0].is_fact());
        assert_eq!(p.rules()[1].body[1].to_string(), "not q(Y)");
        assert_eq!(p.rules()[1].body[2].to_string(), "not r(X)");
    }

    #[test]
    fn round_trips_through_display() {
        let src = "win(X) :- move(X, Y), not win(Y).\nmove(a, b).\n";
        let p = parse_program(src).unwrap();
        let p2 = parse_program(&p.to_string()).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn missing_dot_is_an_error() {
        let err = parse_program("p :- q").unwrap_err();
        assert!(err.to_string().contains('.'));
    }

    #[test]
    fn arity_mismatch_is_a_validation_error() {
        let err = parse_program("p(a).\np(a, b).").unwrap_err();
        assert!(matches!(err, AstError::Validation(_)));
    }

    #[test]
    fn database_accepts_ground_facts_only() {
        let db = parse_database("e(a, b).\ne(b, c).\nzero(0).").unwrap();
        assert_eq!(db.len(), 3);
        assert!(parse_database("p(X).").is_err());
        assert!(parse_database("p :- q.").is_err());
    }

    #[test]
    fn empty_input_is_an_empty_program() {
        let p = parse_program("  % only a comment\n").unwrap();
        assert!(p.is_empty());
        let db = parse_database("").unwrap();
        assert!(db.is_empty());
    }

    #[test]
    fn error_positions_point_at_the_problem() {
        let err = parse_program("p(X) :- q(X)\nr(a).").unwrap_err();
        let AstError::Parse(pe) = err else {
            panic!("expected parse error")
        };
        assert_eq!(pe.pos.line, 2);
    }

    #[test]
    fn parsed_rules_carry_spans() {
        let p = parse_program("e(a).\nwin(X) :-\n  move(X, Y), not win(Y).").unwrap();
        let s0 = p.span(0).unwrap();
        assert_eq!((s0.rule.line, s0.rule.col), (1, 1));
        assert!(s0.literals.is_empty());
        let s1 = p.span(1).unwrap();
        assert_eq!((s1.rule.line, s1.rule.col), (2, 1));
        assert_eq!(s1.literals.len(), 2);
        assert_eq!(s1.literals[0].line, 3);
        // The negated literal's span points at its `not`.
        assert_eq!(s1.literals[1].line, 3);
        assert!(s1.literals[1].col > s1.literals[0].col);
    }

    #[test]
    fn duplicate_clauses_collapse_with_positions() {
        let p = parse_program("p :- q.\nr.\np :- q.\n").unwrap();
        assert_eq!(p.len(), 2);
        let dups = p.duplicate_rules();
        assert_eq!(dups.len(), 1);
        assert_eq!(dups[0].kept, 0);
        assert_eq!(dups[0].span.as_ref().unwrap().rule.line, 3);
    }

    #[test]
    fn empty_argument_list_is_rejected() {
        // Zero-arity atoms are written without parentheses; `p()` is a
        // syntax error, not an empty tuple.
        let err = parse_program("p() :- q.").unwrap_err();
        assert!(err.to_string().contains("term"), "{err}");
    }

    #[test]
    fn not_is_reserved() {
        // `not` always lexes as the negation keyword, so it cannot name a
        // predicate.
        assert!(parse_program("not :- p.").is_err());
        assert!(parse_program("p :- not not q.").is_err());
    }

    #[test]
    fn dangling_comma_in_body_is_rejected() {
        let err = parse_program("p :- q, .").unwrap_err();
        assert!(matches!(err, AstError::Parse(_)));
    }
}
