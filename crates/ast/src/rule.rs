//! Rules: `head :- body`.
//!
//! A rule `A ← L1, …, Ls` has an atom head and a body of literals
//! (paper, Section 2). A rule with an empty body is a *fact*.

use std::fmt;

use crate::atom::{Atom, Literal, Sign};
use crate::fxhash::FxHashSet;
use crate::symbol::{ConstSym, VarSym};

/// A Datalog¬ rule.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// The body literals, in source order.
    pub body: Vec<Literal>,
}

impl Rule {
    /// Constructs a rule.
    pub fn new(head: Atom, body: impl IntoIterator<Item = Literal>) -> Self {
        Rule {
            head,
            body: body.into_iter().collect(),
        }
    }

    /// Constructs a fact (empty body).
    pub fn fact(head: Atom) -> Self {
        Rule {
            head,
            body: Vec::new(),
        }
    }

    /// `true` iff the body is empty.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// The distinct variables of the rule, in first-occurrence order
    /// (head first, then body left to right).
    ///
    /// The order is significant: the grounder substitutes constant tuples
    /// positionally against this list, and rule-node identities in the
    /// ground graph are keyed by it.
    pub fn variables(&self) -> Vec<VarSym> {
        let mut seen: FxHashSet<VarSym> = FxHashSet::default();
        let mut out = Vec::new();
        let mut push = |v: VarSym| {
            if seen.insert(v) {
                out.push(v);
            }
        };
        for v in self.head.variables() {
            push(v);
        }
        for lit in &self.body {
            for v in lit.atom.variables() {
                push(v);
            }
        }
        out
    }

    /// The distinct constants of the rule (head and body).
    pub fn constants(&self) -> Vec<ConstSym> {
        let mut seen: FxHashSet<ConstSym> = FxHashSet::default();
        let mut out = Vec::new();
        for c in self
            .head
            .constants()
            .chain(self.body.iter().flat_map(|l| l.atom.constants()))
        {
            if seen.insert(c) {
                out.push(c);
            }
        }
        out
    }

    /// `true` iff head and all body atoms are ground.
    pub fn is_ground(&self) -> bool {
        self.head.is_ground() && self.body.iter().all(|l| l.atom.is_ground())
    }

    /// `true` iff some body literal is negative.
    pub fn has_negation(&self) -> bool {
        self.body.iter().any(Literal::is_neg)
    }

    /// Iterates over body literals of the given sign.
    pub fn body_with_sign(&self, sign: Sign) -> impl Iterator<Item = &Literal> {
        self.body.iter().filter(move |l| l.sign == sign)
    }

    /// *Safety* (range restriction): every head variable and every variable
    /// of a negative body literal also occurs in some positive body
    /// literal.
    ///
    /// The paper's semantics do not require safety — the ground graph
    /// quantifies over the whole universe — but safe rules are the ones for
    /// which semi-naive evaluation of positive strata terminates without
    /// universe-relative complementation, so the analysis is provided.
    pub fn is_safe(&self) -> bool {
        let positive: FxHashSet<VarSym> = self
            .body_with_sign(Sign::Pos)
            .flat_map(|l| l.atom.variables())
            .collect();
        let needs: Vec<VarSym> = self
            .head
            .variables()
            .chain(
                self.body_with_sign(Sign::Neg)
                    .flat_map(|l| l.atom.variables()),
            )
            .collect();
        needs.into_iter().all(|v| positive.contains(&v))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.head.fmt(f)?;
        if !self.body.is_empty() {
            f.write_str(" :- ")?;
            for (i, lit) in self.body.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                lit.fmt(f)?;
            }
        }
        f.write_str(".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(text_head: (&str, &[&str]), body: &[(bool, &str, &[&str])]) -> Rule {
        Rule::new(
            Atom::from_texts(text_head.0, text_head.1),
            body.iter().map(|(pos, p, args)| {
                let a = Atom::from_texts(p, args);
                if *pos {
                    Literal::pos(a)
                } else {
                    Literal::neg(a)
                }
            }),
        )
    }

    #[test]
    fn variables_in_first_occurrence_order() {
        // win(X) :- move(X, Y), not win(Y).
        let r = rule(
            ("win", &["X"]),
            &[(true, "move", &["X", "Y"]), (false, "win", &["Y"])],
        );
        let vars: Vec<&str> = r.variables().iter().map(|v| v.as_str()).collect();
        assert_eq!(vars, vec!["X", "Y"]);
    }

    #[test]
    fn paper_program_1() {
        // P(a) :- not P(X), E(b).   — program (1) of the paper.
        let r = rule(("p", &["a"]), &[(false, "p", &["X"]), (true, "e", &["b"])]);
        assert_eq!(r.variables().len(), 1);
        let consts: Vec<&str> = r.constants().iter().map(|c| c.as_str()).collect();
        assert_eq!(consts, vec!["a", "b"]);
        assert!(r.has_negation());
        assert!(!r.is_ground());
        // Unsafe: head constant is fine, but X occurs only negatively.
        assert!(!r.is_safe());
    }

    #[test]
    fn fact_properties() {
        let f = Rule::fact(Atom::from_texts("e", &["a", "b"]));
        assert!(f.is_fact());
        assert!(f.is_ground());
        assert!(!f.has_negation());
        assert!(f.is_safe());
        assert_eq!(f.to_string(), "e(a, b).");
    }

    #[test]
    fn display_full_rule() {
        let r = rule(
            ("win", &["X"]),
            &[(true, "move", &["X", "Y"]), (false, "win", &["Y"])],
        );
        assert_eq!(r.to_string(), "win(X) :- move(X, Y), not win(Y).");
    }

    #[test]
    fn safety_requires_head_vars_positive() {
        let r = rule(("p", &["X"]), &[(true, "q", &["X"])]);
        assert!(r.is_safe());
        let r = rule(("p", &["X"]), &[(true, "q", &["Y"])]);
        assert!(!r.is_safe());
    }
}
