//! Language front-end for Datalog with negation.
//!
//! This crate provides the syntactic substrate of the reproduction of
//! Papadimitriou & Yannakakis, *"Tie-Breaking Semantics and Structural
//! Totality"* (PODS 1992 / JCSS 1997):
//!
//! * interned [`Symbol`]s with the [`PredSym`] / [`VarSym`] / [`ConstSym`]
//!   newtype family,
//! * the AST: [`Term`], [`Atom`], [`Literal`], [`Rule`], [`Program`],
//! * a lexer and parser for the concrete syntax
//!   `p(X, Y) :- q(X), not r(Y).`,
//! * [`Skeleton`]s (the paper's "propositional forms"), which define the
//!   *alphabetic variant* relation of Section 4,
//! * finite [`Database`]s of ground facts with universe extraction,
//! * a [`ProgramBuilder`] for programmatic construction.
//!
//! The paper's conventions are followed exactly: a predicate is *IDB*
//! ("intentional") iff it appears in the head of some rule, and *EDB*
//! ("extensional") otherwise; the universe *U* of a program/database pair is
//! the set of all constants appearing in either.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod atom;
pub mod builder;
pub mod database;
pub mod display;
pub mod error;
pub mod fxhash;
pub mod lexer;
pub mod parser;
pub mod program;
pub mod rule;
pub mod skeleton;
pub mod symbol;
pub mod term;

pub use atom::{Atom, GroundAtom, Literal, Sign};
pub use builder::ProgramBuilder;
pub use database::{Database, Relation, Tuple};
pub use error::{AstError, ParseError, Pos, ValidationError};
pub use fxhash::{FxHashMap, FxHashSet};
pub use parser::{parse_database, parse_program};
pub use program::{DuplicateRule, PredInfo, Program, RuleSpan};
pub use rule::Rule;
pub use skeleton::{Skeleton, SkeletonRule};
pub use symbol::{ConstSym, PredSym, Symbol, VarSym};
pub use term::Term;
