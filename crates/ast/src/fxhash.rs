//! A fast, non-cryptographic hasher for interned identifiers.
//!
//! Grounding and joins hash small integer keys (interned [`Symbol`]s and
//! tuples of them) in hot loops. SipHash — the standard-library default —
//! is needlessly slow for that workload, so we bundle the classic "Fx" hash
//! (the multiply–rotate–xor scheme popularized by Firefox and rustc) rather
//! than pulling in an external crate. HashDoS resistance is irrelevant
//! here: keys are program-derived, not attacker-controlled.
//!
//! [`Symbol`]: crate::symbol::Symbol

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Fx hash (64-bit golden-ratio based).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hasher state: a single 64-bit accumulator.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// A `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx hash. Drop-in for `std::collections::HashMap`.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the Fx hash. Drop-in for `std::collections::HashSet`.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(b"tie-breaking"), hash_of(b"tie-breaking"));
    }

    #[test]
    fn distinguishes_simple_inputs() {
        assert_ne!(hash_of(b"p"), hash_of(b"q"));
        assert_ne!(hash_of(b""), hash_of(b"\0"));
        // Length is mixed into the tail word, so zero padding is not free.
        assert_ne!(hash_of(&[0, 0, 0]), hash_of(&[0, 0, 0, 0]));
    }

    #[test]
    fn integer_writes_differ_from_each_other() {
        let mut a = FxHasher::default();
        a.write_u32(7);
        let mut b = FxHasher::default();
        b.write_u32(8);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m[&1], "one");
        let mut s: FxHashSet<&str> = FxHashSet::default();
        s.insert("p");
        assert!(s.contains("p"));
        assert!(!s.contains("q"));
    }
}
