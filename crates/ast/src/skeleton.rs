//! Skeletons: the paper's "propositional forms".
//!
//! Section 4 of the paper: *"For each Datalog program Π, we define its
//! skeleton (or propositional form) to be Π with all parentheses,
//! variables, and constants omitted."* Two programs are **alphabetic
//! variants** of one another iff they have the same skeleton, and a
//! program is *structurally total* iff all programs with its skeleton are
//! total.
//!
//! A skeleton is itself a propositional program (all predicates of arity
//! zero); [`Skeleton::to_propositional`] realizes it as such, which is how
//! the useless-predicate analysis of Theorem 3 runs the well-founded
//! machinery "on the skeleton".

use std::fmt;

use crate::atom::{Atom, Literal, Sign};
use crate::program::Program;
use crate::rule::Rule;
use crate::symbol::PredSym;

/// One skeleton rule: the head predicate and the signed body predicates.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SkeletonRule {
    /// Head predicate symbol.
    pub head: PredSym,
    /// Signed body predicate occurrences, in source order.
    pub body: Vec<(Sign, PredSym)>,
}

impl SkeletonRule {
    /// `true` iff some body occurrence is negative.
    pub fn has_negation(&self) -> bool {
        self.body.iter().any(|(s, _)| s.is_neg())
    }
}

impl fmt::Display for SkeletonRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.head.fmt(f)?;
        if !self.body.is_empty() {
            f.write_str(" :- ")?;
            for (i, (sign, pred)) in self.body.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                if sign.is_neg() {
                    f.write_str("not ")?;
                }
                pred.fmt(f)?;
            }
        }
        f.write_str(".")
    }
}

/// The skeleton of a program: its rules with arguments erased.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Skeleton {
    /// Skeleton rules, in the source order of the original program.
    pub rules: Vec<SkeletonRule>,
}

impl Skeleton {
    /// Computes the skeleton of `program`.
    pub fn of_program(program: &Program) -> Self {
        Skeleton {
            rules: program
                .rules()
                .iter()
                .map(|r| SkeletonRule {
                    head: r.head.pred,
                    body: r.body.iter().map(|l| (l.sign, l.atom.pred)).collect(),
                })
                .collect(),
        }
    }

    /// Number of skeleton rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` iff no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The head predicates (IDB predicates of any realization).
    pub fn idb_predicates(&self) -> Vec<PredSym> {
        let mut seen = crate::fxhash::FxHashSet::default();
        let mut out = Vec::new();
        for r in &self.rules {
            if seen.insert(r.head) {
                out.push(r.head);
            }
        }
        out
    }

    /// All predicates, heads first then body occurrences, deduplicated in
    /// first-occurrence order.
    pub fn predicates(&self) -> Vec<PredSym> {
        let mut seen = crate::fxhash::FxHashSet::default();
        let mut out = Vec::new();
        for r in &self.rules {
            if seen.insert(r.head) {
                out.push(r.head);
            }
            for &(_, p) in &r.body {
                if seen.insert(p) {
                    out.push(p);
                }
            }
        }
        out
    }

    /// Realizes the skeleton as a propositional program (every predicate
    /// nullary). This is the canonical *alphabetic variant of arity zero*,
    /// used by the useless-predicate analysis of Theorem 3.
    pub fn to_propositional(&self) -> Program {
        let rules: Vec<Rule> = self
            .rules
            .iter()
            .map(|sr| {
                Rule::new(
                    Atom::new(sr.head, std::iter::empty()),
                    sr.body.iter().map(|&(sign, pred)| Literal {
                        sign,
                        atom: Atom::new(pred, std::iter::empty()),
                    }),
                )
            })
            .collect();
        Program::new(rules).expect("skeleton realization cannot have arity mismatches")
    }
}

impl fmt::Display for Skeleton {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, Literal};

    fn program_1() -> Program {
        // P(a) :- not P(X), E(b).         — paper's program (1)
        let r = Rule::new(
            Atom::from_texts("p", &["a"]),
            vec![
                Literal::neg(Atom::from_texts("p", &["X"])),
                Literal::pos(Atom::from_texts("e", &["b"])),
            ],
        );
        Program::new(vec![r]).unwrap()
    }

    fn program_2() -> Program {
        // P(x, y) :- not P(y, y), E(x).   — paper's program (2)
        let r = Rule::new(
            Atom::from_texts("p", &["X", "Y"]),
            vec![
                Literal::neg(Atom::from_texts("p", &["Y", "Y"])),
                Literal::pos(Atom::from_texts("e", &["X"])),
            ],
        );
        Program::new(vec![r]).unwrap()
    }

    #[test]
    fn paper_programs_1_and_2_are_alphabetic_variants() {
        assert!(program_1().is_alphabetic_variant_of(&program_2()));
        assert_eq!(program_1().skeleton(), program_2().skeleton());
    }

    #[test]
    fn different_sign_patterns_differ() {
        let r = Rule::new(
            Atom::from_texts("p", &["a"]),
            vec![
                Literal::pos(Atom::from_texts("p", &["X"])),
                Literal::pos(Atom::from_texts("e", &["b"])),
            ],
        );
        let q = Program::new(vec![r]).unwrap();
        assert!(!program_1().is_alphabetic_variant_of(&q));
    }

    #[test]
    fn propositional_realization() {
        let prop = program_1().skeleton().to_propositional();
        assert_eq!(prop.len(), 1);
        assert_eq!(prop.rules()[0].to_string(), "p :- not p, e.");
        // And the propositional program's skeleton is the same skeleton.
        assert_eq!(prop.skeleton(), program_1().skeleton());
    }

    #[test]
    fn skeleton_display() {
        let s = program_1().skeleton();
        assert_eq!(s.to_string(), "p :- not p, e.\n");
        assert_eq!(s.idb_predicates().len(), 1);
        assert_eq!(s.predicates().len(), 2);
    }
}
