//! Terms: the arguments of atoms.
//!
//! Datalog terms are flat — a term is either a variable or a constant;
//! there are no function symbols. This is the language of the paper
//! (Section 2).

use std::fmt;

use crate::symbol::{ConstSym, VarSym};

/// A term: a variable or a constant.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Term {
    /// A variable, conventionally written with a leading uppercase letter
    /// or underscore (`X`, `Time`, `_`).
    Var(VarSym),
    /// A constant, conventionally lowercase or numeric (`a`, `42`).
    Const(ConstSym),
}

impl Term {
    /// Parses the textual convention: leading uppercase or `_` means
    /// variable, anything else means constant.
    ///
    /// This is the same convention the parser uses, exposed for builders
    /// and tests.
    pub fn from_text(text: &str) -> Self {
        let first = text.chars().next();
        match first {
            Some(c) if c.is_uppercase() || c == '_' => Term::Var(VarSym::new(text)),
            _ => Term::Const(ConstSym::new(text)),
        }
    }

    /// Constructs a variable term.
    pub fn var(name: &str) -> Self {
        Term::Var(VarSym::new(name))
    }

    /// Constructs a constant term.
    pub fn constant(name: &str) -> Self {
        Term::Const(ConstSym::new(name))
    }

    /// `true` iff this term is a variable.
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// `true` iff this term is a constant.
    pub fn is_const(self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// The variable inside, if any.
    pub fn as_var(self) -> Option<VarSym> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant inside, if any.
    pub fn as_const(self) -> Option<ConstSym> {
        match self {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => v.fmt(f),
            Term::Const(c) => c.fmt(f),
        }
    }
}

impl From<VarSym> for Term {
    fn from(v: VarSym) -> Self {
        Term::Var(v)
    }
}

impl From<ConstSym> for Term {
    fn from(c: ConstSym) -> Self {
        Term::Const(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_text_convention() {
        assert!(Term::from_text("X").is_var());
        assert!(Term::from_text("Xyz").is_var());
        assert!(Term::from_text("_tmp").is_var());
        assert!(Term::from_text("a").is_const());
        assert!(Term::from_text("42").is_const());
        assert!(Term::from_text("aBC").is_const());
    }

    #[test]
    fn accessors() {
        let v = Term::var("X");
        let c = Term::constant("a");
        assert_eq!(v.as_var(), Some(VarSym::new("X")));
        assert_eq!(v.as_const(), None);
        assert_eq!(c.as_const(), Some(ConstSym::new("a")));
        assert_eq!(c.as_var(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Term::var("Time").to_string(), "Time");
        assert_eq!(Term::constant("zero").to_string(), "zero");
    }
}
