//! Fluent programmatic construction of programs.
//!
//! The reductions in `paper-constructions` build programs mechanically;
//! going through text and the parser would be both slow and error-prone.
//! [`ProgramBuilder`] offers a compact, validated alternative:
//!
//! ```
//! use datalog_ast::ProgramBuilder;
//!
//! let program = ProgramBuilder::new()
//!     .rule("win", &["X"], |b| {
//!         b.pos("move", &["X", "Y"]).neg("win", &["Y"]);
//!     })
//!     .fact("move", &["a", "b"])
//!     .build()
//!     .unwrap();
//! assert_eq!(program.len(), 2);
//! ```
//!
//! Terms follow the textual convention: leading uppercase or `_` means
//! variable, anything else is a constant.

use crate::atom::{Atom, Literal};
use crate::error::ValidationError;
use crate::program::Program;
use crate::rule::Rule;
use crate::term::Term;

/// Accumulates the body of one rule. See [`ProgramBuilder::rule`].
#[derive(Debug, Default)]
pub struct BodyBuilder {
    literals: Vec<Literal>,
}

impl BodyBuilder {
    /// Appends a positive literal `pred(args…)`.
    pub fn pos(&mut self, pred: &str, args: &[&str]) -> &mut Self {
        self.literals
            .push(Literal::pos(Atom::from_texts(pred, args)));
        self
    }

    /// Appends a negative literal `not pred(args…)`.
    pub fn neg(&mut self, pred: &str, args: &[&str]) -> &mut Self {
        self.literals
            .push(Literal::neg(Atom::from_texts(pred, args)));
        self
    }

    /// Appends an already-built literal.
    pub fn literal(&mut self, lit: Literal) -> &mut Self {
        self.literals.push(lit);
        self
    }
}

/// A fluent builder for [`Program`]s.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    rules: Vec<Rule>,
}

impl ProgramBuilder {
    /// A fresh, empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Adds a rule with head `head(head_args…)`; the closure populates the
    /// body.
    #[must_use]
    pub fn rule(
        mut self,
        head: &str,
        head_args: &[&str],
        f: impl FnOnce(&mut BodyBuilder),
    ) -> Self {
        let mut body = BodyBuilder::default();
        f(&mut body);
        self.rules
            .push(Rule::new(Atom::from_texts(head, head_args), body.literals));
        self
    }

    /// Adds a fact `head(args…).`
    #[must_use]
    pub fn fact(mut self, head: &str, args: &[&str]) -> Self {
        self.rules.push(Rule::fact(Atom::from_texts(head, args)));
        self
    }

    /// Adds an already-built rule.
    #[must_use]
    pub fn push(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Adds all rules of an existing program.
    #[must_use]
    pub fn extend(mut self, program: &Program) -> Self {
        self.rules.extend(program.rules().iter().cloned());
        self
    }

    /// Number of rules added so far.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` iff no rules were added.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Validates and finishes the program.
    ///
    /// # Errors
    ///
    /// [`ValidationError::ArityMismatch`] on inconsistent predicate use.
    pub fn build(self) -> Result<Program, ValidationError> {
        Program::new(self.rules)
    }
}

/// Builds a term from text using the variable convention (re-export of
/// [`Term::from_text`] for builder call sites).
pub fn term(text: &str) -> Term {
    Term::from_text(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn builder_matches_parser() {
        let built = ProgramBuilder::new()
            .rule("win", &["X"], |b| {
                b.pos("move", &["X", "Y"]).neg("win", &["Y"]);
            })
            .fact("move", &["a", "b"])
            .build()
            .unwrap();
        let parsed = parse_program("win(X) :- move(X, Y), not win(Y).\nmove(a, b).").unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn arity_errors_surface_at_build() {
        let res = ProgramBuilder::new()
            .fact("p", &["a"])
            .fact("p", &["a", "b"])
            .build();
        assert!(res.is_err());
    }

    #[test]
    fn extend_concatenates() {
        let base = parse_program("p :- not q.").unwrap();
        let ext = ProgramBuilder::new()
            .extend(&base)
            .rule("q", &[], |b| {
                b.neg("p", &[]);
            })
            .build()
            .unwrap();
        assert_eq!(ext.len(), 2);
    }

    #[test]
    fn propositional_rule_via_builder() {
        let p = ProgramBuilder::new()
            .rule("p", &[], |b| {
                b.pos("p", &[]).neg("q", &[]);
            })
            .build()
            .unwrap();
        assert_eq!(p.rules()[0].to_string(), "p :- p, not q.");
    }
}
