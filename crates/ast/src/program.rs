//! Programs: validated collections of rules.
//!
//! A [`Program`] is a finite set of rules together with derived metadata:
//! the predicate signature (consistent arities), the IDB/EDB split (a
//! predicate is IDB iff it heads some rule — paper, Section 2), and the
//! constants appearing in the rules.

use std::fmt;

use crate::atom::Sign;
use crate::error::ValidationError;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::rule::Rule;
use crate::skeleton::Skeleton;
use crate::symbol::{ConstSym, PredSym};

/// Signature information for one predicate of a program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PredInfo {
    /// The predicate's arity.
    pub arity: usize,
    /// `true` iff the predicate appears in the head of some rule.
    pub is_idb: bool,
    /// `true` iff the predicate appears negated somewhere in a body.
    pub occurs_negatively: bool,
}

/// A validated Datalog¬ program.
///
/// Construction via [`Program::new`] enforces that every occurrence of a
/// predicate has the same arity. Rules keep their source order; rule
/// indices (`usize` positions into [`Program::rules`]) are the stable rule
/// identities used by the grounder and the analyses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    rules: Vec<Rule>,
    preds: FxHashMap<PredSym, PredInfo>,
    /// Predicates in deterministic first-occurrence order.
    pred_order: Vec<PredSym>,
}

impl Program {
    /// Validates and constructs a program from rules.
    ///
    /// # Errors
    ///
    /// [`ValidationError::ArityMismatch`] if a predicate occurs with two
    /// different arities.
    pub fn new(rules: impl IntoIterator<Item = Rule>) -> Result<Self, ValidationError> {
        let rules: Vec<Rule> = rules.into_iter().collect();
        let mut preds: FxHashMap<PredSym, PredInfo> = FxHashMap::default();
        let mut pred_order: Vec<PredSym> = Vec::new();

        let note = |pred: PredSym,
                    arity: usize,
                    is_head: bool,
                    neg: bool,
                    preds: &mut FxHashMap<PredSym, PredInfo>,
                    pred_order: &mut Vec<PredSym>|
         -> Result<(), ValidationError> {
            match preds.get_mut(&pred) {
                Some(info) => {
                    if info.arity != arity {
                        return Err(ValidationError::ArityMismatch {
                            pred,
                            first: info.arity,
                            second: arity,
                        });
                    }
                    info.is_idb |= is_head;
                    info.occurs_negatively |= neg;
                }
                None => {
                    preds.insert(
                        pred,
                        PredInfo {
                            arity,
                            is_idb: is_head,
                            occurs_negatively: neg,
                        },
                    );
                    pred_order.push(pred);
                }
            }
            Ok(())
        };

        for rule in &rules {
            note(
                rule.head.pred,
                rule.head.arity(),
                true,
                false,
                &mut preds,
                &mut pred_order,
            )?;
            for lit in &rule.body {
                note(
                    lit.atom.pred,
                    lit.atom.arity(),
                    false,
                    lit.is_neg(),
                    &mut preds,
                    &mut pred_order,
                )?;
            }
        }

        Ok(Program {
            rules,
            preds,
            pred_order,
        })
    }

    /// An empty program.
    pub fn empty() -> Self {
        Program::new(std::iter::empty()).expect("empty program is valid")
    }

    /// The rules, in source order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` iff there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Signature info for `pred`, if it occurs in the program.
    pub fn pred_info(&self, pred: PredSym) -> Option<&PredInfo> {
        self.preds.get(&pred)
    }

    /// All predicates in deterministic first-occurrence order.
    pub fn predicates(&self) -> &[PredSym] {
        &self.pred_order
    }

    /// IDB predicates (those that head a rule), in first-occurrence order.
    pub fn idb_predicates(&self) -> impl Iterator<Item = PredSym> + '_ {
        self.pred_order
            .iter()
            .copied()
            .filter(move |p| self.preds[p].is_idb)
    }

    /// EDB predicates (those that never head a rule), in first-occurrence
    /// order.
    pub fn edb_predicates(&self) -> impl Iterator<Item = PredSym> + '_ {
        self.pred_order
            .iter()
            .copied()
            .filter(move |p| !self.preds[p].is_idb)
    }

    /// `true` iff `pred` is an IDB predicate of this program.
    pub fn is_idb(&self, pred: PredSym) -> bool {
        self.preds.get(&pred).is_some_and(|i| i.is_idb)
    }

    /// The arity of `pred`, if known.
    pub fn arity(&self, pred: PredSym) -> Option<usize> {
        self.preds.get(&pred).map(|i| i.arity)
    }

    /// `true` iff some body literal anywhere is negative.
    pub fn has_negation(&self) -> bool {
        self.rules.iter().any(Rule::has_negation)
    }

    /// `true` iff every rule is safe (see [`Rule::is_safe`]).
    pub fn is_safe(&self) -> bool {
        self.rules.iter().all(Rule::is_safe)
    }

    /// The distinct constants appearing in the rules, in first-occurrence
    /// order.
    pub fn constants(&self) -> Vec<ConstSym> {
        let mut seen: FxHashSet<ConstSym> = FxHashSet::default();
        let mut out = Vec::new();
        for rule in &self.rules {
            for c in rule.constants() {
                if seen.insert(c) {
                    out.push(c);
                }
            }
        }
        out
    }

    /// The rule indices whose head predicate is `pred`.
    pub fn rules_for_head(&self, pred: PredSym) -> impl Iterator<Item = usize> + '_ {
        self.rules
            .iter()
            .enumerate()
            .filter(move |(_, r)| r.head.pred == pred)
            .map(|(i, _)| i)
    }

    /// The skeleton (propositional form) of this program: rules with all
    /// parentheses, variables, and constants omitted (paper, Section 4).
    pub fn skeleton(&self) -> Skeleton {
        Skeleton::of_program(self)
    }

    /// `true` iff `other` is an alphabetic variant of `self`: same skeleton
    /// (paper, Section 4 — "programs that only differ in the arity of the
    /// predicates and the names of the variables and constants in each
    /// rule").
    pub fn is_alphabetic_variant_of(&self, other: &Program) -> bool {
        self.skeleton() == other.skeleton()
    }

    /// Signed predicate-level dependencies: for every rule `Q ← …(¬)P…`,
    /// yields `(P, sign, Q)` — an edge of the paper's *program graph*.
    ///
    /// (The program graph itself, with SCC/tie machinery, lives in the
    /// `tiebreak-core` crate; this iterator is the raw edge source.)
    pub fn dependency_edges(&self) -> impl Iterator<Item = (PredSym, Sign, PredSym)> + '_ {
        self.rules.iter().flat_map(|r| {
            let head = r.head.pred;
            r.body
                .iter()
                .map(move |lit| (lit.atom.pred, lit.sign, head))
        })
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, Literal};

    fn win_move() -> Program {
        // win(X) :- move(X, Y), not win(Y).
        let r = Rule::new(
            Atom::from_texts("win", &["X"]),
            vec![
                Literal::pos(Atom::from_texts("move", &["X", "Y"])),
                Literal::neg(Atom::from_texts("win", &["Y"])),
            ],
        );
        Program::new(vec![r]).expect("valid")
    }

    #[test]
    fn idb_edb_split() {
        let p = win_move();
        let idb: Vec<&str> = p.idb_predicates().map(|p| p.as_str()).collect();
        let edb: Vec<&str> = p.edb_predicates().map(|p| p.as_str()).collect();
        assert_eq!(idb, vec!["win"]);
        assert_eq!(edb, vec!["move"]);
        assert!(p.is_idb(PredSym::new("win")));
        assert!(!p.is_idb(PredSym::new("move")));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let r1 = Rule::fact(Atom::from_texts("p", &["a"]));
        let r2 = Rule::fact(Atom::from_texts("p", &["a", "b"]));
        let err = Program::new(vec![r1, r2]).unwrap_err();
        match err {
            ValidationError::ArityMismatch {
                pred,
                first,
                second,
            } => {
                assert_eq!(pred.as_str(), "p");
                assert_eq!((first, second), (1, 2));
            }
        }
    }

    #[test]
    fn dependency_edges_signed() {
        let p = win_move();
        let deps: Vec<(String, Sign, String)> = p
            .dependency_edges()
            .map(|(a, s, b)| (a.to_string(), s, b.to_string()))
            .collect();
        assert_eq!(
            deps,
            vec![
                ("move".to_owned(), Sign::Pos, "win".to_owned()),
                ("win".to_owned(), Sign::Neg, "win".to_owned()),
            ]
        );
    }

    #[test]
    fn negation_and_safety_flags() {
        let p = win_move();
        assert!(p.has_negation());
        assert!(p.is_safe());
        assert_eq!(p.arity(PredSym::new("move")), Some(2));
        assert_eq!(p.arity(PredSym::new("absent")), None);
    }

    #[test]
    fn empty_program() {
        let p = Program::empty();
        assert!(p.is_empty());
        assert_eq!(p.predicates().len(), 0);
        assert!(!p.has_negation());
    }

    #[test]
    fn constants_first_occurrence_order() {
        let r = Rule::new(
            Atom::from_texts("p", &["b"]),
            vec![Literal::pos(Atom::from_texts("q", &["a", "b"]))],
        );
        let p = Program::new(vec![r]).unwrap();
        let cs: Vec<&str> = p.constants().iter().map(|c| c.as_str()).collect();
        assert_eq!(cs, vec!["b", "a"]);
    }
}
