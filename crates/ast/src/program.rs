//! Programs: validated collections of rules.
//!
//! A [`Program`] is a finite set of rules together with derived metadata:
//! the predicate signature (consistent arities), the IDB/EDB split (a
//! predicate is IDB iff it heads some rule — paper, Section 2), and the
//! constants appearing in the rules.

use std::fmt;

use crate::atom::Sign;
use crate::error::{Pos, ValidationError};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::rule::Rule;
use crate::skeleton::{Skeleton, SkeletonRule};
use crate::symbol::{ConstSym, PredSym};

/// Source positions for one rule: where the clause starts (the head atom)
/// and where each body literal starts, in body order.
///
/// Parsed programs carry one span per rule; programmatically built
/// programs carry none. Spans are presentation metadata: they do not
/// participate in [`Program`] equality.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RuleSpan {
    /// Position of the head atom (start of the clause).
    pub rule: Pos,
    /// Position of each body literal (at its `not`, if negated).
    pub literals: Vec<Pos>,
}

/// A dropped duplicate rule. [`Program::new`] keeps the first occurrence
/// of each syntactically identical rule and records later occurrences
/// here, so analyses can report them without the grounder paying for
/// them twice.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DuplicateRule {
    /// Index into [`Program::rules`] of the retained first occurrence.
    pub kept: usize,
    /// Source position of the dropped occurrence, when parsed.
    pub span: Option<RuleSpan>,
}

/// Signature information for one predicate of a program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PredInfo {
    /// The predicate's arity.
    pub arity: usize,
    /// `true` iff the predicate appears in the head of some rule.
    pub is_idb: bool,
    /// `true` iff the predicate appears negated somewhere in a body.
    pub occurs_negatively: bool,
}

/// A validated Datalog¬ program.
///
/// Construction via [`Program::new`] enforces that every occurrence of a
/// predicate has the same arity. A program is a *set* of rules: later
/// syntactically identical duplicates are dropped at construction (first
/// occurrence wins) and recorded in [`Program::duplicate_rules`] — kept,
/// they would ground twice and inflate every instance count. Retained
/// rules keep their source order; rule indices (`usize` positions into
/// [`Program::rules`]) are the stable rule identities used by the
/// grounder and the analyses.
///
/// Equality compares the retained rules only; spans and duplicate
/// records are source metadata.
#[derive(Clone, Debug)]
pub struct Program {
    rules: Vec<Rule>,
    preds: FxHashMap<PredSym, PredInfo>,
    /// Predicates in deterministic first-occurrence order.
    pred_order: Vec<PredSym>,
    /// One span per rule for parsed programs; empty otherwise.
    spans: Vec<RuleSpan>,
    /// Dropped syntactic duplicates, in source order.
    duplicates: Vec<DuplicateRule>,
}

impl PartialEq for Program {
    fn eq(&self, other: &Self) -> bool {
        self.rules == other.rules
    }
}

impl Eq for Program {}

impl Program {
    /// Validates and constructs a program from rules.
    ///
    /// # Errors
    ///
    /// [`ValidationError::ArityMismatch`] if a predicate occurs with two
    /// different arities.
    pub fn new(rules: impl IntoIterator<Item = Rule>) -> Result<Self, ValidationError> {
        Self::build(rules.into_iter().map(|r| (r, None)))
    }

    /// Like [`Program::new`], but attaches a source span to every rule
    /// (the parser's entry point).
    ///
    /// # Errors
    ///
    /// [`ValidationError::ArityMismatch`] if a predicate occurs with two
    /// different arities.
    pub fn with_spans(
        rules: impl IntoIterator<Item = (Rule, RuleSpan)>,
    ) -> Result<Self, ValidationError> {
        Self::build(rules.into_iter().map(|(r, s)| (r, Some(s))))
    }

    fn build(
        spanned: impl IntoIterator<Item = (Rule, Option<RuleSpan>)>,
    ) -> Result<Self, ValidationError> {
        let mut seen: FxHashMap<Rule, usize> = FxHashMap::default();
        let mut rules: Vec<Rule> = Vec::new();
        let mut spans: Vec<RuleSpan> = Vec::new();
        let mut duplicates: Vec<DuplicateRule> = Vec::new();
        let mut all_spanned = true;
        for (rule, span) in spanned {
            if let Some(&kept) = seen.get(&rule) {
                duplicates.push(DuplicateRule { kept, span });
                continue;
            }
            seen.insert(rule.clone(), rules.len());
            all_spanned &= span.is_some();
            if let Some(span) = span {
                spans.push(span);
            }
            rules.push(rule);
        }
        // Spans are all-or-nothing: a partially spanned input (never
        // produced by the parser or the builder) degrades to span-less.
        if !all_spanned {
            spans.clear();
        }

        let mut preds: FxHashMap<PredSym, PredInfo> = FxHashMap::default();
        let mut pred_order: Vec<PredSym> = Vec::new();

        let note = |pred: PredSym,
                    arity: usize,
                    is_head: bool,
                    neg: bool,
                    preds: &mut FxHashMap<PredSym, PredInfo>,
                    pred_order: &mut Vec<PredSym>|
         -> Result<(), ValidationError> {
            match preds.get_mut(&pred) {
                Some(info) => {
                    if info.arity != arity {
                        return Err(ValidationError::ArityMismatch {
                            pred,
                            first: info.arity,
                            second: arity,
                        });
                    }
                    info.is_idb |= is_head;
                    info.occurs_negatively |= neg;
                }
                None => {
                    preds.insert(
                        pred,
                        PredInfo {
                            arity,
                            is_idb: is_head,
                            occurs_negatively: neg,
                        },
                    );
                    pred_order.push(pred);
                }
            }
            Ok(())
        };

        for rule in &rules {
            note(
                rule.head.pred,
                rule.head.arity(),
                true,
                false,
                &mut preds,
                &mut pred_order,
            )?;
            for lit in &rule.body {
                note(
                    lit.atom.pred,
                    lit.atom.arity(),
                    false,
                    lit.is_neg(),
                    &mut preds,
                    &mut pred_order,
                )?;
            }
        }

        Ok(Program {
            rules,
            preds,
            pred_order,
            spans,
            duplicates,
        })
    }

    /// An empty program.
    pub fn empty() -> Self {
        Program::new(std::iter::empty()).expect("empty program is valid")
    }

    /// The rules, in source order (duplicates already dropped).
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The source span of rule `index`, if this program was parsed.
    pub fn span(&self, index: usize) -> Option<&RuleSpan> {
        self.spans.get(index)
    }

    /// The syntactic duplicates dropped at construction, in source order.
    pub fn duplicate_rules(&self) -> &[DuplicateRule] {
        &self.duplicates
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` iff there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Signature info for `pred`, if it occurs in the program.
    pub fn pred_info(&self, pred: PredSym) -> Option<&PredInfo> {
        self.preds.get(&pred)
    }

    /// All predicates in deterministic first-occurrence order.
    pub fn predicates(&self) -> &[PredSym] {
        &self.pred_order
    }

    /// IDB predicates (those that head a rule), in first-occurrence order.
    pub fn idb_predicates(&self) -> impl Iterator<Item = PredSym> + '_ {
        self.pred_order
            .iter()
            .copied()
            .filter(move |p| self.preds[p].is_idb)
    }

    /// EDB predicates (those that never head a rule), in first-occurrence
    /// order.
    pub fn edb_predicates(&self) -> impl Iterator<Item = PredSym> + '_ {
        self.pred_order
            .iter()
            .copied()
            .filter(move |p| !self.preds[p].is_idb)
    }

    /// `true` iff `pred` is an IDB predicate of this program.
    pub fn is_idb(&self, pred: PredSym) -> bool {
        self.preds.get(&pred).is_some_and(|i| i.is_idb)
    }

    /// The arity of `pred`, if known.
    pub fn arity(&self, pred: PredSym) -> Option<usize> {
        self.preds.get(&pred).map(|i| i.arity)
    }

    /// `true` iff some body literal anywhere is negative.
    pub fn has_negation(&self) -> bool {
        self.rules.iter().any(Rule::has_negation)
    }

    /// `true` iff every rule is safe (see [`Rule::is_safe`]).
    pub fn is_safe(&self) -> bool {
        self.rules.iter().all(Rule::is_safe)
    }

    /// The distinct constants appearing in the rules, in first-occurrence
    /// order.
    pub fn constants(&self) -> Vec<ConstSym> {
        let mut seen: FxHashSet<ConstSym> = FxHashSet::default();
        let mut out = Vec::new();
        for rule in &self.rules {
            for c in rule.constants() {
                if seen.insert(c) {
                    out.push(c);
                }
            }
        }
        out
    }

    /// The rule indices whose head predicate is `pred`.
    pub fn rules_for_head(&self, pred: PredSym) -> impl Iterator<Item = usize> + '_ {
        self.rules
            .iter()
            .enumerate()
            .filter(move |(_, r)| r.head.pred == pred)
            .map(|(i, _)| i)
    }

    /// The skeleton (propositional form) of this program: rules with all
    /// parentheses, variables, and constants omitted (paper, Section 4).
    pub fn skeleton(&self) -> Skeleton {
        Skeleton::of_program(self)
    }

    /// `true` iff `other` is an alphabetic variant of `self`: same skeleton
    /// (paper, Section 4 — "programs that only differ in the arity of the
    /// predicates and the names of the variables and constants in each
    /// rule").
    ///
    /// Skeletons are compared as *sets* of skeleton rules: programs are
    /// rule sets, and realizing two same-skeleton rules identically
    /// collapses them at construction — multiplicity is not part of the
    /// variant relation.
    pub fn is_alphabetic_variant_of(&self, other: &Program) -> bool {
        let (sa, sb) = (self.skeleton(), other.skeleton());
        let a: FxHashSet<&SkeletonRule> = sa.rules.iter().collect();
        let b: FxHashSet<&SkeletonRule> = sb.rules.iter().collect();
        a == b
    }

    /// Signed predicate-level dependencies: for every rule `Q ← …(¬)P…`,
    /// yields `(P, sign, Q)` — an edge of the paper's *program graph*.
    ///
    /// (The program graph itself, with SCC/tie machinery, lives in the
    /// `tiebreak-core` crate; this iterator is the raw edge source.)
    pub fn dependency_edges(&self) -> impl Iterator<Item = (PredSym, Sign, PredSym)> + '_ {
        self.rules.iter().flat_map(|r| {
            let head = r.head.pred;
            r.body
                .iter()
                .map(move |lit| (lit.atom.pred, lit.sign, head))
        })
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, Literal};

    fn win_move() -> Program {
        // win(X) :- move(X, Y), not win(Y).
        let r = Rule::new(
            Atom::from_texts("win", &["X"]),
            vec![
                Literal::pos(Atom::from_texts("move", &["X", "Y"])),
                Literal::neg(Atom::from_texts("win", &["Y"])),
            ],
        );
        Program::new(vec![r]).expect("valid")
    }

    #[test]
    fn idb_edb_split() {
        let p = win_move();
        let idb: Vec<&str> = p
            .idb_predicates()
            .map(super::super::symbol::PredSym::as_str)
            .collect();
        let edb: Vec<&str> = p
            .edb_predicates()
            .map(super::super::symbol::PredSym::as_str)
            .collect();
        assert_eq!(idb, vec!["win"]);
        assert_eq!(edb, vec!["move"]);
        assert!(p.is_idb(PredSym::new("win")));
        assert!(!p.is_idb(PredSym::new("move")));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let r1 = Rule::fact(Atom::from_texts("p", &["a"]));
        let r2 = Rule::fact(Atom::from_texts("p", &["a", "b"]));
        let err = Program::new(vec![r1, r2]).unwrap_err();
        match err {
            ValidationError::ArityMismatch {
                pred,
                first,
                second,
            } => {
                assert_eq!(pred.as_str(), "p");
                assert_eq!((first, second), (1, 2));
            }
        }
    }

    #[test]
    fn dependency_edges_signed() {
        let p = win_move();
        let deps: Vec<(String, Sign, String)> = p
            .dependency_edges()
            .map(|(a, s, b)| (a.to_string(), s, b.to_string()))
            .collect();
        assert_eq!(
            deps,
            vec![
                ("move".to_owned(), Sign::Pos, "win".to_owned()),
                ("win".to_owned(), Sign::Neg, "win".to_owned()),
            ]
        );
    }

    #[test]
    fn negation_and_safety_flags() {
        let p = win_move();
        assert!(p.has_negation());
        assert!(p.is_safe());
        assert_eq!(p.arity(PredSym::new("move")), Some(2));
        assert_eq!(p.arity(PredSym::new("absent")), None);
    }

    #[test]
    fn empty_program() {
        let p = Program::empty();
        assert!(p.is_empty());
        assert_eq!(p.predicates().len(), 0);
        assert!(!p.has_negation());
    }

    #[test]
    fn duplicate_rules_collapse_and_are_recorded() {
        let r = |a: &str, b: &str| {
            Rule::new(
                Atom::from_texts(a, &["X"]),
                vec![Literal::pos(Atom::from_texts(b, &["X"]))],
            )
        };
        let p = Program::new(vec![r("p", "q"), r("s", "q"), r("p", "q")]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.duplicate_rules().len(), 1);
        assert_eq!(p.duplicate_rules()[0].kept, 0);
        assert!(p.duplicate_rules()[0].span.is_none());
        // Equality ignores the duplicate record.
        let q = Program::new(vec![r("p", "q"), r("s", "q")]).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn variant_relation_ignores_rule_multiplicity() {
        // Two same-skeleton rules on one side, one on the other: still
        // alphabetic variants (a realization can collapse them).
        let two = Program::new(vec![
            Rule::new(
                Atom::from_texts("p", &["X"]),
                vec![Literal::pos(Atom::from_texts("q", &["X"]))],
            ),
            Rule::new(
                Atom::from_texts("p", &["a"]),
                vec![Literal::pos(Atom::from_texts("q", &["b"]))],
            ),
        ])
        .unwrap();
        let one = Program::new(vec![Rule::new(
            Atom::from_texts("p", &[]),
            vec![Literal::pos(Atom::from_texts("q", &[]))],
        )])
        .unwrap();
        assert_eq!(two.len(), 2);
        assert!(two.is_alphabetic_variant_of(&one));
        assert!(one.is_alphabetic_variant_of(&two));
    }

    #[test]
    fn constants_first_occurrence_order() {
        let r = Rule::new(
            Atom::from_texts("p", &["b"]),
            vec![Literal::pos(Atom::from_texts("q", &["a", "b"]))],
        );
        let p = Program::new(vec![r]).unwrap();
        let cs: Vec<&str> = p.constants().iter().map(|c| c.as_str()).collect();
        assert_eq!(cs, vec!["b", "a"]);
    }
}
