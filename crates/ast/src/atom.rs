//! Atoms, ground atoms, and literals.
//!
//! Following the paper's Section 2: if `P` is an m-ary predicate symbol and
//! `x1, …, xm` are variables or constants, `P(x1, …, xm)` is an *atom*; it
//! is *ground* if all arguments are constants. A *literal* is an atom or
//! the negation of an atom.

use std::fmt;

use crate::symbol::{ConstSym, PredSym, VarSym};
use crate::term::Term;

/// The polarity of a literal or a dependency edge.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Sign {
    /// A positive occurrence.
    Pos,
    /// A negated occurrence (`not p(...)`).
    Neg,
}

impl Sign {
    /// `true` iff positive.
    pub fn is_pos(self) -> bool {
        matches!(self, Sign::Pos)
    }

    /// `true` iff negative.
    pub fn is_neg(self) -> bool {
        matches!(self, Sign::Neg)
    }

    /// The opposite polarity.
    #[must_use]
    pub fn flip(self) -> Sign {
        match self {
            Sign::Pos => Sign::Neg,
            Sign::Neg => Sign::Pos,
        }
    }

    /// Parity composition: the sign of a path is the product of its edge
    /// signs. `Pos` is the identity.
    #[must_use]
    pub fn compose(self, other: Sign) -> Sign {
        if self == other {
            Sign::Pos
        } else {
            Sign::Neg
        }
    }
}

/// An atom `p(t1, …, tm)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// The predicate symbol.
    pub pred: PredSym,
    /// The argument terms; the length is the atom's arity.
    pub args: Vec<Term>,
}

impl Atom {
    /// Constructs an atom from a predicate name and terms.
    pub fn new(pred: impl Into<PredSym>, args: impl IntoIterator<Item = Term>) -> Self {
        Atom {
            pred: pred.into(),
            args: args.into_iter().collect(),
        }
    }

    /// Constructs an atom using the textual variable convention
    /// (leading uppercase / `_` ⇒ variable).
    pub fn from_texts(pred: &str, args: &[&str]) -> Self {
        Atom {
            pred: PredSym::new(pred),
            args: args.iter().map(|t| Term::from_text(t)).collect(),
        }
    }

    /// The arity (number of arguments).
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// `true` iff every argument is a constant.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| t.is_const())
    }

    /// Iterates over the variables occurring in this atom (with repeats).
    pub fn variables(&self) -> impl Iterator<Item = VarSym> + '_ {
        self.args.iter().filter_map(|t| t.as_var())
    }

    /// Iterates over the constants occurring in this atom (with repeats).
    pub fn constants(&self) -> impl Iterator<Item = ConstSym> + '_ {
        self.args.iter().filter_map(|t| t.as_const())
    }

    /// Converts to a [`GroundAtom`] if ground.
    pub fn to_ground(&self) -> Option<GroundAtom> {
        let args: Option<Box<[ConstSym]>> = self.args.iter().map(|t| t.as_const()).collect();
        args.map(|args| GroundAtom {
            pred: self.pred,
            args,
        })
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.pred.fmt(f)?;
        if !self.args.is_empty() {
            f.write_str("(")?;
            for (i, t) in self.args.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                t.fmt(f)?;
            }
            f.write_str(")")?;
        }
        Ok(())
    }
}

/// A ground atom `p(c1, …, cm)`: the vertices of the paper's ground graph.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct GroundAtom {
    /// The predicate symbol.
    pub pred: PredSym,
    /// The constant arguments.
    pub args: Box<[ConstSym]>,
}

impl GroundAtom {
    /// Constructs a ground atom.
    pub fn new(pred: impl Into<PredSym>, args: impl IntoIterator<Item = ConstSym>) -> Self {
        GroundAtom {
            pred: pred.into(),
            args: args.into_iter().collect(),
        }
    }

    /// Constructs a ground atom from texts (all arguments constants).
    pub fn from_texts(pred: &str, args: &[&str]) -> Self {
        GroundAtom {
            pred: PredSym::new(pred),
            args: args.iter().map(|a| ConstSym::new(a)).collect(),
        }
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Lifts back into a (ground) [`Atom`].
    pub fn to_atom(&self) -> Atom {
        Atom {
            pred: self.pred,
            args: self.args.iter().map(|&c| Term::Const(c)).collect(),
        }
    }
}

impl fmt::Display for GroundAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.pred.fmt(f)?;
        if !self.args.is_empty() {
            f.write_str("(")?;
            for (i, c) in self.args.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                c.fmt(f)?;
            }
            f.write_str(")")?;
        }
        Ok(())
    }
}

/// A literal: a signed atom.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Literal {
    /// The polarity.
    pub sign: Sign,
    /// The underlying atom.
    pub atom: Atom,
}

impl Literal {
    /// A positive literal.
    pub fn pos(atom: Atom) -> Self {
        Literal {
            sign: Sign::Pos,
            atom,
        }
    }

    /// A negative literal.
    pub fn neg(atom: Atom) -> Self {
        Literal {
            sign: Sign::Neg,
            atom,
        }
    }

    /// `true` iff positive.
    pub fn is_pos(&self) -> bool {
        self.sign.is_pos()
    }

    /// `true` iff negative.
    pub fn is_neg(&self) -> bool {
        self.sign.is_neg()
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            f.write_str("not ")?;
        }
        self.atom.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_algebra() {
        assert_eq!(Sign::Pos.flip(), Sign::Neg);
        assert_eq!(Sign::Neg.flip(), Sign::Pos);
        assert_eq!(Sign::Neg.compose(Sign::Neg), Sign::Pos);
        assert_eq!(Sign::Neg.compose(Sign::Pos), Sign::Neg);
        assert_eq!(Sign::Pos.compose(Sign::Pos), Sign::Pos);
    }

    #[test]
    fn atom_display_zero_arity() {
        let a = Atom::from_texts("p", &[]);
        assert_eq!(a.to_string(), "p");
        assert_eq!(a.arity(), 0);
        assert!(a.is_ground());
    }

    #[test]
    fn atom_display_with_args() {
        let a = Atom::from_texts("edge", &["X", "b"]);
        assert_eq!(a.to_string(), "edge(X, b)");
        assert!(!a.is_ground());
        assert_eq!(a.variables().count(), 1);
        assert_eq!(a.constants().count(), 1);
    }

    #[test]
    fn ground_round_trip() {
        let a = Atom::from_texts("p", &["a", "b"]);
        let g = a.to_ground().expect("ground");
        assert_eq!(g.to_string(), "p(a, b)");
        assert_eq!(g.to_atom(), a);
    }

    #[test]
    fn non_ground_atom_has_no_ground_form() {
        let a = Atom::from_texts("p", &["X"]);
        assert!(a.to_ground().is_none());
    }

    #[test]
    fn literal_display() {
        let a = Atom::from_texts("q", &["X"]);
        assert_eq!(Literal::pos(a.clone()).to_string(), "q(X)");
        assert_eq!(Literal::neg(a).to_string(), "not q(X)");
    }
}
