//! Lexer for the concrete Datalog¬ syntax.
//!
//! Token language:
//!
//! * identifiers: `[A-Za-z0-9_]+` — classified later by the variable
//!   convention (leading uppercase or `_` ⇒ variable),
//! * punctuation: `(`, `)`, `,`, `.`, `:-`,
//! * negation: the keyword `not`, or the operators `!` and `~`,
//! * comments: `%` and `//` to end of line,
//! * whitespace is insignificant.

use crate::error::{ParseError, Pos};

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Token {
    /// An identifier (predicate, variable, or constant — classified by the
    /// parser).
    Ident(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:-`
    Arrow,
    /// `not`, `!`, or `~`
    Not,
    /// End of input.
    Eof,
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "`{s}`"),
            Token::LParen => f.write_str("`(`"),
            Token::RParen => f.write_str("`)`"),
            Token::Comma => f.write_str("`,`"),
            Token::Dot => f.write_str("`.`"),
            Token::Arrow => f.write_str("`:-`"),
            Token::Not => f.write_str("`not`"),
            Token::Eof => f.write_str("end of input"),
        }
    }
}

/// A token tagged with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Position of the token's first character.
    pub pos: Pos,
}

/// Lexes `input` into a token stream (ending with [`Token::Eof`]).
///
/// # Errors
///
/// [`ParseError`] on any character outside the token language.
pub fn lex(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if let Some(ch) = c {
                if ch == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
            }
            c
        }};
    }

    loop {
        let pos = Pos { line, col };
        let Some(&c) = chars.peek() else {
            out.push(Spanned {
                token: Token::Eof,
                pos,
            });
            return Ok(out);
        };
        match c {
            c if c.is_whitespace() => {
                bump!();
            }
            '%' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    bump!();
                }
            }
            '/' => {
                bump!();
                if chars.peek() == Some(&'/') {
                    while let Some(&c) = chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        bump!();
                    }
                } else {
                    return Err(ParseError::new(pos, "stray `/` (expected `//` comment)"));
                }
            }
            '(' => {
                bump!();
                out.push(Spanned {
                    token: Token::LParen,
                    pos,
                });
            }
            ')' => {
                bump!();
                out.push(Spanned {
                    token: Token::RParen,
                    pos,
                });
            }
            ',' => {
                bump!();
                out.push(Spanned {
                    token: Token::Comma,
                    pos,
                });
            }
            '.' => {
                bump!();
                out.push(Spanned {
                    token: Token::Dot,
                    pos,
                });
            }
            '!' | '~' | '¬' => {
                bump!();
                out.push(Spanned {
                    token: Token::Not,
                    pos,
                });
            }
            ':' => {
                bump!();
                if chars.peek() == Some(&'-') {
                    bump!();
                    out.push(Spanned {
                        token: Token::Arrow,
                        pos,
                    });
                } else {
                    return Err(ParseError::new(pos, "stray `:` (expected `:-`)"));
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        ident.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                let token = if ident == "not" {
                    Token::Not
                } else {
                    Token::Ident(ident)
                };
                out.push(Spanned { token, pos });
            }
            other => {
                return Err(ParseError::new(
                    pos,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<Token> {
        lex(input).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_a_rule() {
        let toks = kinds("win(X) :- move(X, Y), not win(Y).");
        assert_eq!(
            toks,
            vec![
                Token::Ident("win".into()),
                Token::LParen,
                Token::Ident("X".into()),
                Token::RParen,
                Token::Arrow,
                Token::Ident("move".into()),
                Token::LParen,
                Token::Ident("X".into()),
                Token::Comma,
                Token::Ident("Y".into()),
                Token::RParen,
                Token::Comma,
                Token::Not,
                Token::Ident("win".into()),
                Token::LParen,
                Token::Ident("Y".into()),
                Token::RParen,
                Token::Dot,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn negation_spellings() {
        assert_eq!(
            kinds("not !  ~ ¬"),
            vec![Token::Not; 4]
                .into_iter()
                .chain([Token::Eof])
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("p. % trailing comment\n// full line\nq.");
        assert_eq!(
            toks,
            vec![
                Token::Ident("p".into()),
                Token::Dot,
                Token::Ident("q".into()),
                Token::Dot,
                Token::Eof
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let toks = lex("p.\n q.").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[2].pos, Pos { line: 2, col: 2 }); // `q`
    }

    #[test]
    fn stray_colon_is_an_error() {
        let err = lex("p :").unwrap_err();
        assert!(err.message.contains(":-"));
    }

    #[test]
    fn unexpected_character() {
        let err = lex("p @ q").unwrap_err();
        assert!(err.message.contains('@'));
        assert_eq!(err.pos, Pos { line: 1, col: 3 });
    }

    #[test]
    fn numeric_identifiers_allowed() {
        let toks = kinds("succ(0, 1).");
        assert!(matches!(&toks[2], Token::Ident(s) if s == "0"));
    }
}
