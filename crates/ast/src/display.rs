//! Display helpers shared by consumers of the AST.
//!
//! The core `Display` impls live next to their types; this module adds
//! aggregate pretty-printers used by the CLI, the experiment harness, and
//! test assertions.

use std::fmt::Write as _;

use crate::atom::GroundAtom;
use crate::program::Program;

/// Renders a program with a comment header summarizing its signature.
///
/// Output shape:
///
/// ```text
/// % IDB: win/1   EDB: move/2
/// win(X) :- move(X, Y), not win(Y).
/// ```
pub fn program_with_signature(program: &Program) -> String {
    let mut out = String::new();
    let idb: Vec<String> = program
        .idb_predicates()
        .map(|p| format!("{}/{}", p, program.arity(p).unwrap_or(0)))
        .collect();
    let edb: Vec<String> = program
        .edb_predicates()
        .map(|p| format!("{}/{}", p, program.arity(p).unwrap_or(0)))
        .collect();
    let _ = writeln!(out, "% IDB: {}   EDB: {}", idb.join(", "), edb.join(", "));
    let _ = write!(out, "{program}");
    out
}

/// Renders a list of ground atoms, sorted, one per line with trailing dots
/// (i.e. a fact file round-trippable through `parse_database`).
pub fn fact_lines(facts: &[GroundAtom]) -> String {
    let mut sorted: Vec<&GroundAtom> = facts.iter().collect();
    sorted.sort_by(|a, b| {
        (
            a.pred.as_str(),
            a.args.iter().map(|c| c.as_str()).collect::<Vec<_>>(),
        )
            .cmp(&(b.pred.as_str(), b.args.iter().map(|c| c.as_str()).collect()))
    });
    let mut out = String::new();
    for f in sorted {
        let _ = writeln!(out, "{f}.");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_database, parse_program};

    #[test]
    fn signature_header() {
        let p = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        let s = program_with_signature(&p);
        assert!(s.starts_with("% IDB: win/1   EDB: move/2\n"));
        assert!(s.contains("win(X) :- move(X, Y), not win(Y)."));
    }

    #[test]
    fn fact_lines_round_trip() {
        let db = parse_database("e(b, c).\ne(a, b).").unwrap();
        let facts: Vec<_> = db.facts().collect();
        let rendered = fact_lines(&facts);
        assert_eq!(rendered, "e(a, b).\ne(b, c).\n");
        let db2 = parse_database(&rendered).unwrap();
        assert_eq!(db, db2);
    }
}
