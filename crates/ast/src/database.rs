//! Finite databases of ground facts.
//!
//! A [`Database`] is the paper's Δ: *"a set of initial values for all
//! predicates (relations) of Π"*. Both EDB and IDB predicates may carry
//! initial facts (the **uniform** setting); the **nonuniform** setting
//! restricts IDB relations to be empty — see
//! [`Database::idb_is_empty`].
//!
//! The universe *U* of a pair (Π, Δ) is the set of all constants in either;
//! [`Database::constants`] yields the database's share.

use std::fmt;

use crate::atom::GroundAtom;
use crate::error::ValidationError;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::program::Program;
use crate::symbol::{ConstSym, PredSym};

/// A tuple of constants: one row of a relation.
pub type Tuple = Box<[ConstSym]>;

/// A finite relation: a set of constant tuples of a fixed arity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Relation {
    arity: usize,
    tuples: FxHashSet<Tuple>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            tuples: FxHashSet::default(),
        }
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` iff no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple. Returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// If the tuple's length differs from the relation's arity (internal
    /// misuse — external inputs are validated at the [`Database`] level).
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        assert_eq!(
            tuple.len(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            tuple.len(),
            self.arity
        );
        self.tuples.insert(tuple)
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[ConstSym]) -> bool {
        self.tuples.contains(tuple)
    }

    /// Removes a tuple. Returns `true` if it was present.
    pub fn remove(&mut self, tuple: &[ConstSym]) -> bool {
        self.tuples.remove(tuple)
    }

    /// Iterates over the tuples (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// The tuples in lexicographic order of their constant texts
    /// (deterministic output for display and tests).
    pub fn sorted(&self) -> Vec<&Tuple> {
        let mut v: Vec<&Tuple> = self.tuples.iter().collect();
        v.sort_by(|a, b| {
            a.iter()
                .map(|c| c.as_str())
                .cmp(b.iter().map(|c| c.as_str()))
        });
        v
    }
}

/// A database Δ: a finite set of ground facts, grouped per predicate.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Database {
    relations: FxHashMap<PredSym, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Inserts a ground fact. Creates the relation on first use.
    ///
    /// # Errors
    ///
    /// [`ValidationError::ArityMismatch`] if the predicate already has a
    /// relation of a different arity.
    pub fn insert(&mut self, fact: GroundAtom) -> Result<bool, ValidationError> {
        let arity = fact.arity();
        let rel = self
            .relations
            .entry(fact.pred)
            .or_insert_with(|| Relation::new(arity));
        if rel.arity() != arity {
            return Err(ValidationError::ArityMismatch {
                pred: fact.pred,
                first: rel.arity(),
                second: arity,
            });
        }
        Ok(rel.insert(fact.args))
    }

    /// Convenience: inserts `pred(args…)` from texts.
    ///
    /// # Panics
    ///
    /// On arity mismatch with an existing relation (use [`Database::insert`]
    /// for fallible insertion).
    pub fn insert_texts(&mut self, pred: &str, args: &[&str]) {
        self.insert(GroundAtom::from_texts(pred, args))
            .expect("arity mismatch in insert_texts");
    }

    /// Removes a ground fact. Returns `true` if it was present. Empty
    /// relations are kept (the predicate's arity stays pinned).
    pub fn remove(&mut self, fact: &GroundAtom) -> bool {
        self.relations
            .get_mut(&fact.pred)
            .is_some_and(|rel| rel.remove(&fact.args))
    }

    /// Membership test for a ground atom.
    pub fn contains(&self, fact: &GroundAtom) -> bool {
        self.relations
            .get(&fact.pred)
            .is_some_and(|rel| rel.contains(&fact.args))
    }

    /// The relation for `pred`, if present.
    pub fn relation(&self, pred: PredSym) -> Option<&Relation> {
        self.relations.get(&pred)
    }

    /// All predicates with (possibly empty) relations, sorted by name for
    /// determinism.
    pub fn predicates(&self) -> Vec<PredSym> {
        let mut v: Vec<PredSym> = self.relations.keys().copied().collect();
        v.sort_by_key(|p| p.as_str());
        v
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// `true` iff no facts at all.
    pub fn is_empty(&self) -> bool {
        self.relations.values().all(Relation::is_empty)
    }

    /// Iterates over all facts as [`GroundAtom`]s (unspecified order).
    pub fn facts(&self) -> impl Iterator<Item = GroundAtom> + '_ {
        self.relations.iter().flat_map(|(&pred, rel)| {
            rel.iter().map(move |t| GroundAtom {
                pred,
                args: t.clone(),
            })
        })
    }

    /// The distinct constants appearing in the database.
    pub fn constants(&self) -> Vec<ConstSym> {
        let mut seen: FxHashSet<ConstSym> = FxHashSet::default();
        let mut out = Vec::new();
        for rel in self.relations.values() {
            for tuple in rel.iter() {
                for &c in tuple {
                    if seen.insert(c) {
                        out.push(c);
                    }
                }
            }
        }
        out.sort_by_key(|c| c.as_str());
        out
    }

    /// `true` iff every IDB predicate of `program` has an empty relation —
    /// the paper's **nonuniform** initialization (IDBs empty, cf. \[Sa\]).
    pub fn idb_is_empty(&self, program: &Program) -> bool {
        program
            .idb_predicates()
            .all(|p| self.relations.get(&p).is_none_or(Relation::is_empty))
    }

    /// Validates the database against a program's signature: every fact's
    /// predicate must either be unknown to the program (allowed — extra
    /// relations are ignored by grounding) or match its arity.
    ///
    /// # Errors
    ///
    /// [`ValidationError::ArityMismatch`] on the first offending predicate.
    pub fn validate_against(&self, program: &Program) -> Result<(), ValidationError> {
        for (&pred, rel) in &self.relations {
            if let Some(arity) = program.arity(pred) {
                if arity != rel.arity() {
                    return Err(ValidationError::ArityMismatch {
                        pred,
                        first: arity,
                        second: rel.arity(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Merges `other` into `self`.
    ///
    /// # Errors
    ///
    /// [`ValidationError::ArityMismatch`] if a shared predicate has
    /// conflicting arities.
    pub fn merge(&mut self, other: &Database) -> Result<(), ValidationError> {
        for fact in other.facts() {
            self.insert(fact)?;
        }
        Ok(())
    }

    /// The universe *U* of (program, database): all constants of either, in
    /// sorted order.
    pub fn universe(program: &Program, database: &Database) -> Vec<ConstSym> {
        let mut seen: FxHashSet<ConstSym> = FxHashSet::default();
        let mut out = Vec::new();
        for c in program.constants().into_iter().chain(database.constants()) {
            if seen.insert(c) {
                out.push(c);
            }
        }
        out.sort_by_key(|c| c.as_str());
        out
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for pred in self.predicates() {
            let rel = &self.relations[&pred];
            for tuple in rel.sorted() {
                let atom = GroundAtom {
                    pred,
                    args: (*tuple).clone(),
                };
                writeln!(f, "{atom}.")?;
            }
        }
        Ok(())
    }
}

impl FromIterator<GroundAtom> for Database {
    /// Builds a database from facts.
    ///
    /// # Panics
    ///
    /// On arity mismatch; use [`Database::insert`] for fallible building.
    fn from_iter<I: IntoIterator<Item = GroundAtom>>(iter: I) -> Self {
        let mut db = Database::new();
        for fact in iter {
            db.insert(fact).expect("arity mismatch building Database");
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, Literal};
    use crate::rule::Rule;

    #[test]
    fn insert_and_contains() {
        let mut db = Database::new();
        db.insert_texts("e", &["a", "b"]);
        db.insert_texts("e", &["b", "c"]);
        assert_eq!(db.len(), 2);
        assert!(db.contains(&GroundAtom::from_texts("e", &["a", "b"])));
        assert!(!db.contains(&GroundAtom::from_texts("e", &["c", "a"])));
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut db = Database::new();
        assert!(db.insert(GroundAtom::from_texts("p", &["a"])).unwrap());
        assert!(!db.insert(GroundAtom::from_texts("p", &["a"])).unwrap());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn remove_round_trips() {
        let mut db = Database::new();
        db.insert_texts("p", &["a"]);
        assert!(db.remove(&GroundAtom::from_texts("p", &["a"])));
        assert!(!db.remove(&GroundAtom::from_texts("p", &["a"])));
        assert!(!db.contains(&GroundAtom::from_texts("p", &["a"])));
        assert_eq!(db.len(), 0);
        // The (now empty) relation keeps its arity pinned.
        assert!(db.insert(GroundAtom::from_texts("p", &["a", "b"])).is_err());
    }

    #[test]
    fn arity_mismatch_detected() {
        let mut db = Database::new();
        db.insert_texts("p", &["a"]);
        assert!(db.insert(GroundAtom::from_texts("p", &["a", "b"])).is_err());
    }

    #[test]
    fn universe_unions_program_and_database_constants() {
        let r = Rule::new(
            Atom::from_texts("p", &["a"]),
            vec![Literal::pos(Atom::from_texts("e", &["X"]))],
        );
        let prog = Program::new(vec![r]).unwrap();
        let mut db = Database::new();
        db.insert_texts("e", &["b"]);
        let u: Vec<&str> = Database::universe(&prog, &db)
            .iter()
            .map(|c| c.as_str())
            .collect();
        assert_eq!(u, vec!["a", "b"]);
    }

    #[test]
    fn nonuniform_check() {
        let r = Rule::new(
            Atom::from_texts("p", &["X"]),
            vec![Literal::pos(Atom::from_texts("e", &["X"]))],
        );
        let prog = Program::new(vec![r]).unwrap();
        let mut db = Database::new();
        db.insert_texts("e", &["a"]);
        assert!(db.idb_is_empty(&prog));
        db.insert_texts("p", &["a"]);
        assert!(!db.idb_is_empty(&prog));
    }

    #[test]
    fn display_is_sorted_and_parseable_shape() {
        let mut db = Database::new();
        db.insert_texts("e", &["b", "c"]);
        db.insert_texts("e", &["a", "b"]);
        db.insert_texts("d", &["z"]);
        assert_eq!(db.to_string(), "d(z).\ne(a, b).\ne(b, c).\n");
    }

    #[test]
    fn validate_against_program() {
        let r = Rule::new(
            Atom::from_texts("p", &["X"]),
            vec![Literal::pos(Atom::from_texts("e", &["X"]))],
        );
        let prog = Program::new(vec![r]).unwrap();
        let mut db = Database::new();
        db.insert_texts("e", &["a", "b"]); // wrong arity: program says 1
        assert!(db.validate_against(&prog).is_err());
    }
}
