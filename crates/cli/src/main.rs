//! `datalog` — command-line interface to the tie-breaking Datalog engine.
//!
//! ```text
//! datalog analyze  <program.dl>
//! datalog run      <program.dl> [database.dl] [--semantics wf|tb|pure-tb|stratified]
//!                  [--policy root-true|root-false|random] [--seed N]
//! datalog models   <program.dl> [database.dl] [--stable] [--limit N]
//! datalog ground   <program.dl> [database.dl]
//! datalog explain  <program.dl> [database.dl] --atom "win(a)" [--semantics wf|tb]
//! datalog outcomes <program.dl> [database.dl] [--semantics tb|pure-tb] [--limit N]
//! datalog totality <program.dl> [--nonuniform]          (propositional only)
//! ```
//!
//! Every command that grounds accepts `--ground-mode full|relevant`:
//! `full` (default) builds the paper-literal *G(Π, Δ)*; `relevant` builds
//! the join-based relevant grounding — same post-`close` semantics, far
//! smaller graphs on large databases.
//!
//! Every command that evaluates accepts `--eval-mode global|stratified`:
//! `global` (default) is the paper-literal loop; `stratified` drives the
//! interpreters over the SCC condensation of the residual graph — same
//! models and outcome sets, far faster on alternation-heavy instances.
//!
//! Programs use `head(X) :- body(X), not other(X).` syntax; database files
//! contain ground facts only.

use std::process::ExitCode;

use tiebreak_core::semantics::{RandomPolicy, RootFalsePolicy, RootTruePolicy, TiePolicy};
use tiebreak_core::{Engine, EngineConfig, EvalMode, GroundMode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage:\n  datalog analyze <program.dl>\n  datalog run <program.dl> [db.dl] [--semantics wf|tb|pure-tb|stratified] [--policy root-true|root-false|random] [--seed N]\n  datalog models <program.dl> [db.dl] [--stable] [--limit N]\n  datalog ground <program.dl> [db.dl]\n  datalog explain <program.dl> [db.dl] --atom \"win(a)\" [--semantics wf|tb]\n  datalog outcomes <program.dl> [db.dl] [--semantics tb|pure-tb] [--limit N]\n  datalog totality <program.dl> [--nonuniform]\n\nGrounding commands also accept --ground-mode full|relevant (default: full).\nEvaluating commands also accept --eval-mode global|stratified (default: global)."
        .to_owned()
}

struct Options {
    files: Vec<String>,
    semantics: String,
    policy: String,
    seed: u64,
    stable: bool,
    limit: usize,
    atom: Option<String>,
    nonuniform: bool,
    ground_mode: GroundMode,
    eval_mode: EvalMode,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        files: Vec::new(),
        semantics: "tb".to_owned(),
        policy: "root-true".to_owned(),
        seed: 0,
        stable: false,
        limit: 0,
        atom: None,
        nonuniform: false,
        ground_mode: GroundMode::Full,
        eval_mode: EvalMode::Global,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--semantics" => {
                opts.semantics = it.next().ok_or("--semantics needs a value")?.clone();
            }
            "--policy" => {
                opts.policy = it.next().ok_or("--policy needs a value")?.clone();
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--limit" => {
                opts.limit = it
                    .next()
                    .ok_or("--limit needs a value")?
                    .parse()
                    .map_err(|e| format!("bad limit: {e}"))?;
            }
            "--stable" => opts.stable = true,
            "--nonuniform" => opts.nonuniform = true,
            "--atom" => {
                opts.atom = Some(it.next().ok_or("--atom needs a value")?.clone());
            }
            "--ground-mode" => {
                opts.ground_mode = match it.next().ok_or("--ground-mode needs a value")?.as_str() {
                    "full" => GroundMode::Full,
                    "relevant" => GroundMode::Relevant,
                    other => return Err(format!("unknown ground mode {other} (full|relevant)")),
                };
            }
            "--eval-mode" => {
                opts.eval_mode = match it.next().ok_or("--eval-mode needs a value")?.as_str() {
                    "global" => EvalMode::Global,
                    "stratified" => EvalMode::Stratified,
                    other => return Err(format!("unknown eval mode {other} (global|stratified)")),
                };
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}"));
            }
            file => opts.files.push(file.to_owned()),
        }
    }
    Ok(opts)
}

fn load_engine(opts: &Options) -> Result<Engine, String> {
    let program_path = opts.files.first().ok_or_else(usage)?;
    let program_src = std::fs::read_to_string(program_path)
        .map_err(|e| format!("cannot read {program_path}: {e}"))?;
    let db_src = match opts.files.get(1) {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
        }
        None => String::new(),
    };
    Engine::from_sources(&program_src, &db_src)
        .map(|e| {
            e.with_config(
                EngineConfig::default()
                    .with_ground_mode(opts.ground_mode)
                    .with_eval_mode(opts.eval_mode),
            )
        })
        .map_err(|e| e.to_string())
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    let opts = parse_options(&args[1..])?;

    match command.as_str() {
        "analyze" => {
            let engine = load_engine(&opts)?;
            let report = engine.analyze().map_err(|e| e.to_string())?;
            print!("{report}");
            Ok(())
        }
        "run" => {
            let engine = load_engine(&opts)?;
            let outcome = match opts.semantics.as_str() {
                "wf" => engine.well_founded().map_err(|e| e.to_string())?,
                "tb" | "pure-tb" => {
                    let pure = opts.semantics == "pure-tb";
                    let mut policy: Box<dyn TiePolicy> = match opts.policy.as_str() {
                        "root-true" => Box::new(RootTruePolicy),
                        "root-false" => Box::new(RootFalsePolicy),
                        "random" => Box::new(RandomPolicy::seeded(opts.seed)),
                        other => return Err(format!("unknown policy {other}")),
                    };
                    let mut adapter = PolicyBox(&mut *policy);
                    let result = if pure {
                        engine.pure_tie_breaking(&mut adapter)
                    } else {
                        engine.well_founded_tie_breaking(&mut adapter)
                    };
                    result.map_err(|e| e.to_string())?
                }
                "stratified" => {
                    let run = engine.stratified().map_err(|e| e.to_string())?;
                    for fact in run.true_atoms() {
                        println!("{fact}.");
                    }
                    return Ok(());
                }
                other => return Err(format!("unknown semantics {other}")),
            };
            for fact in &outcome.true_facts {
                println!("{fact}.");
            }
            if !outcome.total {
                eprintln!(
                    "% partial model: {} atoms left undefined",
                    outcome.undefined.len()
                );
            }
            eprintln!(
                "% ties broken: {}, unfounded rounds: {}",
                outcome.stats.ties_broken, outcome.stats.unfounded_rounds
            );
            Ok(())
        }
        "models" => {
            let engine = load_engine(&opts)?;
            let models = if opts.stable {
                engine.stable_models().map_err(|e| e.to_string())?
            } else {
                engine.fixpoints().map_err(|e| e.to_string())?
            };
            let shown = if opts.limit == 0 {
                models.len()
            } else {
                opts.limit.min(models.len())
            };
            for (i, model) in models.iter().take(shown).enumerate() {
                println!("% model {} of {}:", i + 1, models.len());
                for fact in model {
                    println!("{fact}.");
                }
            }
            if models.is_empty() {
                println!(
                    "% no {} exist",
                    if opts.stable {
                        "stable models"
                    } else {
                        "fixpoints"
                    }
                );
            }
            Ok(())
        }
        "ground" => {
            let engine = load_engine(&opts)?;
            let graph = engine.ground().map_err(|e| e.to_string())?;
            println!(
                "% {} ground atoms, {} rule nodes, {} edges",
                graph.atom_count(),
                graph.rule_count(),
                graph.edge_count()
            );
            for i in 0..graph.rule_count() {
                println!(
                    "{}",
                    graph.describe_rule(engine.program(), datalog_ground::RuleId(i as u32))
                );
            }
            Ok(())
        }
        "explain" => {
            let engine = load_engine(&opts)?;
            let atom_src = opts.atom.ok_or("explain needs --atom \"pred(c1, ...)\"")?;
            let parsed = datalog_ast::parse_program(&format!("{atom_src}."))
                .map_err(|e| format!("bad --atom: {e}"))?;
            let ground_atom = parsed
                .rules()
                .first()
                .and_then(|r| r.head.to_ground())
                .ok_or("--atom must be a single ground atom")?;

            let graph = engine.ground().map_err(|e| e.to_string())?;
            let program = engine.program();
            let database = engine.database();
            let eval = tiebreak_core::EvalOptions::with_mode(opts.eval_mode);
            let model = match opts.semantics.as_str() {
                "wf" => {
                    tiebreak_core::semantics::well_founded_with(&graph, program, database, &eval)
                        .map_err(|e| e.to_string())?
                        .model
                }
                "tb" => {
                    let mut policy = RootTruePolicy;
                    tiebreak_core::semantics::well_founded_tie_breaking_with(
                        &graph,
                        program,
                        database,
                        &mut policy,
                        &eval,
                    )
                    .map_err(|e| e.to_string())?
                    .model
                }
                other => return Err(format!("explain supports wf|tb, not {other}")),
            };
            let id = graph
                .atoms()
                .id_of(&ground_atom)
                .ok_or_else(|| format!("atom {ground_atom} is not in the ground atom space"))?;
            let justification = tiebreak_core::analysis::justify(&graph, database, &model, id);
            println!(
                "{}",
                tiebreak_core::analysis::explain::render(
                    &graph,
                    program,
                    &model,
                    id,
                    &justification
                )
            );
            Ok(())
        }
        "outcomes" => {
            let engine = load_engine(&opts)?;
            let graph = engine.ground().map_err(|e| e.to_string())?;
            let max_runs = if opts.limit == 0 { 256 } else { opts.limit };
            let set = tiebreak_core::semantics::outcomes::all_outcomes_with(
                &graph,
                engine.program(),
                engine.database(),
                opts.semantics == "pure-tb",
                max_runs,
                &tiebreak_core::EvalOptions::with_mode(opts.eval_mode),
            )
            .map_err(|e| e.to_string())?;
            println!(
                "% {} distinct outcome(s) over {} run(s){}",
                set.models.len(),
                set.runs,
                if set.truncated { " (truncated)" } else { "" }
            );
            for (i, model) in set.models.iter().enumerate() {
                let facts: Vec<String> = model
                    .true_atoms(graph.atoms())
                    .iter()
                    .map(|f| f.to_string())
                    .collect();
                println!(
                    "% outcome {} ({}): {{{}}}",
                    i + 1,
                    if model.is_total() { "total" } else { "partial" },
                    facts.join(", ")
                );
            }
            Ok(())
        }
        "totality" => {
            let engine = load_engine(&opts)?;
            let report = tiebreak_core::analysis::propositional_totality(
                engine.program(),
                opts.nonuniform,
                &tiebreak_core::analysis::TotalityConfig::default(),
            )
            .map_err(|e| e.to_string())?;
            println!(
                "total ({}): {} ({} databases checked)",
                if opts.nonuniform {
                    "nonuniform"
                } else {
                    "uniform"
                },
                report.total,
                report.databases_checked
            );
            if let Some(cex) = report.counterexample {
                println!("counterexample database (no fixpoint):");
                print!("{cex}");
            }
            Ok(())
        }
        other => Err(format!("unknown command {other}\n{}", usage())),
    }
}

/// Adapter: lets a boxed policy satisfy the generic bound.
struct PolicyBox<'a>(&'a mut dyn TiePolicy);

impl TiePolicy for PolicyBox<'_> {
    fn choose_root_side_true(&mut self, view: &tiebreak_core::TieView<'_>) -> bool {
        self.0.choose_root_side_true(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_parsing() {
        let args: Vec<String> = [
            "prog.dl",
            "db.dl",
            "--semantics",
            "wf",
            "--seed",
            "7",
            "--stable",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = parse_options(&args).unwrap();
        assert_eq!(opts.files, vec!["prog.dl", "db.dl"]);
        assert_eq!(opts.semantics, "wf");
        assert_eq!(opts.seed, 7);
        assert!(opts.stable);
    }

    #[test]
    fn unknown_flag_rejected() {
        let args = vec!["--bogus".to_owned()];
        assert!(parse_options(&args).is_err());
    }

    #[test]
    fn missing_command_yields_usage() {
        let err = run(&[]).unwrap_err();
        assert!(err.contains("usage"));
    }
}
