//! `datalog` — command-line interface to the tie-breaking Datalog engine.
//!
//! ```text
//! datalog analyze  <program.dl>
//! datalog check    <program.dl> [database.dl] [--format text|json]
//! datalog run      <program.dl> [database.dl] [--semantics wf|tb|pure-tb|stratified]
//!                  [--policy root-true|root-false|random] [--seed N] [--threads N]
//! datalog models   <program.dl> [database.dl] [--stable] [--limit N]
//! datalog ground   <program.dl> [database.dl]
//! datalog explain  <program.dl> [database.dl] --atom "win(a)" [--semantics wf|tb]
//!                  [--threads N]
//! datalog outcomes <program.dl> [database.dl] [--semantics tb|pure-tb] [--limit N]
//!                  [--threads N]
//! datalog totality <program.dl> [--nonuniform]          (propositional only)
//! datalog session  <program.dl> [database.dl] [--script FILE] [--semantics tb|pure-tb]
//!                  [--threads N]
//! datalog serve    [--addr HOST:PORT] [--semantics tb|pure-tb] [--threads N]
//!                  [--max-sessions N] [--max-resident-atoms N] [--strict]
//!                  [--reactor | --legacy-threads] [--max-idle-secs N]
//! datalog client   <program.dl> [database.dl] --addr HOST:PORT [--script FILE]
//!                  [--concurrency N] [--repeat K]
//! datalog client   --addr HOST:PORT --stats | --metrics | --shutdown
//! ```
//!
//! `run`, `outcomes`, `session`, and `serve` accept `--trace-out FILE`
//! (write a chrome://tracing Trace Event JSON file when the command
//! finishes) and `--trace summary` (print a per-span aggregate table on
//! stderr). Either flag turns the span recorder on for the whole
//! command; without them tracing stays disabled and costs one atomic
//! load per instrumentation point. Tracing also unlocks the
//! `% timing: …` annotation on open replies and script query replies.
//!
//! `check` runs the `datalog-analyze` static pass — safety lints,
//! totality certificates, grounding cost estimates against the budget,
//! and reachability lints — without grounding or evaluating anything.
//! The exit status is non-zero exactly when an error-severity lint
//! fires (today: an exact full-mode grounding cost over budget), so CI
//! can gate on it; `--format json` emits the machine-readable report.
//!
//! `serve --strict` makes the server run the same pass on every open:
//! error lints reject the open before preparation is paid for, and the
//! open response carries a `% analysis: …` summary line.
//!
//! `session` holds **one long-lived solver** and streams a mutation
//! script against it (from `--script FILE`, or stdin): `+fact.` inserts,
//! `-fact.` retracts (consecutive mutations batch into one epoch),
//! `? wf` prints the current well-founded model, `?fact.` prints one
//! atom's truth value, `? outcomes [N]` enumerates tie outcomes, and
//! `? stats` reports the session state. Every applied batch prints a
//! `% epoch …` line describing the incremental work (cone size, delta
//! grounding, branch invalidation) or the re-prepare fallback.
//! Malformed lines do **not** tear the session down: the error is
//! reported as `! line N: …`, the staged-but-unapplied batch is
//! discarded, and processing continues; the exit status reports whether
//! any line failed.
//!
//! `serve` exposes the same session machinery over TCP: a long-lived
//! process managing many prepared sessions behind an LRU keyed by
//! program + database source, so repeated opens of the same pair skip
//! the ground → close → condense preparation entirely. The default
//! transport is a poll-based reactor with cross-connection query
//! batching (read-only script frames from many clients against one
//! session share a single evaluation); `--legacy-threads` selects the
//! pre-reactor thread-per-connection transport, and `--max-idle-secs N`
//! sets the reactor's idle-connection reaping deadline (0 disables).
//! `client` drives a served session with the same script language (and
//! `--shutdown` stops the server); `--concurrency N --repeat K` turns
//! it into a load generator that opens N concurrent connections and
//! streams the script K times on each, reporting aggregate throughput.
//! See the `tiebreak-server` crate docs for the wire protocol.
//!
//! Every command that grounds accepts `--ground-mode full|relevant`:
//! `relevant` (the production default) builds the join-based relevant
//! grounding; `full` builds the paper-literal *G(Π, Δ)* — same
//! post-`close` semantics, `relevant` is far smaller on large databases.
//!
//! Every command that evaluates accepts `--eval-mode global|stratified`:
//! `stratified` (the production default) drives the interpreters over the
//! SCC condensation of the residual graph; `global` is the paper-literal
//! loop — same models and outcome sets.
//!
//! `run`, `outcomes`, and `explain` accept `--threads N` (N ≥ 1; `0`
//! and non-numeric values are rejected with a diagnostic — omit the
//! flag for automatic selection via `TIEBREAK_THREADS`, which itself
//! warns and falls back when unusable): the query then goes through the
//! `tiebreak-runtime` session solver, which grounds, closes, and
//! condenses once and evaluates independent condensation branches on
//! `N` worker threads. With the deterministic
//! policies (`root-true`, `root-false`) output is bit-identical to the
//! sequential path and across thread counts; `--policy random` stays
//! reproducible per `--seed` and per thread count (choice streams are
//! keyed by branch), but draws different choices than the sequential
//! single-RNG run. For `outcomes` the session also forks each tie
//! script copy-on-write off the shared post-close state instead of
//! re-closing per script.
//!
//! Programs use `head(X) :- body(X), not other(X).` syntax; database files
//! contain ground facts only.

use std::process::ExitCode;

use tiebreak_core::engine::EvalOutcome;
use tiebreak_core::semantics::{RandomPolicy, RootFalsePolicy, RootTruePolicy, TiePolicy};
use tiebreak_core::{Engine, EngineConfig, EvalMode, GroundMode, RuntimeConfig};
use tiebreak_runtime::{uniform, PolicyFactory, Solver};
use tiebreak_server::{Client, LineOutcome, RegistryConfig, ScriptSession, Server, ServerConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage:\n  datalog analyze <program.dl>\n  datalog check <program.dl> [db.dl] [--format text|json]\n  datalog run <program.dl> [db.dl] [--semantics wf|tb|pure-tb|stratified] [--policy root-true|root-false|random] [--seed N] [--threads N]\n  datalog models <program.dl> [db.dl] [--stable] [--limit N]\n  datalog ground <program.dl> [db.dl]\n  datalog explain <program.dl> [db.dl] --atom \"win(a)\" [--semantics wf|tb] [--threads N]\n  datalog outcomes <program.dl> [db.dl] [--semantics tb|pure-tb] [--limit N] [--threads N]\n  datalog totality <program.dl> [--nonuniform]\n  datalog session <program.dl> [db.dl] [--script FILE] [--semantics tb|pure-tb] [--threads N]\n  datalog serve [--addr HOST:PORT] [--semantics tb|pure-tb] [--threads N] [--max-sessions N] [--max-resident-atoms N] [--strict] [--reactor | --legacy-threads] [--max-idle-secs N]\n  datalog client <program.dl> [db.dl] --addr HOST:PORT [--script FILE] [--concurrency N] [--repeat K]\n  datalog client --addr HOST:PORT --stats | --metrics | --shutdown\n\nGrounding commands also accept --ground-mode full|relevant (default: relevant).\nrun/outcomes/session/serve accept --trace-out FILE (chrome://tracing JSON) and\n--trace summary (aggregate span table on stderr); either enables the recorder.\nEvaluating commands also accept --eval-mode global|stratified (default: stratified).\n--threads N (N >= 1) routes run/outcomes/explain through the parallel session\nruntime; omit the flag for automatic selection via TIEBREAK_THREADS or the\nmachine's parallelism.\nsession scripts: '+fact.' insert, '-fact.' retract, '? wf', '?fact.',\n'? outcomes [N]', '? stats', '#' comments; reads stdin without --script.\nserve listens for client connections and keeps prepared sessions resident\nbehind an LRU; client opens (or reuses) a server-side session and streams a\nscript against it.\ncheck exits non-zero exactly when an error-severity lint fires; serve --strict\nruns the same analysis on every open and rejects error lints before preparing."
        .to_owned()
}

#[derive(Debug)]
struct Options {
    files: Vec<String>,
    semantics: String,
    policy: String,
    seed: u64,
    stable: bool,
    limit: usize,
    atom: Option<String>,
    nonuniform: bool,
    ground_mode: GroundMode,
    eval_mode: EvalMode,
    threads: Option<usize>,
    script: Option<String>,
    addr: Option<String>,
    max_sessions: usize,
    max_resident_atoms: u64,
    shutdown: bool,
    format: String,
    strict: bool,
    trace_out: Option<String>,
    trace_summary: bool,
    stats: bool,
    metrics: bool,
    reactor: bool,
    legacy_threads: bool,
    max_idle_secs: u64,
    concurrency: usize,
    repeat: usize,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        files: Vec::new(),
        semantics: "tb".to_owned(),
        policy: "root-true".to_owned(),
        seed: 0,
        stable: false,
        limit: 0,
        atom: None,
        nonuniform: false,
        ground_mode: GroundMode::Relevant,
        eval_mode: EvalMode::Stratified,
        threads: None,
        script: None,
        addr: None,
        max_sessions: 0,
        max_resident_atoms: 0,
        shutdown: false,
        format: "text".to_owned(),
        strict: false,
        trace_out: None,
        trace_summary: false,
        stats: false,
        metrics: false,
        reactor: false,
        legacy_threads: false,
        max_idle_secs: tiebreak_server::DEFAULT_MAX_IDLE_SECS,
        concurrency: 1,
        repeat: 1,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--semantics" => {
                opts.semantics = it.next().ok_or("--semantics needs a value")?.clone();
            }
            "--policy" => {
                opts.policy = it.next().ok_or("--policy needs a value")?.clone();
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--limit" => {
                opts.limit = it
                    .next()
                    .ok_or("--limit needs a value")?
                    .parse()
                    .map_err(|e| format!("bad limit: {e}"))?;
            }
            "--stable" => opts.stable = true,
            "--nonuniform" => opts.nonuniform = true,
            "--atom" => {
                opts.atom = Some(it.next().ok_or("--atom needs a value")?.clone());
            }
            "--ground-mode" => {
                opts.ground_mode = match it.next().ok_or("--ground-mode needs a value")?.as_str() {
                    "full" => GroundMode::Full,
                    "relevant" => GroundMode::Relevant,
                    other => return Err(format!("unknown ground mode {other} (full|relevant)")),
                };
            }
            "--eval-mode" => {
                opts.eval_mode = match it.next().ok_or("--eval-mode needs a value")?.as_str() {
                    "global" => EvalMode::Global,
                    "stratified" => EvalMode::Stratified,
                    other => return Err(format!("unknown eval mode {other} (global|stratified)")),
                };
            }
            "--threads" => {
                let raw = it.next().ok_or("--threads needs a value")?;
                let n: usize = raw.parse().map_err(|_| {
                    format!(
                        "bad thread count {raw:?}: --threads needs a positive integer \
                         (omit the flag for automatic selection via TIEBREAK_THREADS \
                         or the machine's parallelism)"
                    )
                })?;
                if n == 0 {
                    return Err("bad thread count 0: --threads needs at least one worker \
                                (omit the flag for automatic selection via TIEBREAK_THREADS \
                                or the machine's parallelism)"
                        .to_owned());
                }
                opts.threads = Some(n);
            }
            "--script" => {
                opts.script = Some(it.next().ok_or("--script needs a file path")?.clone());
            }
            "--addr" => {
                opts.addr = Some(it.next().ok_or("--addr needs HOST:PORT")?.clone());
            }
            "--max-sessions" => {
                opts.max_sessions = it
                    .next()
                    .ok_or("--max-sessions needs a value")?
                    .parse()
                    .map_err(|e| format!("bad session cap: {e}"))?;
            }
            "--max-resident-atoms" => {
                opts.max_resident_atoms = it
                    .next()
                    .ok_or("--max-resident-atoms needs a value")?
                    .parse()
                    .map_err(|e| format!("bad resident-atom budget: {e}"))?;
            }
            "--shutdown" => opts.shutdown = true,
            "--strict" => opts.strict = true,
            "--reactor" => opts.reactor = true,
            "--legacy-threads" => opts.legacy_threads = true,
            "--max-idle-secs" => {
                opts.max_idle_secs = it
                    .next()
                    .ok_or("--max-idle-secs needs a value (0 disables reaping)")?
                    .parse()
                    .map_err(|e| format!("bad idle deadline: {e}"))?;
            }
            "--concurrency" => {
                let n: usize = it
                    .next()
                    .ok_or("--concurrency needs a value")?
                    .parse()
                    .map_err(|e| format!("bad concurrency: {e}"))?;
                if n == 0 {
                    return Err("bad concurrency 0: need at least one connection".to_owned());
                }
                opts.concurrency = n;
            }
            "--repeat" => {
                let n: usize = it
                    .next()
                    .ok_or("--repeat needs a value")?
                    .parse()
                    .map_err(|e| format!("bad repeat count: {e}"))?;
                if n == 0 {
                    return Err("bad repeat count 0: need at least one round".to_owned());
                }
                opts.repeat = n;
            }
            "--stats" => opts.stats = true,
            "--metrics" => opts.metrics = true,
            "--trace-out" => {
                opts.trace_out = Some(it.next().ok_or("--trace-out needs a file path")?.clone());
            }
            "--trace" => match it.next().ok_or("--trace needs a value (summary)")?.as_str() {
                "summary" => opts.trace_summary = true,
                other => return Err(format!("unknown trace mode {other} (summary)")),
            },
            "--format" => {
                let value = it.next().ok_or("--format needs a value")?;
                match value.as_str() {
                    "text" | "json" => opts.format = value.clone(),
                    other => return Err(format!("unknown format {other} (text|json)")),
                }
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}"));
            }
            file => opts.files.push(file.to_owned()),
        }
    }
    Ok(opts)
}

fn engine_config(opts: &Options) -> EngineConfig {
    EngineConfig::default()
        .with_ground_mode(opts.ground_mode)
        .with_eval_mode(opts.eval_mode)
        .with_runtime(RuntimeConfig::with_threads(opts.threads.unwrap_or(0)))
}

/// Reads the program and (optional) database sources named in `opts`.
fn load_sources(opts: &Options) -> Result<(String, String), String> {
    let program_path = opts.files.first().ok_or_else(usage)?;
    let program_src = std::fs::read_to_string(program_path)
        .map_err(|e| format!("cannot read {program_path}: {e}"))?;
    let db_src = match opts.files.get(1) {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
        }
        None => String::new(),
    };
    Ok((program_src, db_src))
}

fn load_engine(opts: &Options) -> Result<Engine, String> {
    let (program_src, db_src) = load_sources(opts)?;
    Engine::from_sources(&program_src, &db_src)
        .map(|e| e.with_config(engine_config(opts)))
        .map_err(|e| e.to_string())
}

/// Builds the session solver for the `--threads` paths (parsing the
/// sources directly — no intermediate `Engine` to clone out of).
fn load_solver(opts: &Options) -> Result<Solver, String> {
    let (program_src, db_src) = load_sources(opts)?;
    let program = datalog_ast::parse_program(&program_src).map_err(|e| e.to_string())?;
    let database = datalog_ast::parse_database(&db_src).map_err(|e| e.to_string())?;
    Solver::with_config(program, database, engine_config(opts)).map_err(|e| e.to_string())
}

/// `--policy random` for the session path: one independently seeded
/// stream per branch. Deterministic for a given `--seed` and across
/// thread counts (the stream is keyed by the schedule-independent
/// branch id) — but *not* the same choice sequence as the sequential
/// path, which threads a single RNG through the whole run.
struct BranchSeededRandom(u64);

impl PolicyFactory for BranchSeededRandom {
    type Policy = RandomPolicy;

    fn policy_for(&self, branch: u32) -> RandomPolicy {
        // Mix the branch id in with the golden-ratio multiplier so
        // adjacent branches get unrelated streams.
        RandomPolicy::seeded(self.0 ^ u64::from(branch).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

/// Runs a tie-breaking flavour on the session solver with the chosen
/// policy lifted per branch.
fn solver_tie_breaking(solver: &Solver, pure: bool, opts: &Options) -> Result<EvalOutcome, String> {
    fn go<F: PolicyFactory>(
        solver: &Solver,
        pure: bool,
        factory: &F,
    ) -> Result<EvalOutcome, String> {
        if pure {
            solver.pure_tie_breaking(factory)
        } else {
            solver.well_founded_tie_breaking(factory)
        }
        .map_err(|e| e.to_string())
    }
    match opts.policy.as_str() {
        "root-true" => go(solver, pure, &uniform(RootTruePolicy)),
        "root-false" => go(solver, pure, &uniform(RootFalsePolicy)),
        "random" => go(solver, pure, &BranchSeededRandom(opts.seed)),
        other => Err(format!("unknown policy {other}")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    let opts = parse_options(&args[1..])?;

    let tracing = opts.trace_out.is_some() || opts.trace_summary;
    if tracing {
        tiebreak_trace::set_enabled(true);
    }
    let result = dispatch(command, &opts);
    if tracing {
        // Command failures still export whatever was recorded — a trace
        // of the failing run is exactly what you want to look at.
        let trace = tiebreak_trace::Trace::from_events(tiebreak_trace::drain());
        let mut export_err = None;
        if let Some(path) = &opts.trace_out {
            match std::fs::write(path, trace.to_chrome_json()) {
                Ok(()) => eprintln!("% trace: {} event(s) written to {path}", trace.events.len()),
                Err(e) => export_err = Some(format!("cannot write trace to {path}: {e}")),
            }
        }
        if opts.trace_summary {
            eprintln!("{}", trace.summary());
        }
        if let Some(e) = export_err {
            return Err(match result {
                Ok(()) => e,
                Err(first) => format!("{first}\n{e}"),
            });
        }
    }
    result
}

fn dispatch(command: &str, opts: &Options) -> Result<(), String> {
    match command {
        "analyze" => {
            let engine = load_engine(opts)?;
            let report = engine.analyze().map_err(|e| e.to_string())?;
            print!("{report}");
            Ok(())
        }
        "check" => {
            let (program_src, db_src) = load_sources(opts)?;
            let program = datalog_ast::parse_program(&program_src).map_err(|e| e.to_string())?;
            let database = match opts.files.get(1) {
                Some(_) => Some(datalog_ast::parse_database(&db_src).map_err(|e| e.to_string())?),
                None => None,
            };
            let config = datalog_analyze::AnalyzeConfig::for_ground(datalog_ground::GroundConfig {
                mode: opts.ground_mode,
                ..datalog_ground::GroundConfig::default()
            });
            let report = datalog_analyze::analyze(&program, database.as_ref(), &config);
            if opts.format == "json" {
                println!("{}", report.to_json());
            } else {
                print!("{report}");
                println!("% {}", report.summary());
            }
            if report.has_errors() {
                return Err(format!("{} error-level lint(s)", report.error_count()));
            }
            Ok(())
        }
        "run" => {
            let outcome = match opts.semantics.as_str() {
                "wf" => {
                    if opts.threads.is_some() {
                        load_solver(opts)?
                            .well_founded()
                            .map_err(|e| e.to_string())?
                    } else {
                        load_engine(opts)?
                            .well_founded()
                            .map_err(|e| e.to_string())?
                    }
                }
                "tb" | "pure-tb" => {
                    let pure = opts.semantics == "pure-tb";
                    if opts.threads.is_some() {
                        let solver = load_solver(opts)?;
                        solver_tie_breaking(&solver, pure, opts)?
                    } else {
                        let engine = load_engine(opts)?;
                        let mut policy: Box<dyn TiePolicy> = match opts.policy.as_str() {
                            "root-true" => Box::new(RootTruePolicy),
                            "root-false" => Box::new(RootFalsePolicy),
                            "random" => Box::new(RandomPolicy::seeded(opts.seed)),
                            other => return Err(format!("unknown policy {other}")),
                        };
                        let mut adapter = PolicyBox(&mut *policy);
                        let result = if pure {
                            engine.pure_tie_breaking(&mut adapter)
                        } else {
                            engine.well_founded_tie_breaking(&mut adapter)
                        };
                        result.map_err(|e| e.to_string())?
                    }
                }
                "stratified" => {
                    if opts.threads.is_some() {
                        return Err(
                            "--threads applies to wf|tb|pure-tb (--semantics stratified is the \
                             sequential semi-naive engine)"
                                .to_owned(),
                        );
                    }
                    let engine = load_engine(opts)?;
                    let run = engine.stratified().map_err(|e| e.to_string())?;
                    for fact in run.true_atoms() {
                        println!("{fact}.");
                    }
                    return Ok(());
                }
                other => return Err(format!("unknown semantics {other}")),
            };
            for fact in &outcome.true_facts {
                println!("{fact}.");
            }
            if !outcome.total {
                eprintln!(
                    "% partial model: {} atoms left undefined",
                    outcome.undefined.len()
                );
            }
            eprintln!(
                "% ties broken: {}, unfounded rounds: {}",
                outcome.stats.ties_broken, outcome.stats.unfounded_rounds
            );
            Ok(())
        }
        "models" => {
            let engine = load_engine(opts)?;
            let models = if opts.stable {
                engine.stable_models().map_err(|e| e.to_string())?
            } else {
                engine.fixpoints().map_err(|e| e.to_string())?
            };
            let shown = if opts.limit == 0 {
                models.len()
            } else {
                opts.limit.min(models.len())
            };
            for (i, model) in models.iter().take(shown).enumerate() {
                println!("% model {} of {}:", i + 1, models.len());
                for fact in model {
                    println!("{fact}.");
                }
            }
            if models.is_empty() {
                println!(
                    "% no {} exist",
                    if opts.stable {
                        "stable models"
                    } else {
                        "fixpoints"
                    }
                );
            }
            Ok(())
        }
        "ground" => {
            let engine = load_engine(opts)?;
            let graph = engine.ground().map_err(|e| e.to_string())?;
            println!(
                "% {} ground atoms, {} rule nodes, {} edges",
                graph.atom_count(),
                graph.rule_count(),
                graph.edge_count()
            );
            for i in 0..graph.rule_count() {
                println!(
                    "{}",
                    graph.describe_rule(engine.program(), datalog_ground::RuleId(i as u32))
                );
            }
            Ok(())
        }
        "explain" => {
            let atom_src = opts
                .atom
                .clone()
                .ok_or("explain needs --atom \"pred(c1, ...)\"")?;
            let parsed = datalog_ast::parse_program(&format!("{atom_src}."))
                .map_err(|e| format!("bad --atom: {e}"))?;
            let ground_atom = parsed
                .rules()
                .first()
                .and_then(|r| r.head.to_ground())
                .ok_or("--atom must be a single ground atom")?;

            if opts.threads.is_some() {
                // Session path: the solver's prepared graph carries the
                // atom space the parallel run's model is indexed by.
                let solver = load_solver(opts)?;
                let run = match opts.semantics.as_str() {
                    "wf" => solver.well_founded_run().map_err(|e| e.to_string())?,
                    "tb" => solver
                        .well_founded_tie_breaking_run(&uniform(RootTruePolicy))
                        .map_err(|e| e.to_string())?,
                    other => return Err(format!("explain supports wf|tb, not {other}")),
                };
                print_explanation(
                    solver.graph(),
                    solver.program(),
                    solver.database(),
                    &run.model,
                    &ground_atom,
                )
            } else {
                let engine = load_engine(opts)?;
                let graph = engine.ground().map_err(|e| e.to_string())?;
                let program = engine.program();
                let database = engine.database();
                let eval = tiebreak_core::EvalOptions::with_mode(opts.eval_mode);
                let model = match opts.semantics.as_str() {
                    "wf" => {
                        tiebreak_core::semantics::well_founded_with(
                            &graph, program, database, &eval,
                        )
                        .map_err(|e| e.to_string())?
                        .model
                    }
                    "tb" => {
                        let mut policy = RootTruePolicy;
                        tiebreak_core::semantics::well_founded_tie_breaking_with(
                            &graph,
                            program,
                            database,
                            &mut policy,
                            &eval,
                        )
                        .map_err(|e| e.to_string())?
                        .model
                    }
                    other => return Err(format!("explain supports wf|tb, not {other}")),
                };
                print_explanation(&graph, program, database, &model, &ground_atom)
            }
        }
        "outcomes" => {
            let max_runs = if opts.limit == 0 { 256 } else { opts.limit };
            let pure = opts.semantics == "pure-tb";
            if opts.threads.is_some() {
                // Session path: one ground + close, copy-on-write forks
                // per tie script.
                let solver = load_solver(opts)?;
                let set = solver
                    .all_outcomes(pure, max_runs)
                    .map_err(|e| e.to_string())?;
                print_outcomes(&set, solver.graph().atoms());
            } else {
                let engine = load_engine(opts)?;
                let graph = engine.ground().map_err(|e| e.to_string())?;
                let set = tiebreak_core::semantics::outcomes::all_outcomes_with(
                    &graph,
                    engine.program(),
                    engine.database(),
                    pure,
                    max_runs,
                    &tiebreak_core::EvalOptions::with_mode(opts.eval_mode),
                )
                .map_err(|e| e.to_string())?;
                print_outcomes(&set, graph.atoms());
            }
            Ok(())
        }
        "totality" => {
            let engine = load_engine(opts)?;
            let report = tiebreak_core::analysis::propositional_totality(
                engine.program(),
                opts.nonuniform,
                &tiebreak_core::analysis::TotalityConfig::default(),
            )
            .map_err(|e| e.to_string())?;
            println!(
                "total ({}): {} ({} databases checked)",
                if opts.nonuniform {
                    "nonuniform"
                } else {
                    "uniform"
                },
                report.total,
                report.databases_checked
            );
            if let Some(cex) = report.counterexample {
                println!("counterexample database (no fixpoint):");
                print!("{cex}");
            }
            Ok(())
        }
        "session" => {
            let solver = load_solver(opts)?;
            match &opts.script {
                Some(path) => {
                    let script = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?;
                    run_session_lines(solver, script.lines().map(|l| Ok(l.to_owned())), opts)
                }
                None => {
                    // Line-streamed so the session can be driven
                    // request/response over a pipe (or interactively):
                    // each line is processed — and its answer flushed —
                    // before the next read blocks.
                    use std::io::BufRead as _;
                    let stdin = std::io::stdin();
                    run_session_lines(
                        solver,
                        stdin
                            .lock()
                            .lines()
                            .map(|l| l.map_err(|e| format!("cannot read stdin: {e}"))),
                        opts,
                    )
                }
            }
        }
        "serve" => run_serve(opts),
        "client" => run_client(opts),
        other => Err(format!("unknown command {other}\n{}", usage())),
    }
}

/// Streams mutation-script lines against one long-lived [`Solver`]
/// through the shared [`ScriptSession`] interpreter, flushing stdout
/// after every processed line so a pipe driver gets each answer before
/// the next read blocks.
///
/// A malformed line does not tear the session down: the interpreter
/// reports `! line N: …` on stdout, discards the staged batch, and
/// keeps going. The exit status still reflects whether anything failed.
fn run_session_lines(
    solver: Solver,
    lines: impl Iterator<Item = Result<String, String>>,
    opts: &Options,
) -> Result<(), String> {
    use std::io::Write as _;

    // Surface the thread-resolution diagnostic (e.g. an unusable
    // TIEBREAK_THREADS) once per session, on stderr like every other
    // CLI diagnostic.
    if let Some(diag) = solver.thread_diagnostic() {
        eprintln!("{diag}");
    }
    let mut session = ScriptSession::new(solver, opts.semantics == "pure-tb");
    let mut stdout = std::io::stdout();
    let mut errors = 0usize;
    let mut first_error: Option<usize> = None;
    for (idx, raw) in lines.enumerate() {
        let raw = raw?;
        let lineno = idx + 1;
        let outcome = session
            .process_line(lineno, &raw, &mut stdout)
            .map_err(|e| format!("cannot write stdout: {e}"))?;
        if outcome == LineOutcome::Error {
            errors += 1;
            first_error.get_or_insert(lineno);
        }
        stdout.flush().ok();
    }
    if session
        .finish(&mut stdout)
        .map_err(|e| format!("cannot write stdout: {e}"))?
        == LineOutcome::Error
    {
        errors += 1;
    }
    stdout.flush().ok();
    match (errors, first_error) {
        (0, _) => Ok(()),
        (n, Some(line)) => Err(format!(
            "session completed with {n} script error(s), first at line {line}"
        )),
        (n, None) => Err(format!(
            "session completed with {n} script error(s) in the final batch"
        )),
    }
}

/// `datalog serve`: a long-lived multi-session server over the LRU
/// session registry.
fn run_serve(opts: &Options) -> Result<(), String> {
    use std::io::Write as _;

    let addr = opts.addr.as_deref().unwrap_or("127.0.0.1:4545");
    let mut registry = RegistryConfig {
        engine: engine_config(opts),
        strict: opts.strict,
        pure: opts.semantics == "pure-tb",
        ..RegistryConfig::default()
    };
    if opts.max_sessions > 0 {
        registry.max_sessions = opts.max_sessions;
    }
    if opts.max_resident_atoms > 0 {
        registry.max_resident_atoms = opts.max_resident_atoms;
    }
    if opts.reactor && opts.legacy_threads {
        return Err("--reactor and --legacy-threads are mutually exclusive".to_owned());
    }
    let mode = if opts.legacy_threads {
        tiebreak_server::ServerMode::LegacyThreads
    } else {
        // The reactor is the default; --reactor spells it out.
        tiebreak_server::ServerMode::Reactor
    };
    let server = Server::bind(
        addr,
        ServerConfig {
            registry,
            max_frame_bytes: 0,
            mode,
            max_idle_secs: opts.max_idle_secs,
            workers: 0,
        },
    )
    .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!(
        "listening on {}",
        server.local_addr().map_err(|e| e.to_string())?
    );
    std::io::stdout().flush().ok();
    server.run().map_err(|e| format!("server failed: {e}"))
}

/// `datalog client`: opens (or reuses) a server-side session and
/// streams a script against it; `--shutdown` stops the server instead.
fn run_client(opts: &Options) -> Result<(), String> {
    let addr = opts
        .addr
        .as_deref()
        .ok_or("client needs --addr HOST:PORT")?;
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    if opts.shutdown {
        let response = client.shutdown().map_err(|e| e.to_string())?;
        println!("% {}", response.status);
        return Ok(());
    }
    if opts.stats {
        let response = client.stats().map_err(|e| e.to_string())?;
        println!("% {}", response.status);
        // Per-session breakdown (and, with a session open on this
        // connection, the thread-pool line) rides in the body.
        if !response.body.is_empty() {
            println!("{}", response.body);
        }
        let _ = client.bye();
        return Ok(());
    }
    if opts.metrics {
        let response = client.metrics().map_err(|e| e.to_string())?;
        print!("{}", response.body);
        let _ = client.bye();
        return Ok(());
    }
    let (program_src, db_src) = load_sources(opts)?;
    let script = match &opts.script {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
        }
        None => {
            use std::io::Read as _;
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            buf
        }
    };
    if opts.concurrency > 1 || opts.repeat > 1 {
        // Load-generator mode: this connection only probed the server;
        // the generator opens its own.
        let _ = client.bye();
        return run_load(opts, addr, &program_src, &db_src, &script);
    }
    let response = client
        .open(&program_src, &db_src)
        .map_err(|e| e.to_string())?;
    println!("% {}", response.status);
    // The body carries server-side diagnostics (e.g. the
    // TIEBREAK_THREADS fallback warning) — show them.
    if !response.body.is_empty() {
        println!("{}", response.body);
    }
    let response = client.script(&script).map_err(|e| e.to_string())?;
    print!("{}", response.body);
    let _ = client.bye();
    let errors: usize = response
        .status
        .strip_prefix("errors=")
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    if errors > 0 {
        return Err(format!("server reported {errors} script error(s)"));
    }
    Ok(())
}

/// `datalog client --concurrency N --repeat K`: a built-in load
/// generator. N connections open the same session concurrently and
/// each streams the script K times; per-script bodies are discarded
/// and one summary line reports aggregate throughput, so the bench and
/// smoke jobs can drive real concurrent connections without ad-hoc
/// shell scaffolding. Exits non-zero if any connection fails or any
/// script line errors.
fn run_load(
    opts: &Options,
    addr: &str,
    program_src: &str,
    db_src: &str,
    script: &str,
) -> Result<(), String> {
    let conns = opts.concurrency;
    let repeat = opts.repeat;
    let started = std::time::Instant::now();
    let results: Vec<Result<usize, String>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..conns)
            .map(|_| {
                scope.spawn(move || -> Result<usize, String> {
                    let mut client = Client::connect(addr)
                        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
                    client
                        .open(program_src, db_src)
                        .map_err(|e| format!("open failed: {e}"))?;
                    let mut errors = 0usize;
                    for _ in 0..repeat {
                        let response = client
                            .script(script)
                            .map_err(|e| format!("script failed: {e}"))?;
                        errors += response
                            .status
                            .strip_prefix("errors=")
                            .and_then(|s| s.split_whitespace().next())
                            .and_then(|s| s.parse::<usize>().ok())
                            .unwrap_or(0);
                    }
                    let _ = client.bye();
                    Ok(errors)
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().unwrap_or_else(|_| Err("worker panicked".into())))
            .collect()
    });
    let wall = started.elapsed();
    let mut failures = Vec::new();
    let mut script_errors = 0usize;
    for result in results {
        match result {
            Ok(errors) => script_errors += errors,
            Err(e) => failures.push(e),
        }
    }
    let scripts = conns * repeat;
    let per_sec = if wall.as_secs_f64() > 0.0 {
        scripts as f64 / wall.as_secs_f64()
    } else {
        0.0
    };
    println!(
        "% load: concurrency={conns} repeat={repeat} scripts={scripts} wall_ms={:.1} \
         scripts_per_sec={per_sec:.0} script_errors={script_errors} failed_connections={}",
        wall.as_secs_f64() * 1e3,
        failures.len(),
    );
    if let Some(first) = failures.first() {
        return Err(format!(
            "{} of {conns} connection(s) failed, first: {first}",
            failures.len()
        ));
    }
    if script_errors > 0 {
        return Err(format!("server reported {script_errors} script error(s)"));
    }
    Ok(())
}

/// Prints an outcome set in the shared `outcomes` format.
fn print_outcomes(
    set: &tiebreak_core::semantics::outcomes::OutcomeSet,
    atoms: &datalog_ground::AtomTable,
) {
    let mut stdout = std::io::stdout();
    tiebreak_server::script::write_outcomes(&mut stdout, set, atoms).expect("stdout");
}

/// Justifies and renders one atom against a computed model.
fn print_explanation(
    graph: &datalog_ground::GroundGraph,
    program: &datalog_ast::Program,
    database: &datalog_ast::Database,
    model: &datalog_ground::PartialModel,
    ground_atom: &datalog_ast::GroundAtom,
) -> Result<(), String> {
    let id = graph
        .atoms()
        .id_of(ground_atom)
        .ok_or_else(|| format!("atom {ground_atom} is not in the ground atom space"))?;
    let justification = tiebreak_core::analysis::justify(graph, database, model, id);
    println!(
        "{}",
        tiebreak_core::analysis::explain::render(graph, program, model, id, &justification)
    );
    Ok(())
}

/// Adapter: lets a boxed policy satisfy the generic bound.
struct PolicyBox<'a>(&'a mut dyn TiePolicy);

impl TiePolicy for PolicyBox<'_> {
    fn choose_root_side_true(&mut self, view: &tiebreak_core::TieView<'_>) -> bool {
        self.0.choose_root_side_true(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_parsing() {
        let args: Vec<String> = [
            "prog.dl",
            "db.dl",
            "--semantics",
            "wf",
            "--seed",
            "7",
            "--stable",
        ]
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
        let opts = parse_options(&args).unwrap();
        assert_eq!(opts.files, vec!["prog.dl", "db.dl"]);
        assert_eq!(opts.semantics, "wf");
        assert_eq!(opts.seed, 7);
        assert!(opts.stable);
    }

    #[test]
    fn check_flags_parse() {
        let args: Vec<String> = ["prog.dl", "db.dl", "--format", "json", "--strict"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let opts = parse_options(&args).unwrap();
        assert_eq!(opts.format, "json");
        assert!(opts.strict);
    }

    #[test]
    fn bad_format_rejected() {
        let args: Vec<String> = ["--format", "yaml"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let err = parse_options(&args).unwrap_err();
        assert!(err.contains("unknown format"));
    }

    #[test]
    fn unknown_flag_rejected() {
        let args = vec!["--bogus".to_owned()];
        assert!(parse_options(&args).is_err());
    }

    #[test]
    fn trace_flags_parse() {
        let args: Vec<String> = ["prog.dl", "--trace-out", "trace.json", "--trace", "summary"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let opts = parse_options(&args).unwrap();
        assert_eq!(opts.trace_out.as_deref(), Some("trace.json"));
        assert!(opts.trace_summary);
    }

    #[test]
    fn bad_trace_mode_rejected() {
        let args: Vec<String> = ["--trace", "everything"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let err = parse_options(&args).unwrap_err();
        assert!(err.contains("unknown trace mode"));
    }

    #[test]
    fn client_stats_and_metrics_flags_parse() {
        let args: Vec<String> = ["--addr", "127.0.0.1:4545", "--stats", "--metrics"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let opts = parse_options(&args).unwrap();
        assert!(opts.stats);
        assert!(opts.metrics);
        assert_eq!(opts.addr.as_deref(), Some("127.0.0.1:4545"));
    }

    #[test]
    fn reactor_and_idle_flags_parse() {
        let args: Vec<String> = ["--reactor", "--max-idle-secs", "45"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let opts = parse_options(&args).unwrap();
        assert!(opts.reactor);
        assert!(!opts.legacy_threads);
        assert_eq!(opts.max_idle_secs, 45);
    }

    #[test]
    fn legacy_threads_flag_parses() {
        let args = vec!["--legacy-threads".to_owned()];
        let opts = parse_options(&args).unwrap();
        assert!(opts.legacy_threads);
        assert_eq!(
            opts.max_idle_secs,
            tiebreak_server::DEFAULT_MAX_IDLE_SECS,
            "idle deadline defaults to the server's constant"
        );
    }

    #[test]
    fn load_generator_flags_parse() {
        let args: Vec<String> = [
            "prog.dl",
            "--addr",
            "127.0.0.1:4545",
            "--concurrency",
            "32",
            "--repeat",
            "8",
        ]
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
        let opts = parse_options(&args).unwrap();
        assert_eq!(opts.concurrency, 32);
        assert_eq!(opts.repeat, 8);
    }

    #[test]
    fn zero_concurrency_and_repeat_rejected() {
        let err = parse_options(&["--concurrency".to_owned(), "0".to_owned()]).unwrap_err();
        assert!(err.contains("at least one connection"));
        let err = parse_options(&["--repeat".to_owned(), "0".to_owned()]).unwrap_err();
        assert!(err.contains("at least one round"));
    }

    #[test]
    fn conflicting_transport_flags_rejected() {
        let args: Vec<String> = ["serve", "--reactor", "--legacy-threads"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let err = run(&args).unwrap_err();
        assert!(err.contains("mutually exclusive"));
    }

    #[test]
    fn missing_command_yields_usage() {
        let err = run(&[]).unwrap_err();
        assert!(err.contains("usage"));
    }
}
