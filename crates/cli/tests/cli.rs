//! End-to-end tests of the `datalog` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tiebreak-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write temp file");
    path
}

fn datalog(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_datalog"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn analyze_reports_structure() {
    let prog = write_temp("archetype.dl", "p(X) :- not q(X).\nq(X) :- not p(X).");
    let out = datalog(&["analyze", prog.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("stratified:                     false"),
        "{text}"
    );
    assert!(
        text.contains("structurally total (Thm 2):     true"),
        "{text}"
    );
}

#[test]
fn run_well_founded_prints_facts() {
    let prog = write_temp("wm.dl", "win(X) :- move(X, Y), not win(Y).");
    let db = write_temp("wm_db.dl", "move(a, b).\nmove(b, c).");
    let out = datalog(&[
        "run",
        prog.to_str().unwrap(),
        db.to_str().unwrap(),
        "--semantics",
        "wf",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("win(b)."), "{text}");
    assert!(!text.contains("win(a)."), "{text}");
}

#[test]
fn run_tie_breaking_decides_the_draw() {
    let prog = write_temp("draw.dl", "win(X) :- move(X, Y), not win(Y).");
    let db = write_temp("draw_db.dl", "move(a, b).\nmove(b, a).");
    let out = datalog(&[
        "run",
        prog.to_str().unwrap(),
        db.to_str().unwrap(),
        "--semantics",
        "tb",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // Exactly one of the two positions wins.
    let wins = text.matches("win(").count();
    assert_eq!(wins, 1, "{text}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("ties broken: 1"), "{stderr}");
}

#[test]
fn threads_flag_routes_through_the_session_runtime() {
    let prog = write_temp("rt.dl", "win(X) :- move(X, Y), not win(Y).");
    let db = write_temp(
        "rt_db.dl",
        "move(a, b).\nmove(b, a).\nmove(c, d).\nmove(d, c).\nmove(e, f).\nmove(f, g).",
    );

    // `run --threads` must print exactly what the sequential path prints.
    let mut outputs = Vec::new();
    for extra in [&[][..], &["--threads", "1"][..], &["--threads", "4"][..]] {
        let mut args = vec![
            "run",
            prog.to_str().unwrap(),
            db.to_str().unwrap(),
            "--semantics",
            "tb",
        ];
        args.extend_from_slice(extra);
        let out = datalog(&args);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        outputs.push(String::from_utf8_lossy(&out.stdout).into_owned());
    }
    assert_eq!(outputs[0], outputs[1], "sequential vs session");
    assert_eq!(outputs[1], outputs[2], "1 vs 4 workers");

    // `outcomes --threads` enumerates the same outcome count (2 pockets
    // ⇒ 4 total outcomes) through the copy-on-write path.
    let out = datalog(&[
        "outcomes",
        prog.to_str().unwrap(),
        db.to_str().unwrap(),
        "--threads",
        "2",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("% 4 distinct outcome(s)"), "{text}");

    // `explain --threads` justifies against the session's model.
    let out = datalog(&[
        "explain",
        prog.to_str().unwrap(),
        db.to_str().unwrap(),
        "--atom",
        "win(f)",
        "--semantics",
        "wf",
        "--threads",
        "2",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("win(f)"), "{text}");
}

#[test]
fn stratified_semantics_rejects_threads() {
    let prog = write_temp("strat_t.dl", "t(X, Y) :- e(X, Y).");
    let db = write_temp("strat_t_db.dl", "e(a, b).");
    let out = datalog(&[
        "run",
        prog.to_str().unwrap(),
        db.to_str().unwrap(),
        "--semantics",
        "stratified",
        "--threads",
        "2",
    ]);
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("--threads applies to"), "{text}");
}

#[test]
fn random_policy_with_threads_is_seed_reproducible() {
    let prog = write_temp("rand_t.dl", "win(X) :- move(X, Y), not win(Y).");
    let db = write_temp(
        "rand_t_db.dl",
        "move(a, b).\nmove(b, a).\nmove(c, d).\nmove(d, c).",
    );
    let run = |threads: &str| {
        let out = datalog(&[
            "run",
            prog.to_str().unwrap(),
            db.to_str().unwrap(),
            "--policy",
            "random",
            "--seed",
            "7",
            "--threads",
            threads,
        ]);
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    // Branch-keyed streams: same seed ⇒ same choices, whatever the
    // worker count.
    assert_eq!(run("1"), run("1"));
    assert_eq!(run("1"), run("8"));
}

#[test]
fn bad_threads_value_is_rejected() {
    let prog = write_temp("rt_bad.dl", "p :- not q.\nq :- not p.");
    // Non-numeric: a clear diagnostic pointing at the auto default.
    let out = datalog(&["run", prog.to_str().unwrap(), "--threads", "many"]);
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("bad thread count"), "{text}");
    assert!(text.contains("positive integer"), "{text}");
    assert!(text.contains("TIEBREAK_THREADS"), "{text}");

    // Zero workers cannot run anything: rejected, not silently "auto".
    let out = datalog(&["run", prog.to_str().unwrap(), "--threads", "0"]);
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("bad thread count 0"), "{text}");
    assert!(text.contains("at least one worker"), "{text}");
}

#[test]
fn unusable_tiebreak_threads_env_warns_and_falls_back() {
    let prog = write_temp("env_t.dl", "win(X) :- move(X, Y), not win(Y).");
    let db = write_temp("env_t_db.dl", "move(a, b).\nmove(b, a).");
    let script = write_temp("env_t_script.txt", "? outcomes 10\n");
    for bad in ["many", "0", "-3"] {
        // An explicit --threads pins the count: the env var is not even
        // consulted, so no warning and a clean run.
        let out = Command::new(env!("CARGO_BIN_EXE_datalog"))
            .args([
                "run",
                prog.to_str().unwrap(),
                db.to_str().unwrap(),
                "--threads",
                "1",
            ])
            .env("TIEBREAK_THREADS", bad)
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "TIEBREAK_THREADS={bad}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(!err.contains("TIEBREAK_THREADS"), "{err}");

        // The session resolves threads automatically: the unusable value
        // warns on stderr and falls back to the machine's parallelism
        // instead of silently ignoring the setting (or crashing).
        let out = Command::new(env!("CARGO_BIN_EXE_datalog"))
            .args([
                "session",
                prog.to_str().unwrap(),
                db.to_str().unwrap(),
                "--script",
                script.to_str().unwrap(),
            ])
            .env("TIEBREAK_THREADS", bad)
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "TIEBREAK_THREADS={bad}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("2 distinct outcome(s)"), "{text}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("TIEBREAK_THREADS"),
            "TIEBREAK_THREADS={bad}: {err}"
        );
        assert!(err.contains("not a positive integer"), "{err}");
    }
}

#[test]
fn session_scripts_mutate_and_query() {
    let prog = write_temp("sess.dl", "win(X) :- move(X, Y), not win(Y).");
    let db = write_temp("sess_db.dl", "move(a, b).\nmove(b, c).");
    let script = write_temp(
        "sess_script.txt",
        "# a long-lived OLTP-style session\n\
         ? win(a)\n\
         + move(c, a).\n\
         ? win(a)\n\
         ? wf\n\
         - move(b, c).\n\
         ? win(b)\n\
         ? stats\n\
         ? outcomes\n",
    );
    let out = datalog(&[
        "session",
        prog.to_str().unwrap(),
        db.to_str().unwrap(),
        "--script",
        script.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Before the cycle closes, a loses (b wins via c); after `move(c, a)`
    // the a→b→c→a cycle is an odd loop: everything undefined.
    assert!(text.contains("win(a): false"), "{text}");
    assert!(text.contains("win(a): undefined"), "{text}");
    assert!(
        text.contains("% partial model: 3 atoms left undefined"),
        "{text}"
    );
    // Each mutation batch reports its epoch and incremental work.
    assert!(text.contains("% epoch 1: +1 -0"), "{text}");
    assert!(text.contains("% epoch 2: +0 -1"), "{text}");
    assert!(text.contains("cone"), "{text}");
    // After retracting move(b, c) the game is the chain c→a→b: b has no
    // moves and loses — the wf model is total again.
    assert!(text.contains("win(b): false"), "{text}");
    assert!(text.contains("% epoch 2 |"), "{text}");
    assert!(text.contains("% 1 distinct outcome(s)"), "{text}");
}

#[test]
fn session_survives_garbage_and_keeps_serving() {
    use std::io::Write as _;
    let prog = write_temp("sess2.dl", "p :- not q.\nq :- not p.");
    let mut child = Command::new(env!("CARGO_BIN_EXE_datalog"))
        .args(["session", prog.to_str().unwrap()])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawns");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(b"? outcomes 10\nnot a command\n? outcomes 10\n")
        .expect("writes");
    let out = child.wait_with_output().expect("runs");
    // The bad line is reported in place and the session keeps serving
    // the lines after it; the exit status still records the failure.
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.matches("2 distinct outcome(s)").count(), 2, "{text}");
    assert!(text.contains("! line 2: expected '+fact.'"), "{text}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("first at line 2"), "{err}");
}

#[test]
fn session_discards_staged_batch_on_malformed_line() {
    let prog = write_temp("sess3.dl", "win(X) :- move(X, Y), not win(Y).");
    let db = write_temp("sess3_db.dl", "move(a, b).");
    let script = write_temp(
        "sess3_script.txt",
        "+ move(b, a).\nthis line is garbage\n? stats\n? win(a)\n",
    );
    let out = datalog(&[
        "session",
        prog.to_str().unwrap(),
        db.to_str().unwrap(),
        "--script",
        script.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // The staged insert preceding the bad line must not be applied by
    // the later query's flush: still epoch 0, and win(a) as in the
    // unmutated game.
    assert!(text.contains("discarded 1 staged mutation(s)"), "{text}");
    assert!(text.contains("% epoch 0 |"), "{text}");
    assert!(text.contains("win(a): true"), "{text}");
}

#[test]
fn serve_and_client_round_trip_with_shutdown() {
    use std::io::{BufRead as _, BufReader};

    let prog = write_temp("srv.dl", "win(X) :- move(X, Y), not win(Y).");
    let db = write_temp("srv_db.dl", "move(a, b).\nmove(b, c).");
    let script = write_temp("srv_script.txt", "? win(b)\n+ move(c, a).\n? wf\n");

    // Port 0: the OS assigns; the server prints the bound address.
    let mut server = Command::new(env!("CARGO_BIN_EXE_datalog"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("server spawns");
    let mut first_line = String::new();
    BufReader::new(server.stdout.take().expect("server stdout"))
        .read_line(&mut first_line)
        .expect("server announces its address");
    let addr = first_line
        .trim()
        .strip_prefix("listening on ")
        .expect("listening line")
        .to_owned();

    let out = datalog(&[
        "client",
        prog.to_str().unwrap(),
        db.to_str().unwrap(),
        "--addr",
        &addr,
        "--script",
        script.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("opened key="), "{text}");
    assert!(text.contains("reused=false"), "{text}");
    assert!(text.contains("win(b): true"), "{text}");
    assert!(text.contains("% epoch 1: +1 -0"), "{text}");

    // Same sources again: the server reuses the prepared session (and
    // its database now carries the first client's mutation).
    let script2 = write_temp("srv_script2.txt", "? stats\n");
    let out = datalog(&[
        "client",
        prog.to_str().unwrap(),
        db.to_str().unwrap(),
        "--addr",
        &addr,
        "--script",
        script2.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("reused=true"), "{text}");
    assert!(text.contains("% epoch 1 |"), "{text}");

    // Clean shutdown: the serve process exits 0.
    let out = datalog(&["client", "--addr", &addr, "--shutdown"]);
    assert!(out.status.success());
    let status = server.wait().expect("server exits");
    assert!(status.success(), "server exit: {status:?}");
}

#[test]
fn models_enumerates_and_flags_stable() {
    let prog = write_temp("pq.dl", "p :- p, not q.\nq :- q, not p.");
    let all = datalog(&["models", prog.to_str().unwrap()]);
    assert!(all.status.success());
    let text = String::from_utf8_lossy(&all.stdout);
    assert!(text.contains("model 1 of 3"), "{text}");

    let stable = datalog(&["models", prog.to_str().unwrap(), "--stable"]);
    let text = String::from_utf8_lossy(&stable.stdout);
    assert!(text.contains("model 1 of 1"), "{text}");
}

#[test]
fn no_fixpoints_is_reported() {
    let prog = write_temp("odd.dl", "p :- not p.");
    let out = datalog(&["models", prog.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("no fixpoints exist"), "{text}");
}

#[test]
fn ground_lists_rule_nodes() {
    let prog = write_temp("g.dl", "p(X) :- e(X).");
    let db = write_temp("g_db.dl", "e(a).\ne(b).");
    let out = datalog(&["ground", prog.to_str().unwrap(), db.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("4 ground atoms, 2 rule nodes"), "{text}");
    assert!(text.contains("r0[X=a]: p(a) :- e(a)"), "{text}");
}

#[test]
fn stratified_semantics_and_errors() {
    let prog = write_temp("tc.dl", "t(X, Y) :- e(X, Y).\nt(X, Z) :- t(X, Y), e(Y, Z).");
    let db = write_temp("tc_db.dl", "e(a, b).\ne(b, c).");
    let out = datalog(&[
        "run",
        prog.to_str().unwrap(),
        db.to_str().unwrap(),
        "--semantics",
        "stratified",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("t(a, c)."), "{text}");

    // Unstratified program under --semantics stratified: typed error.
    let bad = write_temp("bad.dl", "p :- not p.");
    let out = datalog(&["run", bad.to_str().unwrap(), "--semantics", "stratified"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("not applicable"), "{err}");
}

#[test]
fn bad_input_gives_parse_error_with_position() {
    let prog = write_temp("syntax_error.dl", "p(X) :- q(X)\nr(a).");
    let out = datalog(&["analyze", prog.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("parse error"), "{err}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = datalog(&["bogus"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "{err}");
}

#[test]
fn explain_justifies_values() {
    let prog = write_temp("ex.dl", "win(X) :- move(X, Y), not win(Y).");
    let db = write_temp("ex_db.dl", "move(a, b).");
    let out = datalog(&[
        "explain",
        prog.to_str().unwrap(),
        db.to_str().unwrap(),
        "--atom",
        "win(a)",
        "--semantics",
        "wf",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("win(a) is true"), "{text}");

    let out = datalog(&[
        "explain",
        prog.to_str().unwrap(),
        db.to_str().unwrap(),
        "--atom",
        "win(b)",
        "--semantics",
        "wf",
    ]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("win(b) is false"), "{text}");
}

#[test]
fn outcomes_lists_all_orientations() {
    let prog = write_temp("outc.dl", "p :- not q.\nq :- not p.");
    let out = datalog(&["outcomes", prog.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2 distinct outcome(s)"), "{text}");
    assert!(text.contains("{p}") && text.contains("{q}"), "{text}");
}

#[test]
fn totality_sweep_with_counterexample() {
    let prog = write_temp("tot.dl", "p :- not p, e.");
    let out = datalog(&["totality", prog.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("total (uniform): false"), "{text}");
    assert!(text.contains("e."), "{text}");

    let total_prog = write_temp("tot2.dl", "p :- not q.\nq :- not p.");
    let out = datalog(&["totality", total_prog.to_str().unwrap()]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("total (uniform): true"), "{text}");
}

#[test]
fn ground_mode_flag_switches_grounders() {
    let prog = write_temp("gm.dl", "win(X) :- move(X, Y), not win(Y).");
    let db = write_temp("gm_db.dl", "move(a, b).\nmove(b, c).");

    // Full (paper-literal, selected explicitly): |U|² = 9 instances.
    let out = datalog(&[
        "ground",
        prog.to_str().unwrap(),
        db.to_str().unwrap(),
        "--ground-mode",
        "full",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("% 12 ground atoms, 9 rule nodes"), "{text}");

    // Relevant (the production default): one instance per move fact.
    let out = datalog(&["ground", prog.to_str().unwrap(), db.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("% 5 ground atoms, 2 rule nodes"), "{text}");

    // Both modes answer `run` identically.
    for mode in ["full", "relevant"] {
        let out = datalog(&[
            "run",
            prog.to_str().unwrap(),
            db.to_str().unwrap(),
            "--semantics",
            "wf",
            "--ground-mode",
            mode,
        ]);
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("win(b)."), "{mode}: {text}");
        assert!(!text.contains("win(a)."), "{mode}: {text}");
    }

    let out = datalog(&[
        "ground",
        prog.to_str().unwrap(),
        db.to_str().unwrap(),
        "--ground-mode",
        "bogus",
    ]);
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("unknown ground mode"), "{text}");
}

#[test]
fn eval_mode_flag_switches_interpreters() {
    let prog = write_temp("em.dl", "win(X) :- move(X, Y), not win(Y).");
    let db = write_temp(
        "em_db.dl",
        "move(a, b).\nmove(b, c).\nmove(d, e).\nmove(e, d).",
    );

    // Both modes resolve the DAG part identically and decide the d ↔ e
    // draw pocket by breaking a tie.
    let mut outputs = Vec::new();
    for mode in ["global", "stratified"] {
        let out = datalog(&[
            "run",
            prog.to_str().unwrap(),
            db.to_str().unwrap(),
            "--semantics",
            "tb",
            "--eval-mode",
            mode,
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        assert!(text.contains("win(b)."), "{mode}: {text}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("ties broken: 1"), "{mode}: {stderr}");
        outputs.push(text);
    }

    // The outcomes command honors the flag too: same outcome set.
    for mode in ["global", "stratified"] {
        let out = datalog(&[
            "outcomes",
            prog.to_str().unwrap(),
            db.to_str().unwrap(),
            "--eval-mode",
            mode,
        ]);
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("% 2 distinct outcome(s)"), "{mode}: {text}");
    }

    let out = datalog(&[
        "run",
        prog.to_str().unwrap(),
        db.to_str().unwrap(),
        "--eval-mode",
        "bogus",
    ]);
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("unknown eval mode"), "{text}");
}

#[test]
fn trace_out_writes_a_valid_chrome_trace() {
    let prog = write_temp("tr.dl", "win(X) :- move(X, Y), not win(Y).");
    let db = write_temp("tr_db.dl", "move(a, b).\nmove(b, c).");
    let trace_path = write_temp("tr_trace.json", "");
    let out = datalog(&[
        "run",
        prog.to_str().unwrap(),
        db.to_str().unwrap(),
        "--trace-out",
        trace_path.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("win(b)."), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("% trace:"), "{stderr}");

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let check = tiebreak_trace::validate_trace_json(&text).expect("exported trace validates");
    assert!(
        check.spans >= 4,
        "expected the pipeline spans, got {check:?}"
    );

    // The summary mode prints a table on stderr without disturbing the
    // fact output on stdout.
    let out = datalog(&[
        "run",
        prog.to_str().unwrap(),
        db.to_str().unwrap(),
        "--trace",
        "summary",
    ]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("win(b)."));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("ground"), "{stderr}");
}
