//! Static analyses: the program graph and the paper's structural
//! characterizations.

pub mod explain;
pub mod local_strat;
pub mod program_graph;
pub mod stratification;
pub mod structural;
pub mod totality;
pub mod useless;

pub use explain::{justify, Justification};

pub use local_strat::{locally_stratified, locally_stratified_after_close, LocalStratification};
pub use program_graph::ProgramGraph;
pub use stratification::{stratify, Stratification};
pub use structural::{structural_totality, PredCycle, StructuralTotality};
pub use totality::{
    bounded_totality, bounded_well_founded_totality, propositional_totality, TotalityConfig,
    TotalityReport,
};
pub use useless::{
    reduce_program, structural_nonuniform_totality, useless_predicates, UselessAnalysis,
};
