//! Useful / useless predicates and the reduced program Π′ (paper,
//! Section 4, Theorem 3 machinery).
//!
//! A predicate P is **useful** if the skeleton admits an *expansion*: a
//! tree rooted at P where every internal node is a positive predicate
//! expanded by some rule and every leaf is a negative literal or an EDB
//! predicate. Equivalently, the **useless** predicates form the largest
//! set D of IDB predicates such that every rule whose head is in D has a
//! positive body occurrence of a predicate in D.
//!
//! Useless predicates stay empty in the nonuniform setting (IDBs
//! initialized empty), whatever the database; the **reduced program** Π′
//! drops every rule with a positive useless body occurrence and strips
//! negative useless occurrences from the rest. Lemma 4: Π is structurally
//! nonuniformly total iff Π′ is; Theorem 3: iff *G(Π′)* has no odd cycle.
//!
//! The computation below is the linear-time "ordering procedure" from the
//! proof of Theorem 3 (deciding a *specific* predicate's uselessness is
//! P-complete — Theorem 4 — which our monotone-circuit reduction
//! exercises; linear here means linear in the program size).

use datalog_ast::{FxHashMap, FxHashSet, Literal, PredSym, Program, Rule};

use super::structural::{structural_totality, StructuralTotality};

/// The outcome of the useless-predicate analysis.
#[derive(Clone, Debug)]
pub struct UselessAnalysis {
    /// Useful IDB predicates, in the order the procedure chose them
    /// (the ordering Q₁, Q₂, … used in the proof of Theorem 3).
    pub useful_order: Vec<PredSym>,
    /// The useless IDB predicates.
    pub useless: FxHashSet<PredSym>,
}

impl UselessAnalysis {
    /// `true` iff `pred` is useless.
    pub fn is_useless(&self, pred: PredSym) -> bool {
        self.useless.contains(&pred)
    }
}

/// Computes the useful/useless split of the program's IDB predicates.
pub fn useless_predicates(program: &Program) -> UselessAnalysis {
    // Worklist algorithm over the skeleton. A rule becomes "enabled" when
    // all its positive IDB body predicates are known useful; an IDB
    // predicate becomes useful when one of its rules is enabled.
    let mut useful: FxHashSet<PredSym> = FxHashSet::default();
    let mut useful_order: Vec<PredSym> = Vec::new();

    // For each rule: how many positive body occurrences of *not yet
    // useful* IDB predicates remain.
    let mut pending: Vec<usize> = Vec::with_capacity(program.len());
    // pred → rules in whose body it occurs positively (as IDB).
    let mut watchers: FxHashMap<PredSym, Vec<usize>> = FxHashMap::default();
    let mut queue: Vec<usize> = Vec::new();

    for (i, rule) in program.rules().iter().enumerate() {
        let mut count = 0;
        for lit in &rule.body {
            if lit.is_pos() && program.is_idb(lit.atom.pred) {
                count += 1;
                watchers.entry(lit.atom.pred).or_default().push(i);
            }
        }
        pending.push(count);
        if count == 0 {
            queue.push(i);
        }
    }

    while let Some(i) = queue.pop() {
        let head = program.rules()[i].head.pred;
        if useful.insert(head) {
            useful_order.push(head);
            if let Some(rules) = watchers.get(&head) {
                // `watchers` holds one entry per positive occurrence, so a
                // rule with the predicate k times appears k times here and
                // its pending count drops by exactly k in total.
                for &j in rules {
                    pending[j] -= 1;
                    if pending[j] == 0 {
                        queue.push(j);
                    }
                }
            }
        }
    }

    let useless: FxHashSet<PredSym> = program
        .idb_predicates()
        .filter(|p| !useful.contains(p))
        .collect();
    UselessAnalysis {
        useful_order,
        useless,
    }
}

/// Builds the reduced program Π′: rules with a positive useless body
/// occurrence are dropped, and negative useless occurrences are stripped
/// from the remaining rules (useless predicates are treated as empty).
pub fn reduce_program(program: &Program, analysis: &UselessAnalysis) -> Program {
    let rules: Vec<Rule> = program
        .rules()
        .iter()
        .filter(|rule| {
            !rule
                .body
                .iter()
                .any(|l| l.is_pos() && analysis.is_useless(l.atom.pred))
        })
        .map(|rule| {
            let body: Vec<Literal> = rule
                .body
                .iter()
                .filter(|l| !(l.is_neg() && analysis.is_useless(l.atom.pred)))
                .cloned()
                .collect();
            Rule::new(rule.head.clone(), body)
        })
        .collect();
    Program::new(rules).expect("reduction preserves arities")
}

/// Theorem 3's check: structural **nonuniform** totality — the reduced
/// program's graph must be odd-cycle-free.
pub fn structural_nonuniform_totality(program: &Program) -> StructuralTotality {
    let analysis = useless_predicates(program);
    let reduced = reduce_program(program, &analysis);
    structural_totality(&reduced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::parse_program;

    #[test]
    fn self_recursive_predicate_is_useless() {
        // g :- g. is the circuit-reduction gadget for a 0 input bit.
        let p = parse_program("g :- g.\np(X) :- e(X).").unwrap();
        let a = useless_predicates(&p);
        assert!(a.is_useless("g".into()));
        assert!(!a.is_useless("p".into()));
    }

    #[test]
    fn negative_only_dependencies_are_useful() {
        // Expansion leaves may be negative literals: p :- not q. is useful
        // even though q is useless.
        let p = parse_program("p :- not q.\nq :- q.").unwrap();
        let a = useless_predicates(&p);
        assert!(!a.is_useless("p".into()));
        assert!(a.is_useless("q".into()));
    }

    #[test]
    fn mutual_positive_recursion_without_base_is_useless() {
        let p = parse_program("a :- b.\nb :- a.\nc :- e.").unwrap();
        let a = useless_predicates(&p);
        assert!(a.is_useless("a".into()));
        assert!(a.is_useless("b".into()));
        assert!(!a.is_useless("c".into()));
    }

    #[test]
    fn recursion_with_a_base_case_is_useful() {
        let p = parse_program("t(X, Y) :- e(X, Y).\nt(X, Z) :- t(X, Y), e(Y, Z).").unwrap();
        let a = useless_predicates(&p);
        assert!(a.useless.is_empty());
        // t enters the useful order exactly once.
        assert_eq!(
            a.useful_order.iter().filter(|p| p.as_str() == "t").count(),
            1
        );
    }

    #[test]
    fn reduction_drops_and_strips() {
        // r1 uses u positively → dropped; r2 uses u negatively → stripped.
        let p = parse_program(
            "u :- u.\n\
             a :- u, e.\n\
             b :- not u, e.\n\
             c :- e.",
        )
        .unwrap();
        let analysis = useless_predicates(&p);
        let reduced = reduce_program(&p, &analysis);
        // Remaining rules: b :- e.  c :- e.  (u :- u. dropped: positive u.)
        assert_eq!(reduced.len(), 2);
        assert_eq!(reduced.rules()[0].to_string(), "b :- e.");
        assert_eq!(reduced.rules()[1].to_string(), "c :- e.");
    }

    #[test]
    fn useless_predicates_can_hide_odd_cycles_nonuniformly() {
        // p :- not p, g.  with g useless: uniformly not structurally total
        // (odd self-loop), but nonuniformly the rule is dead — total.
        let p = parse_program("g :- g.\np :- not p, g.").unwrap();
        assert!(!structural_totality(&p).total);
        let st = structural_nonuniform_totality(&p);
        assert!(st.total);
    }

    #[test]
    fn odd_cycle_on_useful_predicates_stays_fatal() {
        let p = parse_program("g :- e.\np :- not p, g.").unwrap();
        assert!(!structural_nonuniform_totality(&p).total);
    }

    #[test]
    fn useful_order_respects_dependencies() {
        let p = parse_program("a :- e.\nb :- a.\nc :- b.").unwrap();
        let an = useless_predicates(&p);
        let pos = |name: &str| {
            an.useful_order
                .iter()
                .position(|p| p.as_str() == name)
                .unwrap()
        };
        assert!(pos("a") < pos("b"));
        assert!(pos("b") < pos("c"));
    }
}
