//! Stratification (paper: Section 1 history; Theorem 5 boundary).
//!
//! A program is **stratified** iff its program graph has no cycle through
//! a negative edge — equivalently, no SCC contains an internal negative
//! edge. Strata are then the longest-negative-path levels along the
//! condensation: relations at each level depend positively on their own
//! or lower levels and negatively only on strictly lower levels.
//!
//! Theorem 5 of the paper shows stratified programs are *exactly* those
//! that are structurally total under the well-founded semantics.

use datalog_ast::{FxHashMap, PredSym, Program};
use signed_graph::{Condensation, NodeId, Sccs};

use super::program_graph::ProgramGraph;
use super::structural::PredCycle;

/// The result of stratification analysis.
#[derive(Clone, Debug)]
pub struct Stratification {
    /// `true` iff the program is stratified.
    pub stratified: bool,
    /// Stratum of every predicate (all zeros when unstratified). EDB
    /// predicates are at stratum 0.
    pub strata: FxHashMap<PredSym, u32>,
    /// Number of strata (1 for purely positive programs; 0 for empty).
    pub stratum_count: u32,
    /// A cycle through a negative edge, when not stratified.
    pub witness: Option<PredCycle>,
}

impl Stratification {
    /// Predicates of stratum `s`, in the program's predicate order.
    pub fn stratum_preds(&self, program: &Program, s: u32) -> Vec<PredSym> {
        program
            .predicates()
            .iter()
            .copied()
            .filter(|p| self.strata.get(p) == Some(&s))
            .collect()
    }
}

/// Computes the stratification of `program`.
pub fn stratify(program: &Program) -> Stratification {
    let pg = ProgramGraph::of(program);
    let sccs = Sccs::compute(&pg.graph);

    // Unstratified iff some negative edge is internal to an SCC.
    let offending = pg
        .graph
        .edges()
        .find(|&(u, v, s)| s.is_neg() && sccs.component_of(u) == sccs.component_of(v));

    if let Some((u, v, _)) = offending {
        let witness = PredCycle::through_edge(&pg, &sccs, u, v);
        return Stratification {
            stratified: false,
            strata: program.predicates().iter().map(|&p| (p, 0)).collect(),
            stratum_count: 0,
            witness: Some(witness),
        };
    }

    let cond = Condensation::of(&pg.graph, &sccs);
    let levels = cond.levels(&sccs, true);
    let mut strata = FxHashMap::default();
    let mut max_level = 0;
    for (i, &pred) in pg.preds.iter().enumerate() {
        let level = levels[sccs.component_of(i as NodeId) as usize];
        max_level = max_level.max(level);
        strata.insert(pred, level);
    }
    Stratification {
        stratified: true,
        strata,
        stratum_count: if pg.preds.is_empty() {
            0
        } else {
            max_level + 1
        },
        witness: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::parse_program;

    #[test]
    fn positive_program_is_one_stratum() {
        let p = parse_program("t(X, Y) :- e(X, Y).\nt(X, Z) :- t(X, Y), e(Y, Z).").unwrap();
        let s = stratify(&p);
        assert!(s.stratified);
        assert_eq!(s.stratum_count, 1);
        assert_eq!(s.strata[&"t".into()], 0);
        assert_eq!(s.strata[&"e".into()], 0);
    }

    #[test]
    fn negation_pushes_up_a_stratum() {
        let p = parse_program(
            "reach(Y) :- reach(X), edge(X, Y).\n\
             reach(X) :- start(X).\n\
             blocked(X) :- node(X), not reach(X).\n\
             doubly(X) :- node(X), not blocked(X).",
        )
        .unwrap();
        let s = stratify(&p);
        assert!(s.stratified);
        assert_eq!(s.stratum_count, 3);
        assert_eq!(s.strata[&"reach".into()], 0);
        assert_eq!(s.strata[&"blocked".into()], 1);
        assert_eq!(s.strata[&"doubly".into()], 2);
    }

    #[test]
    fn win_move_is_not_stratified() {
        let p = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        let s = stratify(&p);
        assert!(!s.stratified);
        let w = s.witness.expect("witness");
        assert!(w.negative_count >= 1);
        assert!(w.preds.iter().any(|p| p.as_str() == "win"));
    }

    #[test]
    fn even_negative_cycle_is_unstratified_but_structurally_total() {
        // p ← ¬q ; q ← ¬p: not stratified (negative 2-cycle).
        let p = parse_program("p :- not q.\nq :- not p.").unwrap();
        let s = stratify(&p);
        assert!(!s.stratified);
        let w = s.witness.unwrap();
        assert_eq!(w.preds.len(), 2);
        assert_eq!(w.negative_count, 2);
    }

    #[test]
    fn empty_program() {
        let p = Program::empty();
        let s = stratify(&p);
        assert!(s.stratified);
        assert_eq!(s.stratum_count, 0);
    }

    #[test]
    fn stratum_preds_listing() {
        let p = parse_program("a(X) :- e(X).\nb(X) :- e(X), not a(X).").unwrap();
        let s = stratify(&p);
        let s0 = s.stratum_preds(&p, 0);
        let s1 = s.stratum_preds(&p, 1);
        assert!(s0.iter().any(|p| p.as_str() == "a"));
        assert!(s0.iter().any(|p| p.as_str() == "e"));
        assert_eq!(s1.len(), 1);
        assert_eq!(s1[0].as_str(), "b");
    }
}
