//! Local stratification \[Pr\] (paper, Section 3).
//!
//! A program (with a database) is **locally stratified** iff no strongly
//! connected component of its ground graph contains a negative edge. A
//! strongly connected component with no negative edges is trivially a tie
//! (one side empty), so the tie-breaking interpreters compute a fixpoint
//! on every locally stratified instance — in fact the perfect model.

use datalog_ground::{Closer, GroundGraph};
use signed_graph::{Condensation, Sccs};

/// The verdict of the local stratification check for one (Π, Δ).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LocalStratification {
    /// `true` iff no ground SCC contains a negative edge.
    pub locally_stratified: bool,
    /// Number of strongly connected components of the ground graph.
    pub scc_count: usize,
}

/// Checks local stratification of a ground graph (before any deletion).
///
/// Note the strictness of the definition: it quantifies over *all*
/// instantiations. `even(Y) ← succ(X, Y), ¬even(X)` over universe
/// {0, 1} is **not** locally stratified even when `succ` is acyclic,
/// because the junk instantiation `even(0) ← succ(1, 0), ¬even(1)` closes
/// a negative cycle regardless of `succ`'s actual tuples. For the
/// database-aware refinement see [`locally_stratified_after_close`].
pub fn locally_stratified(graph: &GroundGraph) -> LocalStratification {
    // A fresh Closer exposes the full ground graph as a signed digraph.
    let closer = Closer::new(graph);
    verdict(&closer)
}

/// A pragmatic refinement: checks the *remaining* ground graph after
/// M₀(Δ) and `close` have deleted everything the database already
/// decides. Rule nodes with false EDB literals are gone, so acyclic-data
/// programs such as even/succ pass. (This is the instance the well-founded
/// and tie-breaking interpreters actually iterate on.)
pub fn locally_stratified_after_close(
    graph: &GroundGraph,
    program: &datalog_ast::Program,
    database: &datalog_ast::Database,
) -> LocalStratification {
    let mut model = datalog_ground::PartialModel::initial(program, database, graph.atoms());
    let mut closer = Closer::new(graph);
    closer.bootstrap(&model);
    closer
        .run(&mut model)
        .expect("close from M0 cannot conflict");
    verdict(&closer)
}

fn verdict(closer: &Closer<'_>) -> LocalStratification {
    let rem = closer.remaining_digraph();
    let sccs = Sccs::compute(&rem.digraph);
    LocalStratification {
        locally_stratified: !Condensation::has_negative_cycle_edge(&rem.digraph, &sccs),
        scc_count: sccs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_database, parse_program};
    use datalog_ground::{ground, GroundConfig};

    fn check(src: &str, db: &str) -> LocalStratification {
        let p = parse_program(src).unwrap();
        let d = parse_database(db).unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        locally_stratified(&g)
    }

    #[test]
    fn stratified_implies_locally_stratified() {
        let r = check(
            "reach(Y) :- reach(X), edge(X, Y).\nreach(X) :- start(X).",
            "start(a).\nedge(a, b).",
        );
        assert!(r.locally_stratified);
    }

    #[test]
    fn win_move_on_a_dag_is_locally_stratified() {
        // win(X) ← move(X,Y), ¬win(Y): unstratifiable at predicate level,
        // but on an acyclic move relation the ground graph is acyclic on
        // the win atoms with negation pointing "down" the DAG only when
        // the ground rule's move atom is among the cycle... The full
        // ground graph instantiates move over *all* pairs, but rule nodes
        // with false move literals still carry edges — the SCCs are over
        // the full graph. win(a) ← move(a,a), ¬win(a) puts a negative
        // self-cycle through every win atom: NOT locally stratified.
        let r = check("win(X) :- move(X, Y), not win(Y).", "move(a, b).");
        assert!(!r.locally_stratified);
    }

    #[test]
    fn paper_program_1_not_locally_stratified() {
        // p(a) ← ¬p(a'), e(b) instantiated at x=a gives a negative loop
        // through p(a).
        let r = check("p(a) :- not p(X), e(b).", "e(b).");
        assert!(!r.locally_stratified);
    }

    #[test]
    fn even_odd_strict_vs_after_close() {
        // Strict definition: junk instantiations (succ pairs that are not
        // facts) close negative cycles ⇒ not locally stratified.
        let src = "even(X) :- zero(X).\neven(Y) :- succ(X, Y), not even(X).";
        let db = "zero(0).\nsucc(0, 1).\nsucc(1, 2).";
        let r = check(src, db);
        assert!(!r.locally_stratified);

        // After close, only the real succ chain remains: negation points
        // strictly down the chain ⇒ locally stratified (in fact, close
        // resolves everything and the remaining graph is empty).
        let p = parse_program(src).unwrap();
        let d = parse_database(db).unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        let r2 = locally_stratified_after_close(&g, &p, &d);
        assert!(r2.locally_stratified);
    }

    #[test]
    fn negation_two_cycle_is_not_locally_stratified() {
        let r = check("p :- not q.\nq :- not p.", "");
        assert!(!r.locally_stratified);
    }
}
