//! Brute-force totality oracles (paper, Section 5).
//!
//! A program is **total** (uniform sense) if it has at least one fixpoint
//! for every initial database; **nonuniformly total** if it does for every
//! database with empty IDB relations. Deciding totality is Π₂ᵖ-complete
//! propositionally and undecidable in general (Theorems in Section 5) —
//! so these oracles are *bounded*: they exhaustively sweep the databases
//! over a given constant pool and answer exactly for that instance space.
//! The propositional sweep (empty pool) is exact for propositional
//! programs.

use datalog_ast::{ConstSym, Database, GroundAtom, Program};
use datalog_ground::{ground, GroundConfig};

use crate::semantics::enumerate::{enumerate_fixpoints, EnumerateConfig};
use crate::semantics::SemanticsError;

/// Budgets for the totality sweep.
#[derive(Clone, Copy, Debug)]
pub struct TotalityConfig {
    /// Maximum number of databases to try (the sweep is 2^|atom pool|).
    pub max_databases: u64,
    /// Passed through to the fixpoint enumeration.
    pub max_branch_atoms: usize,
    /// Grounding budgets per database.
    pub ground: GroundConfig,
}

impl Default for TotalityConfig {
    fn default() -> Self {
        TotalityConfig {
            max_databases: 1 << 16,
            max_branch_atoms: 30,
            ground: GroundConfig::default(),
        }
    }
}

/// The oracle's verdict.
#[derive(Clone, Debug)]
pub struct TotalityReport {
    /// `true` iff every database in the swept space admitted a fixpoint.
    pub total: bool,
    /// A database with no fixpoint, when found.
    pub counterexample: Option<Database>,
    /// Number of databases actually checked.
    pub databases_checked: u64,
}

/// Sweeps all databases whose facts use constants from `pool`
/// (for predicates of the program: all predicates in the uniform case,
/// EDB only when `nonuniform`), checking fixpoint existence for each.
///
/// # Errors
///
/// [`SemanticsError::NotApplicable`] if the sweep space exceeds
/// `config.max_databases`, or a per-database enumeration exceeds its
/// budget; [`SemanticsError::Ground`] if grounding a candidate fails.
pub fn bounded_totality(
    program: &Program,
    pool: &[ConstSym],
    nonuniform: bool,
    config: &TotalityConfig,
) -> Result<TotalityReport, SemanticsError> {
    let enum_config = EnumerateConfig {
        limit: 1,
        max_branch_atoms: config.max_branch_atoms,
    };
    sweep(program, pool, nonuniform, config, |graph, program, db| {
        Ok(!enumerate_fixpoints(graph, program, db, &enum_config)?.is_empty())
    })
}

/// Exact totality for propositional programs (all predicates nullary):
/// the database space is exactly the subsets of the propositions.
///
/// # Errors
///
/// [`SemanticsError::NotApplicable`] if the program is not propositional
/// or over budget.
pub fn propositional_totality(
    program: &Program,
    nonuniform: bool,
    config: &TotalityConfig,
) -> Result<TotalityReport, SemanticsError> {
    if program
        .predicates()
        .iter()
        .any(|&p| program.arity(p) != Some(0))
    {
        return Err(SemanticsError::NotApplicable(
            "propositional totality requires all predicates nullary".to_owned(),
        ));
    }
    bounded_totality(program, &[], nonuniform, config)
}

/// Bounded **well-founded totality**: does the well-founded semantics
/// produce a *total* model for every database over `pool`? (Paper §5,
/// closing remark: this variant of totality is coNP-complete
/// propositionally; Theorem 5 characterizes its structural closure as
/// stratification.)
///
/// # Errors
///
/// As for [`bounded_totality`].
pub fn bounded_well_founded_totality(
    program: &Program,
    pool: &[ConstSym],
    nonuniform: bool,
    config: &TotalityConfig,
) -> Result<TotalityReport, SemanticsError> {
    sweep(program, pool, nonuniform, config, |graph, program, db| {
        Ok(crate::semantics::well_founded::well_founded(graph, program, db)?.total)
    })
}

/// Shared sweep over all databases whose facts use constants from `pool`;
/// `accept` decides per database whether the property holds.
fn sweep(
    program: &Program,
    pool: &[ConstSym],
    nonuniform: bool,
    config: &TotalityConfig,
    accept: impl Fn(&datalog_ground::GroundGraph, &Program, &Database) -> Result<bool, SemanticsError>,
) -> Result<TotalityReport, SemanticsError> {
    let candidates = candidate_facts(program, pool, nonuniform);
    let n = candidates.len();
    if n >= 63 || (1u64 << n) > config.max_databases {
        return Err(SemanticsError::NotApplicable(format!(
            "totality sweep over {n} candidate facts (2^{n} databases) exceeds the budget"
        )));
    }
    let space = 1u64 << n;
    for mask in 0..space {
        let mut db = Database::new();
        for (i, fact) in candidates.iter().enumerate() {
            if mask & (1 << i) != 0 {
                db.insert(fact.clone()).expect("consistent arities");
            }
        }
        let graph = ground(program, &db, &config.ground)?;
        if !accept(&graph, program, &db)? {
            return Ok(TotalityReport {
                total: false,
                counterexample: Some(db),
                databases_checked: mask + 1,
            });
        }
    }
    Ok(TotalityReport {
        total: true,
        counterexample: None,
        databases_checked: space,
    })
}

/// All candidate facts over `pool` for the eligible predicates.
fn candidate_facts(program: &Program, pool: &[ConstSym], nonuniform: bool) -> Vec<GroundAtom> {
    let mut candidates: Vec<GroundAtom> = Vec::new();
    for &pred in program.predicates() {
        if nonuniform && program.is_idb(pred) {
            continue;
        }
        let arity = program.arity(pred).expect("known predicate");
        if arity == 0 {
            candidates.push(GroundAtom {
                pred,
                args: Box::new([]),
            });
            continue;
        }
        if pool.is_empty() {
            continue;
        }
        let mut counter = vec![0usize; arity];
        loop {
            candidates.push(GroundAtom {
                pred,
                args: counter.iter().map(|&i| pool[i]).collect(),
            });
            let mut i = 0;
            loop {
                if i == arity {
                    counter.clear();
                    break;
                }
                counter[i] += 1;
                if counter[i] < pool.len() {
                    break;
                }
                counter[i] = 0;
                i += 1;
            }
            if counter.is_empty() {
                break;
            }
        }
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::parse_program;

    fn check(src: &str, nonuniform: bool) -> TotalityReport {
        let p = parse_program(src).unwrap();
        propositional_totality(&p, nonuniform, &TotalityConfig::default()).unwrap()
    }

    #[test]
    fn pq_cycle_is_total() {
        let r = check("p :- not q.\nq :- not p.", false);
        assert!(r.total);
        assert_eq!(r.databases_checked, 4);
    }

    #[test]
    fn odd_loop_is_not_total_and_counterexample_is_empty_db() {
        let r = check("p :- not p.", false);
        assert!(!r.total);
        // Even the empty database kills it.
        assert_eq!(r.counterexample.unwrap().len(), 0);
    }

    #[test]
    fn guarded_odd_loop_uniform_vs_nonuniform() {
        // p ← ¬p, g ; g ← g. Nonuniform: g stays empty (useless) ⇒ total.
        // Uniform: Δ = {g} forces p ← ¬p ⇒ no fixpoint.
        let src = "p :- not p, g.\ng :- g.";
        let uni = check(src, false);
        assert!(!uni.total);
        let cex = uni.counterexample.unwrap();
        assert!(cex.contains(&GroundAtom::from_texts("g", &[])));
        let non = check(src, true);
        assert!(non.total);
    }

    #[test]
    fn edb_guarded_odd_loop_not_total_either_way() {
        // p ← ¬p, e with e an EDB: Δ = {e} is a nonuniform database.
        let src = "p :- not p, e.";
        assert!(!check(src, false).total);
        let non = check(src, true);
        assert!(!non.total);
        assert!(non
            .counterexample
            .unwrap()
            .contains(&GroundAtom::from_texts("e", &[])));
    }

    #[test]
    fn bounded_predicate_sweep() {
        // Program (2) of the paper: not total once E is nonempty.
        let p = parse_program("p(X, Y) :- not p(Y, Y), e(X).").unwrap();
        let pool = [ConstSym::new("a")];
        let r = bounded_totality(&p, &pool, true, &TotalityConfig::default()).unwrap();
        assert!(!r.total);
        let cex = r.counterexample.unwrap();
        assert!(cex.contains(&GroundAtom::from_texts("e", &["a"])));
    }

    #[test]
    fn well_founded_totality_is_strictly_stronger() {
        // p ← ¬q ; q ← ¬p: total (fixpoints exist for every Δ) but NOT
        // well-founded total — the WF model is partial on the empty Δ.
        let p = parse_program("p :- not q.\nq :- not p.").unwrap();
        let fix = propositional_totality(&p, false, &TotalityConfig::default()).unwrap();
        assert!(fix.total);
        let wf = bounded_well_founded_totality(&p, &[], false, &TotalityConfig::default()).unwrap();
        assert!(!wf.total);
        assert_eq!(wf.counterexample.unwrap().len(), 0); // empty Δ already
    }

    #[test]
    fn stratified_programs_are_well_founded_total() {
        // Theorem 5's "if" direction on the bounded sweep.
        let p = parse_program("b :- e, not a.\na :- e.").unwrap();
        let wf = bounded_well_founded_totality(&p, &[], false, &TotalityConfig::default()).unwrap();
        assert!(wf.total);
        assert_eq!(wf.databases_checked, 8);
    }

    #[test]
    fn space_budget_enforced() {
        let p = parse_program("p(X, Y) :- not p(Y, X).").unwrap();
        let pool: Vec<ConstSym> = (0..6).map(|i| ConstSym::new(&format!("c{i}"))).collect();
        // p/2 over 6 constants = 36 candidate facts ⇒ 2^36 databases.
        let err = bounded_totality(&p, &pool, false, &TotalityConfig::default()).unwrap_err();
        assert!(matches!(err, SemanticsError::NotApplicable(_)));
    }
}
