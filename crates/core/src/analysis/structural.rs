//! Structural totality (paper, Section 4, Theorem 2).
//!
//! A program is **structurally total** iff every program with the same
//! skeleton is total (has a fixpoint for every database). Theorem 2: this
//! holds iff the program graph *G(Π)* has no cycle with an odd number of
//! negative edges — iff every SCC of *G(Π)* is a tie. Kunen called such
//! programs *call-consistent*; Gire, *semi-strict*.
//!
//! The check is linear time (and in NC — Theorem 4): SCCs + the Lemma 1
//! partition per component. On failure we surface the odd cycle as a
//! [`PredCycle`] witness over predicate names.

use std::collections::VecDeque;
use std::fmt;

use datalog_ast::{PredSym, Program};
use signed_graph::{tie, NodeId, Sccs};

use super::program_graph::ProgramGraph;

/// A cycle in the program graph, over predicate names.
///
/// `preds[i] → preds[(i+1) % len]` is an edge; `negative_count` counts its
/// negative steps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PredCycle {
    /// The predicates along the cycle.
    pub preds: Vec<PredSym>,
    /// Signs per step (`true` = negative), aligned with `preds`.
    pub negative_steps: Vec<bool>,
    /// Number of negative steps.
    pub negative_count: usize,
}

impl PredCycle {
    /// Builds a cycle through the intra-SCC edge `u → v`: the edge plus a
    /// BFS path from `v` back to `u` inside the component. (Used by the
    /// stratification witness, where any cycle through a negative edge
    /// will do.)
    pub(crate) fn through_edge(pg: &ProgramGraph, sccs: &Sccs, u: NodeId, v: NodeId) -> PredCycle {
        let comp = sccs.component_of(u);
        debug_assert_eq!(comp, sccs.component_of(v));
        // BFS v → u within the component.
        let mut prev: Vec<Option<(NodeId, bool)>> = vec![None; pg.graph.node_count()];
        let mut seen = vec![false; pg.graph.node_count()];
        seen[v as usize] = true;
        let mut queue = VecDeque::from([v]);
        while let Some(x) = queue.pop_front() {
            if x == u {
                break;
            }
            for &(y, s) in pg.graph.out_edges(x) {
                if sccs.component_of(y) == comp && !seen[y as usize] {
                    seen[y as usize] = true;
                    prev[y as usize] = Some((x, s.is_neg()));
                    queue.push_back(y);
                }
            }
        }
        // Reconstruct v → u.
        let mut nodes_rev = Vec::new();
        let mut negs_rev = Vec::new();
        let mut cur = u;
        while cur != v {
            let (p, neg) = prev[cur as usize].expect("SCC path must exist");
            nodes_rev.push(cur);
            negs_rev.push(neg);
            cur = p;
        }
        // Cycle: u -(edge sign)-> v -(path)-> u.
        let edge_neg = pg
            .graph
            .out_edges(u)
            .iter()
            .find(|&&(t, _)| t == v)
            .map(|&(_, s)| s.is_neg())
            .expect("edge exists");
        // Cycle: u -(edge)-> v -(BFS path)-> u. When v == u the cycle is
        // the self-loop alone.
        let (preds, negative_steps) = if v == u {
            (vec![pg.pred_of(u)], vec![edge_neg])
        } else {
            let mut preds = vec![pg.pred_of(u), pg.pred_of(v)];
            let mut negative_steps = vec![edge_neg];
            for (n, neg) in nodes_rev.iter().rev().zip(negs_rev.iter().rev()) {
                negative_steps.push(*neg);
                if *n != u {
                    preds.push(pg.pred_of(*n));
                }
            }
            (preds, negative_steps)
        };
        let negative_count = negative_steps.iter().filter(|&&b| b).count();
        PredCycle {
            preds,
            negative_steps,
            negative_count,
        }
    }
}

impl fmt::Display for PredCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.preds.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(
                f,
                "{p} -{}->",
                if self.negative_steps[i] { "¬" } else { "+" }
            )?;
        }
        if let Some(first) = self.preds.first() {
            write!(f, " {first}")?;
        }
        Ok(())
    }
}

/// The verdict of the structural totality analysis.
#[derive(Clone, Debug)]
pub struct StructuralTotality {
    /// `true` iff *G(Π)* has no odd cycle (Theorem 2: structurally total;
    /// Kunen: call-consistent).
    pub total: bool,
    /// An odd cycle over predicates, when not structurally total.
    pub witness: Option<PredCycle>,
}

/// Checks structural totality of `program` (uniform case, Theorem 2).
pub fn structural_totality(program: &Program) -> StructuralTotality {
    let pg = ProgramGraph::of(program);
    structural_totality_of_graph(&pg)
}

/// The same check over a pre-built program graph.
pub fn structural_totality_of_graph(pg: &ProgramGraph) -> StructuralTotality {
    let sccs = Sccs::compute(&pg.graph);
    for c in 0..sccs.len() as u32 {
        if let Err(odd) = tie::check_tie(&pg.graph, sccs.members(c)) {
            let preds: Vec<PredSym> = odd.nodes.iter().map(|&n| pg.pred_of(n)).collect();
            let negative_steps: Vec<bool> = odd.signs.iter().map(|s| s.is_neg()).collect();
            let negative_count = odd.negative_count();
            return StructuralTotality {
                total: false,
                witness: Some(PredCycle {
                    preds,
                    negative_steps,
                    negative_count,
                }),
            };
        }
    }
    StructuralTotality {
        total: true,
        witness: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::parse_program;

    #[test]
    fn archetype_is_structurally_total() {
        // P(x) ← ¬Q(x); Q(x) ← ¬P(x) — the paper's closing example.
        let p = parse_program("p(X) :- not q(X).\nq(X) :- not p(X).").unwrap();
        let st = structural_totality(&p);
        assert!(st.total);
        assert!(st.witness.is_none());
    }

    #[test]
    fn program_1_is_not_structurally_total() {
        // P(a) ← ¬P(x), E(b): self-negative-loop at predicate level ⇒
        // odd cycle of length 1. (Total for many Δ, but not structurally.)
        let p = parse_program("p(a) :- not p(X), e(b).").unwrap();
        let st = structural_totality(&p);
        assert!(!st.total);
        let w = st.witness.unwrap();
        assert_eq!(w.negative_count % 2, 1);
        assert_eq!(w.preds[0].as_str(), "p");
    }

    #[test]
    fn win_move_is_not_structurally_total() {
        let p = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        assert!(!structural_totality(&p).total);
    }

    #[test]
    fn stratified_programs_are_structurally_total() {
        let p = parse_program(
            "reach(Y) :- reach(X), edge(X, Y).\n\
             reach(X) :- start(X).\n\
             blocked(X) :- node(X), not reach(X).",
        )
        .unwrap();
        assert!(structural_totality(&p).total);
    }

    #[test]
    fn odd_three_cycle_detected() {
        let p = parse_program("p :- not q.\nq :- not r.\nr :- not p.").unwrap();
        let st = structural_totality(&p);
        assert!(!st.total);
        let w = st.witness.unwrap();
        assert_eq!(w.negative_count, 3);
        assert_eq!(w.preds.len(), 3);
    }

    #[test]
    fn even_mixed_cycle_is_fine() {
        // p → q negatively, q → p negatively, plus positive self-loops.
        let p = parse_program("p :- p, not q.\nq :- q, not p.").unwrap();
        assert!(structural_totality(&p).total);
    }

    #[test]
    fn witness_is_a_real_cycle() {
        let p = parse_program("a :- not b.\nb :- c.\nc :- not d.\nd :- a.\nx :- not x.").unwrap();
        let st = structural_totality(&p);
        assert!(!st.total);
        let w = st.witness.unwrap();
        assert_eq!(w.negative_count % 2, 1);
        assert_eq!(w.preds.len(), w.negative_steps.len());
    }
}
