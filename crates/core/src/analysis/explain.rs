//! Post-hoc justification of model values ("why is this atom true?").
//!
//! For a total model, every true atom is justified by Δ-membership or by
//! a rule node whose body is true; every false atom is justified by the
//! failure of each of its rule nodes. This is the paper's supportedness
//! condition (§2) turned into a diagnostic: the CLI's `explain` command
//! and several tests use it.

use datalog_ast::{Database, Program};
use datalog_ground::{AtomId, GroundGraph, PartialModel, RuleId, TruthValue};

/// Why an atom has its value in a model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Justification {
    /// The atom is a fact of the initial database Δ.
    InDatabase,
    /// A rule node derives it: all body literals are true.
    Derived {
        /// The witnessing rule node.
        rule: RuleId,
    },
    /// The atom is false: every rule node for it fails; for each, the
    /// first body literal that is false (by position).
    AllRulesFail {
        /// Per heading rule node: `(rule, failing literal index)`.
        failures: Vec<(RuleId, usize)>,
    },
    /// The atom is false and no rule node can ever derive it (an EDB atom
    /// outside Δ, or an IDB predicate with no rules).
    NoRules,
    /// The atom is undefined in the model.
    Undefined,
    /// The value is *not* justified — the model is not a fixpoint at this
    /// atom (true without support, or false despite a firing rule).
    Unsupported,
}

/// Justifies `atom`'s value in `model`.
pub fn justify(
    graph: &GroundGraph,
    database: &Database,
    model: &PartialModel,
    atom: AtomId,
) -> Justification {
    match model.get(atom) {
        TruthValue::Undefined => Justification::Undefined,
        TruthValue::True => {
            if database.contains(&graph.atoms().decode(atom)) {
                return Justification::InDatabase;
            }
            for &rule in graph.heads_of(atom) {
                let body_true = graph
                    .rule(rule)
                    .body
                    .iter()
                    .all(|&(a, s)| model.literal_truth(a, s) == Some(true));
                if body_true {
                    return Justification::Derived { rule };
                }
            }
            Justification::Unsupported
        }
        TruthValue::False => {
            if graph.heads_of(atom).is_empty() {
                return Justification::NoRules;
            }
            let mut failures = Vec::new();
            for &rule in graph.heads_of(atom) {
                let failing = graph
                    .rule(rule)
                    .body
                    .iter()
                    .position(|&(a, s)| model.literal_truth(a, s) != Some(true));
                match failing {
                    Some(idx) => failures.push((rule, idx)),
                    None => return Justification::Unsupported, // a rule fires!
                }
            }
            Justification::AllRulesFail { failures }
        }
    }
}

/// Renders a justification as human-readable text.
pub fn render(
    graph: &GroundGraph,
    program: &Program,
    model: &PartialModel,
    atom: AtomId,
    justification: &Justification,
) -> String {
    let name = graph.atoms().decode(atom);
    match justification {
        Justification::InDatabase => format!("{name} is true: it is a fact of the database"),
        Justification::Derived { rule } => format!(
            "{name} is true: derived by {}",
            graph.describe_rule(program, *rule)
        ),
        Justification::AllRulesFail { failures } => {
            let mut out = format!("{name} is false: every rule for it fails:");
            for (rule, idx) in failures {
                let gr = graph.rule(*rule);
                let (lit_atom, sign) = gr.body[*idx];
                let lit = format!(
                    "{}{}",
                    if sign.is_neg() { "not " } else { "" },
                    graph.atoms().decode(lit_atom)
                );
                out.push_str(&format!(
                    "\n  {} — literal `{lit}` is {}",
                    graph.describe_rule(program, *rule),
                    match model.literal_truth(lit_atom, sign) {
                        Some(false) => "false",
                        None => "undefined",
                        Some(true) => "true (?)",
                    }
                ));
            }
            out
        }
        Justification::NoRules => {
            format!("{name} is false: no rule can derive it and it is not in the database")
        }
        Justification::Undefined => format!("{name} is undefined in this (partial) model"),
        Justification::Unsupported => {
            format!("{name}: value is NOT supported — the model is not a fixpoint here")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::well_founded::well_founded;
    use datalog_ast::{parse_database, parse_program, GroundAtom};
    use datalog_ground::{ground, GroundConfig};

    fn setup(src: &str, db_src: &str) -> (GroundGraph, Program, Database, PartialModel) {
        let p = parse_program(src).unwrap();
        let d = parse_database(db_src).unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        let run = well_founded(&g, &p, &d).unwrap();
        (g, p, d, run.model)
    }

    fn id(g: &GroundGraph, pred: &str, args: &[&str]) -> AtomId {
        g.atoms()
            .id_of(&GroundAtom::from_texts(pred, args))
            .unwrap()
    }

    #[test]
    fn database_facts_justified_by_delta() {
        let (g, _, d, m) = setup("p(X) :- e(X).", "e(a).");
        let j = justify(&g, &d, &m, id(&g, "e", &["a"]));
        assert_eq!(j, Justification::InDatabase);
    }

    #[test]
    fn derived_atoms_name_their_rule() {
        let (g, p, d, m) = setup("p(X) :- e(X).", "e(a).");
        let j = justify(&g, &d, &m, id(&g, "p", &["a"]));
        let Justification::Derived { rule } = j else {
            panic!("expected Derived, got {j:?}")
        };
        let text = render(
            &g,
            &p,
            &m,
            id(&g, "p", &["a"]),
            &Justification::Derived { rule },
        );
        assert!(text.contains("derived by r0[X=a]"), "{text}");
    }

    #[test]
    fn false_atoms_list_failures() {
        let (g, p, d, m) = setup("win(X) :- move(X, Y), not win(Y).", "move(a, b).");
        // win(b) is false: b has no moves, so every rule for win(b) fails
        // on its move(b, Y) literal. (win(a) is then derived.)
        let j = justify(&g, &d, &m, id(&g, "win", &["b"]));
        let Justification::AllRulesFail { failures } = &j else {
            panic!("expected AllRulesFail, got {j:?}")
        };
        assert!(!failures.is_empty());
        let text = render(&g, &p, &m, id(&g, "win", &["b"]), &j);
        assert!(text.contains("every rule for it fails"), "{text}");
        assert!(text.contains("move(b"), "{text}");
    }

    #[test]
    fn edb_atoms_outside_delta_have_no_rules() {
        let (g, _, d, m) = setup("p(X) :- e(X).", "e(a).\nf(b).");
        // e(b) exists in V_P (b is in the universe) and is false.
        let j = justify(&g, &d, &m, id(&g, "e", &["b"]));
        assert_eq!(j, Justification::NoRules);
    }

    #[test]
    fn undefined_atoms_reported() {
        let (g, _, d, m) = setup("p :- not q.\nq :- not p.", "");
        let j = justify(&g, &d, &m, id(&g, "p", &[]));
        assert_eq!(j, Justification::Undefined);
    }

    #[test]
    fn unsupported_values_detected() {
        let (g, _, d, _) = setup("p :- e.", "");
        // Force a bogus model: p true with no support.
        let p = parse_program("p :- e.").unwrap();
        let mut m = PartialModel::initial(&p, &d, g.atoms());
        m.set(id(&g, "p", &[]), TruthValue::True);
        m.set(id(&g, "e", &[]), TruthValue::False);
        let j = justify(&g, &d, &m, id(&g, "p", &[]));
        assert_eq!(j, Justification::Unsupported);
    }
}
