//! The program graph *G(Π)* (paper, Sections 1 and 3).
//!
//! Nodes are predicate names; there is a positive (resp. negative) edge
//! from P to Q if P appears positively (resp. negatively) in the body of a
//! rule with head Q. Paths in the ground graph project to paths in the
//! program graph with the same number of negative edges, which is why an
//! odd-cycle-free program graph forces an odd-cycle-free ground graph for
//! every database (Theorem 1's engine).

use datalog_ast::{FxHashMap, FxHashSet, PredSym, Program, Sign};
use signed_graph::{EdgeSign, NodeId, SignedDigraph};

/// The signed predicate-level dependency graph of a program.
#[derive(Clone, Debug)]
pub struct ProgramGraph {
    /// The underlying signed digraph; node `i` is `preds[i]`.
    pub graph: SignedDigraph,
    /// Node-index → predicate.
    pub preds: Vec<PredSym>,
    index: FxHashMap<PredSym, NodeId>,
}

impl ProgramGraph {
    /// Builds *G(Π)*. Every predicate of the program is a node (including
    /// EDB predicates, which have no outgoing... no incoming edges — they
    /// never head a rule). Duplicate `(from, to, sign)` edges from
    /// repeated occurrences are collapsed.
    pub fn of(program: &Program) -> Self {
        let preds: Vec<PredSym> = program.predicates().to_vec();
        let index: FxHashMap<PredSym, NodeId> = preds
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as NodeId))
            .collect();
        let mut graph = SignedDigraph::new(preds.len());
        let mut seen: FxHashSet<(NodeId, NodeId, Sign)> = FxHashSet::default();
        for (from, sign, to) in program.dependency_edges() {
            let (f, t) = (index[&from], index[&to]);
            if seen.insert((f, t, sign)) {
                let s = match sign {
                    Sign::Pos => EdgeSign::Pos,
                    Sign::Neg => EdgeSign::Neg,
                };
                graph.add_edge(f, t, s);
            }
        }
        ProgramGraph {
            graph,
            preds,
            index,
        }
    }

    /// The node of `pred`, if it occurs in the program.
    pub fn node_of(&self, pred: PredSym) -> Option<NodeId> {
        self.index.get(&pred).copied()
    }

    /// The predicate of node `n`.
    pub fn pred_of(&self, n: NodeId) -> PredSym {
        self.preds[n as usize]
    }

    /// Number of predicate nodes.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// `true` iff the program has no predicates.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::parse_program;

    #[test]
    fn win_move_graph_shape() {
        let p = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        let pg = ProgramGraph::of(&p);
        assert_eq!(pg.len(), 2);
        let win = pg.node_of("win".into()).unwrap();
        let mv = pg.node_of("move".into()).unwrap();
        // move -+-> win ; win ---> win.
        assert_eq!(pg.graph.edge_count(), 2);
        assert!(pg.graph.out_edges(mv).contains(&(win, EdgeSign::Pos)));
        assert!(pg.graph.out_edges(win).contains(&(win, EdgeSign::Neg)));
    }

    #[test]
    fn duplicate_dependencies_collapsed() {
        let p = parse_program("p(X) :- q(X), q(X).\np(Y) :- q(Y).").unwrap();
        let pg = ProgramGraph::of(&p);
        assert_eq!(pg.graph.edge_count(), 1);
    }

    #[test]
    fn both_signs_kept() {
        let p = parse_program("p(X) :- q(X), not q(X).").unwrap();
        let pg = ProgramGraph::of(&p);
        assert_eq!(pg.graph.edge_count(), 2);
    }

    #[test]
    fn skeleton_invariance() {
        // Alphabetic variants share the program graph (same skeleton ⇒
        // same predicate-level edges).
        let p1 = parse_program("p(a) :- not p(X), e(b).").unwrap();
        let p2 = parse_program("p(X, Y) :- not p(Y, Y), e(X).").unwrap();
        let g1 = ProgramGraph::of(&p1);
        let g2 = ProgramGraph::of(&p2);
        assert_eq!(g1.preds.len(), g2.preds.len());
        let e1: Vec<_> = g1.graph.edges().collect();
        let e2: Vec<_> = g2.graph.edges().collect();
        assert_eq!(e1, e2);
    }
}
