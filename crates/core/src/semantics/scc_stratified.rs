//! SCC-stratified evaluation ([`crate::semantics::EvalMode::Stratified`]).
//!
//! The paper's interpreters alternate `close` with whole-graph queries:
//! every unfounded-set round clones the live deletion state
//! (`Closer::largest_unfounded_set`) and every tie break rebuilds the
//! remaining digraph and its SCCs. On alternation-heavy instances — a
//! win–move chain of draw pockets, the two-counter reduction — that makes
//! evaluation quadratic even though each individual round is cheap.
//!
//! This module runs the *same* algorithms over the condensation instead:
//!
//! 1. `close(M₀, G)` as usual;
//! 2. condense the residual graph once
//!    ([`datalog_ground::UnfoundedEngine`]);
//! 3. process components in topological order (sources first). Per
//!    component: falsify component-local unfounded sets to a fixpoint
//!    (well-founded flavours), then repeatedly break bottom ties inside
//!    the component's alive remnant (tie-breaking flavours), re-running
//!    the incremental `close` after every batch of assignments.
//!
//! **Why a single pass is exact.** Every `close` propagation step follows
//! an edge of the bipartite graph (body atom → rule node → head atom), so
//! assignments inside a component only ever affect that component and
//! components downstream in the condensation; a finished component is
//! never reopened. A component-local unfounded set equals the global
//! one's intersection with the component because upstream positive
//! support has already been resolved (see the `datalog-ground` module
//! docs), and a component sub-SCC is a bottom component of the *global*
//! remaining graph exactly when it is bottom inside the component's alive
//! subgraph and free of alive in-edges from outside
//! ([`datalog_ground::ComponentGraph::external_in`]) — stuck upstream
//! residues (odd loops) therefore veto downstream tie breaks exactly as
//! they do in the global loop.
//!
//! The differential suites (`tests/eval_modes.rs`, plus the unit tests
//! here) check that stratified and global runs produce identical
//! well-founded models and identical tie-breaking outcome *sets*;
//! individual runs may break isomorphic ties in a different order.

use datalog_ast::{Database, Program};
use datalog_ground::{AtomId, Closer, GroundGraph, PartialModel, TruthValue, UnfoundedEngine};
use signed_graph::{tie, Sccs};

use super::tie_breaking::{break_tie, TiePolicy};
use super::{InterpreterRun, RunStats, SemanticsError};

/// Algorithm Well-Founded over the condensation: identical model to
/// [`super::well_founded()`], linear instead of quadratic in the number of
/// unfounded rounds.
///
/// # Errors
///
/// As for [`super::well_founded()`].
pub fn well_founded_stratified(
    graph: &GroundGraph,
    program: &Program,
    database: &Database,
) -> Result<InterpreterRun, SemanticsError> {
    run_stratified(graph, program, database, None, true, false)
}

/// Algorithm Pure Tie-Breaking over the condensation: identical outcome
/// set to [`super::pure_tie_breaking`].
///
/// # Errors
///
/// As for [`super::pure_tie_breaking`].
pub fn pure_tie_breaking_stratified<P: TiePolicy>(
    graph: &GroundGraph,
    program: &Program,
    database: &Database,
    policy: &mut P,
) -> Result<InterpreterRun, SemanticsError> {
    run_stratified(graph, program, database, Some(policy), false, false)
}

/// Algorithm Well-Founded Tie-Breaking over the condensation: identical
/// outcome set to [`super::well_founded_tie_breaking`].
///
/// # Errors
///
/// As for [`super::well_founded_tie_breaking`].
pub fn well_founded_tie_breaking_stratified<P: TiePolicy>(
    graph: &GroundGraph,
    program: &Program,
    database: &Database,
    policy: &mut P,
) -> Result<InterpreterRun, SemanticsError> {
    run_stratified(graph, program, database, Some(policy), true, false)
}

/// One pass over a sequence of condensation components — the flavour
/// switches (`policy: None` means plain well-founded; `use_unfounded`
/// keeps the unfounded-set priority of the well-founded flavours).
///
/// Bundling them keeps [`process_components`]' signature stable while
/// the runtime crate drives the same kernel over component subsets.
pub struct ComponentPass<'p> {
    /// Falsify component-local unfounded sets before looking at ties.
    pub use_unfounded: bool,
    /// Record per-event details in the stats.
    pub detailed: bool,
    /// The tie policy; `None` skips the tie phase entirely.
    pub policy: Option<&'p mut dyn TiePolicy>,
}

/// The condensation-driven loop shared by all three flavours.
///
/// `policy: None` runs plain well-founded evaluation; `use_unfounded`
/// keeps the unfounded-set priority of the well-founded flavours.
pub(crate) fn run_stratified(
    graph: &GroundGraph,
    program: &Program,
    database: &Database,
    policy: Option<&mut dyn TiePolicy>,
    use_unfounded: bool,
    detailed: bool,
) -> Result<InterpreterRun, SemanticsError> {
    let mut model = PartialModel::initial(program, database, graph.atoms());
    let mut closer = Closer::new(graph);
    let mut stats = RunStats::default();

    closer.bootstrap(&model);
    closer.run(&mut model)?;
    stats.close_rounds += 1;

    let mut engine = UnfoundedEngine::build(&closer);
    let order: Vec<u32> = engine.order().to_vec();

    let mut pass = ComponentPass {
        use_unfounded,
        detailed,
        policy,
    };
    process_components(
        &mut closer,
        &mut model,
        &mut engine,
        &order,
        &mut pass,
        &mut stats,
    )?;

    let total = model.is_total();
    Ok(InterpreterRun {
        model,
        total,
        stats,
    })
}

/// Processes `components` (which must be listed in topological order of
/// the condensation, upstream first) against live `closer`/`model` state:
/// per component, falsify local unfounded sets to a fixpoint, then break
/// bottom ties inside the alive remnant, re-running the incremental
/// `close` after every batch.
///
/// This is the shared evaluation kernel: the stratified interpreters
/// (e.g. [`well_founded_stratified`]) drive it over the full topological
/// order after grounding and closing, and the `tiebreak-runtime` session
/// scheduler calls it per *branch* (a weakly-connected family of
/// components) on forked copies of the post-close state — causally
/// independent branches touch disjoint atoms, so the kernel itself never
/// needs to know it is running concurrently.
///
/// # Errors
///
/// [`SemanticsError::Conflict`] on propagation conflicts (substrate
/// misuse; the paper's algorithms never conflict).
pub fn process_components(
    closer: &mut Closer<'_>,
    model: &mut PartialModel,
    engine: &mut UnfoundedEngine,
    components: &[u32],
    pass: &mut ComponentPass<'_>,
    stats: &mut RunStats,
) -> Result<(), SemanticsError> {
    for &c in components {
        let mut rounds = 0usize;
        loop {
            // Unfounded sets take priority over tie-breaking, exactly as
            // in the global Algorithm Well-Founded Tie-Breaking.
            if pass.use_unfounded {
                let unfounded = engine.local_unfounded(closer, c);
                if !unfounded.is_empty() {
                    stats.unfounded_rounds += 1;
                    for atom in unfounded {
                        closer.define(model, atom, TruthValue::False);
                    }
                    closer.run(model)?;
                    stats.close_rounds += 1;
                    rounds += 1;
                    continue;
                }
            }

            let Some(policy) = pass.policy.as_deref_mut() else {
                break; // plain well-founded: no tie phase
            };
            if !engine.has_alive_atoms(closer, c) {
                break;
            }

            // Bottom ties inside the component's alive remnant. A sub-SCC
            // with an external alive in-edge is not bottom in the global
            // graph (its upstream residue is stuck) and is skipped.
            let sub = engine.alive_subgraph(closer, c);
            let sccs = Sccs::compute(&sub.digraph);
            let mut broke = false;
            for s in sccs.bottom_components(&sub.digraph) {
                if !sub.is_globally_bottom(sccs.members(s)) {
                    continue;
                }
                let Ok(partition) = tie::check_tie(&sub.digraph, sccs.members(s)) else {
                    continue; // odd component: not a tie
                };
                let root_side: Vec<AtomId> = partition
                    .k_side()
                    .filter_map(|n| sub.node_atoms[n as usize])
                    .collect();
                let other_side: Vec<AtomId> = partition
                    .l_side()
                    .filter_map(|n| sub.node_atoms[n as usize])
                    .collect();
                if root_side.is_empty() && other_side.is_empty() {
                    // Unreachable post-close (every bottom SCC is cyclic
                    // and hence contains an atom); guard against looping.
                    continue;
                }

                break_tie(
                    closer,
                    model,
                    policy,
                    &root_side,
                    &other_side,
                    stats,
                    pass.detailed,
                )?;
                rounds += 1;
                broke = true;
                break;
            }
            if !broke {
                break; // stuck remnant (odd or vetoed): move on
            }
        }
        stats.record_component(rounds, pass.detailed);
        // One point event per component verdict, in processing order —
        // the wave determinism suite checks these stay topological.
        tiebreak_trace::instant(
            "eval",
            "component",
            &[("component", u64::from(c)), ("rounds", rounds as u64)],
        );
    }
    tiebreak_trace::metrics()
        .components_processed
        .add(components.len() as u64);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::tie_breaking::{
        well_founded_tie_breaking, RootFalsePolicy, RootTruePolicy, ScriptedPolicy,
    };
    use crate::semantics::well_founded::well_founded;
    use datalog_ast::{parse_database, parse_program, GroundAtom};
    use datalog_ground::{ground, GroundConfig};

    fn setup(src: &str, db: &str) -> (GroundGraph, Program, Database) {
        let p = parse_program(src).unwrap();
        let d = parse_database(db).unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        (g, p, d)
    }

    fn val(g: &GroundGraph, r: &InterpreterRun, pred: &str, args: &[&str]) -> TruthValue {
        r.model.get(
            g.atoms()
                .id_of(&GroundAtom::from_texts(pred, args))
                .unwrap(),
        )
    }

    #[test]
    fn wf_agrees_with_global_on_paper_examples() {
        for (src, db) in [
            ("p :- p, not q.\nq :- q, not p.", ""),
            ("p :- not q.\nq :- not p.", ""),
            ("p :- not q.\nq :- not r.\nr :- not p.", ""),
            ("p(a) :- not p(X), e(b).", "e(b)."),
            (
                "win(X) :- move(X, Y), not win(Y).",
                "move(a, b).\nmove(b, a).\nmove(c, a).",
            ),
            (
                "win(X) :- move(X, Y), not win(Y).",
                "move(a, b).\nmove(b, c).",
            ),
        ] {
            let (g, p, d) = setup(src, db);
            let global = well_founded(&g, &p, &d).unwrap();
            let strat = well_founded_stratified(&g, &p, &d).unwrap();
            assert_eq!(strat.model, global.model, "program: {src}");
            assert_eq!(strat.total, global.total);
        }
    }

    #[test]
    fn chained_unfounded_rounds_collapse_to_one_pass() {
        // The global algorithm needs Θ(n) unfounded rounds on this chain;
        // stratified needs one per affected component and its stats say so.
        let mut src = String::from("a0 :- a0.\nb0 :- not a0.\n");
        for i in 1..8 {
            src.push_str(&format!(
                "a{i} :- a{i}.\na{i} :- b{}.\nb{i} :- not a{i}.\n",
                i - 1
            ));
        }
        let (g, p, d) = setup(&src, "");
        let global = well_founded(&g, &p, &d).unwrap();
        let strat = well_founded_stratified(&g, &p, &d).unwrap();
        assert_eq!(strat.model, global.model);
        assert!(strat.total);
        assert_eq!(global.stats.unfounded_rounds, 4, "global alternates");
        assert_eq!(strat.stats.unfounded_rounds, 4);
        assert_eq!(
            strat.stats.max_component_rounds, 1,
            "one round per component"
        );
        assert!(strat.stats.components_processed > 0);
    }

    #[test]
    fn tie_orientations_match_global() {
        let (g, p, d) = setup("p :- not q.\nq :- not p.", "");
        for (policy_true, ()) in [(true, ()), (false, ())] {
            let run = |strat: bool| {
                if policy_true {
                    let mut pol = RootTruePolicy;
                    if strat {
                        well_founded_tie_breaking_stratified(&g, &p, &d, &mut pol).unwrap()
                    } else {
                        well_founded_tie_breaking(&g, &p, &d, &mut pol).unwrap()
                    }
                } else {
                    let mut pol = RootFalsePolicy;
                    if strat {
                        well_founded_tie_breaking_stratified(&g, &p, &d, &mut pol).unwrap()
                    } else {
                        well_founded_tie_breaking(&g, &p, &d, &mut pol).unwrap()
                    }
                }
            };
            let a = run(false);
            let b = run(true);
            assert!(a.total && b.total);
            assert_eq!(a.model, b.model, "same policy, same single-tie model");
        }
    }

    #[test]
    fn unfounded_priority_is_kept() {
        // {p, q} is unfounded, so WF-TB falsifies it instead of breaking
        // the tie — in both modes.
        let (g, p, d) = setup("p :- p, not q.\nq :- q, not p.", "");
        let mut pol = RootTruePolicy;
        let strat = well_founded_tie_breaking_stratified(&g, &p, &d, &mut pol).unwrap();
        assert!(strat.total);
        assert_eq!(val(&g, &strat, "p", &[]), TruthValue::False);
        assert_eq!(val(&g, &strat, "q", &[]), TruthValue::False);
        assert_eq!(strat.stats.ties_broken, 0);
        assert_eq!(strat.stats.unfounded_rounds, 1);

        // Pure tie-breaking instead breaks the tie in both modes.
        let mut pol = RootTruePolicy;
        let pure = pure_tie_breaking_stratified(&g, &p, &d, &mut pol).unwrap();
        assert!(pure.total);
        assert_eq!(pure.stats.ties_broken, 1);
        assert_ne!(val(&g, &pure, "p", &[]), val(&g, &pure, "q", &[]));
    }

    #[test]
    fn stuck_upstream_vetoes_downstream_ties() {
        // The odd loop `x` feeds `p` through an alive rule, so the {p, q}
        // tie never becomes a bottom component: the global loop leaves it
        // unbroken and so must the stratified one.
        let (g, p, d) = setup("p :- not q.\nq :- not p.\np :- x.\nx :- not x.", "");
        let mut pol = RootTruePolicy;
        let global = well_founded_tie_breaking(&g, &p, &d, &mut pol).unwrap();
        let mut pol = RootTruePolicy;
        let strat = well_founded_tie_breaking_stratified(&g, &p, &d, &mut pol).unwrap();
        assert_eq!(strat.model, global.model);
        assert!(!strat.total);
        assert_eq!(strat.stats.ties_broken, 0);
        assert_eq!(strat.model.defined_count(), 0);
    }

    #[test]
    fn resolved_upstream_unlocks_downstream_ties() {
        // Here the guard loop is unfounded: y := false resolves upstream,
        // which *closes* p to true — no tie remains anywhere.
        let (g, p, d) = setup("p :- not q.\nq :- not p.\np :- not y.\ny :- y.", "");
        let mut pol = RootTruePolicy;
        let global = well_founded_tie_breaking(&g, &p, &d, &mut pol).unwrap();
        let mut pol = RootTruePolicy;
        let strat = well_founded_tie_breaking_stratified(&g, &p, &d, &mut pol).unwrap();
        assert_eq!(strat.model, global.model);
        assert!(strat.total);
        assert_eq!(val(&g, &strat, "p", &[]), TruthValue::True);
        assert_eq!(strat.stats.ties_broken, 0);
    }

    #[test]
    fn tie_chain_resolves_linearly() {
        // n draw pockets chained through the win–move game: one tie break
        // (or close cascade) per pocket, resolved source-first.
        let n = 12;
        let mut db = String::new();
        for i in 0..n {
            db.push_str(&format!("move(a{i}, b{i}).\nmove(b{i}, a{i}).\n"));
        }
        for i in 0..n - 1 {
            db.push_str(&format!("move(a{i}, a{}).\n", i + 1));
        }
        let (g, p, d) = setup("win(X) :- move(X, Y), not win(Y).", &db);
        let mut pol = RootTruePolicy;
        let strat = well_founded_tie_breaking_stratified(&g, &p, &d, &mut pol).unwrap();
        assert!(strat.total);
        assert!(strat.stats.ties_broken >= 1);
        assert!(strat.stats.components_processed > 0);

        // Identical outcome *sets* with the global loop are asserted by
        // the differential suites; here check both are total fixpoints.
        let mut pol = RootTruePolicy;
        let global = well_founded_tie_breaking(&g, &p, &d, &mut pol).unwrap();
        assert!(global.total);
    }

    #[test]
    fn scripted_policy_reaches_both_orientations() {
        let (g, p, d) = setup("p :- not q.\nq :- not p.", "");
        let mut seen = std::collections::HashSet::new();
        for &choice in &[false, true] {
            let mut pol = ScriptedPolicy::new(vec![choice], false);
            let r = well_founded_tie_breaking_stratified(&g, &p, &d, &mut pol).unwrap();
            assert!(r.total);
            assert_eq!(pol.consumed(), 1);
            seen.insert(format!("{:?}", val(&g, &r, "p", &[])));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn detailed_stats_record_component_rounds() {
        let (g, p, d) = setup("p :- not q.\nq :- not p.", "");
        let mut pol = RootTruePolicy;
        let run = run_stratified(&g, &p, &d, Some(&mut pol), true, true).unwrap();
        assert_eq!(run.stats.tie_log.len(), 1);
        assert_eq!(run.stats.component_rounds.iter().sum::<usize>(), 1);
        // Default (non-detailed) keeps the logs empty but the counters.
        let mut pol = RootTruePolicy;
        let lean = well_founded_tie_breaking_stratified(&g, &p, &d, &mut pol).unwrap();
        assert!(lean.stats.tie_log.is_empty());
        assert!(lean.stats.component_rounds.is_empty());
        assert_eq!(lean.stats.ties_broken, 1);
    }
}
