//! Semi-naive bottom-up rule evaluation.
//!
//! The relational substrate for stratified evaluation (\[CH, ABW\]; paper,
//! Section 1): within one stratum, rules are evaluated to a least fixpoint
//! with *delta* relations so each round only joins against newly derived
//! tuples. Negative literals are checked against relations completed by
//! lower strata (negation as failure on completed data).
//!
//! Variables not bound by positive body literals (unsafe rules, or
//! variables occurring only under negation) range over the universe *U*,
//! matching the ground-graph semantics exactly.

use datalog_ast::{
    Atom, ConstSym, Database, FxHashMap, GroundAtom, Program, Rule, Sign, Term, VarSym,
};

/// Where a positive literal reads its tuples during a semi-naive round.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Source {
    /// The full current relation.
    Total,
    /// Only the last round's new tuples.
    Delta,
}

/// A compiled rule evaluator: variable indexing plus the body split.
pub struct RuleEvaluator<'r> {
    rule: &'r Rule,
    vars: Vec<VarSym>,
    var_index: FxHashMap<VarSym, usize>,
    positive: Vec<&'r Atom>,
    negative: Vec<&'r Atom>,
}

impl<'r> RuleEvaluator<'r> {
    /// Compiles `rule`.
    pub fn new(rule: &'r Rule) -> Self {
        let vars = rule.variables();
        let var_index: FxHashMap<VarSym, usize> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        let positive: Vec<&Atom> = rule
            .body
            .iter()
            .filter(|l| l.sign == Sign::Pos)
            .map(|l| &l.atom)
            .collect();
        let negative: Vec<&Atom> = rule
            .body
            .iter()
            .filter(|l| l.sign == Sign::Neg)
            .map(|l| &l.atom)
            .collect();
        RuleEvaluator {
            rule,
            vars,
            var_index,
            positive,
            negative,
        }
    }

    /// Number of positive body literals.
    pub fn positive_len(&self) -> usize {
        self.positive.len()
    }

    /// The predicate of the i-th positive literal.
    pub fn positive_pred(&self, i: usize) -> datalog_ast::PredSym {
        self.positive[i].pred
    }

    /// Evaluates the rule, emitting every head instance derivable with the
    /// given sources:
    ///
    /// * `total` — the current state of all relations,
    /// * `delta_occurrence` — if `Some(i)`, the i-th positive literal reads
    ///   from `delta` instead of `total` (the semi-naive restriction),
    /// * `universe` — range of variables not bound by positive literals.
    ///
    /// Negative literals are tested against `total` (complete for their
    /// strata by the stratification invariant).
    pub fn emit(
        &self,
        total: &Database,
        delta: &Database,
        delta_occurrence: Option<usize>,
        universe: &[ConstSym],
        out: &mut Vec<GroundAtom>,
    ) {
        let mut subst: Vec<Option<ConstSym>> = vec![None; self.vars.len()];
        self.join(0, total, delta, delta_occurrence, universe, &mut subst, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn join(
        &self,
        depth: usize,
        total: &Database,
        delta: &Database,
        delta_occurrence: Option<usize>,
        universe: &[ConstSym],
        subst: &mut Vec<Option<ConstSym>>,
        out: &mut Vec<GroundAtom>,
    ) {
        if depth == self.positive.len() {
            self.finish(total, universe, subst, out);
            return;
        }
        let atom = self.positive[depth];
        let source = if delta_occurrence == Some(depth) {
            Source::Delta
        } else {
            Source::Total
        };
        let db = match source {
            Source::Total => total,
            Source::Delta => delta,
        };
        let Some(rel) = db.relation(atom.pred) else {
            return; // empty relation: no matches
        };
        for tuple in rel.iter() {
            let mut trail: Vec<usize> = Vec::new();
            if self.try_match(atom, tuple, subst, &mut trail) {
                self.join(
                    depth + 1,
                    total,
                    delta,
                    delta_occurrence,
                    universe,
                    subst,
                    out,
                );
            }
            for pos in trail {
                subst[pos] = None;
            }
        }
    }

    fn try_match(
        &self,
        atom: &Atom,
        tuple: &[ConstSym],
        subst: &mut [Option<ConstSym>],
        trail: &mut Vec<usize>,
    ) -> bool {
        debug_assert_eq!(atom.args.len(), tuple.len());
        for (term, &c) in atom.args.iter().zip(tuple.iter()) {
            match term {
                Term::Const(k) => {
                    if *k != c {
                        return false;
                    }
                }
                Term::Var(v) => {
                    let pos = self.var_index[v];
                    match subst[pos] {
                        Some(bound) if bound != c => return false,
                        Some(_) => {}
                        None => {
                            subst[pos] = Some(c);
                            trail.push(pos);
                        }
                    }
                }
            }
        }
        true
    }

    /// All positive literals matched: bind leftover variables over the
    /// universe, test negatives, emit the head.
    fn finish(
        &self,
        total: &Database,
        universe: &[ConstSym],
        subst: &mut [Option<ConstSym>],
        out: &mut Vec<GroundAtom>,
    ) {
        let unbound: Vec<usize> = (0..self.vars.len())
            .filter(|&i| subst[i].is_none())
            .collect();
        if unbound.is_empty() {
            self.check_and_emit(total, subst, out);
            return;
        }
        if universe.is_empty() {
            return; // variables with an empty range: no instances
        }
        // Mixed-radix enumeration of the unbound positions.
        let mut counter = vec![0usize; unbound.len()];
        loop {
            for (slot, &pos) in counter.iter().zip(&unbound) {
                subst[pos] = Some(universe[*slot]);
            }
            self.check_and_emit(total, subst, out);
            // Advance.
            let mut i = 0;
            loop {
                if i == counter.len() {
                    for &pos in &unbound {
                        subst[pos] = None;
                    }
                    return;
                }
                counter[i] += 1;
                if counter[i] < universe.len() {
                    break;
                }
                counter[i] = 0;
                i += 1;
            }
        }
    }

    fn check_and_emit(
        &self,
        total: &Database,
        subst: &[Option<ConstSym>],
        out: &mut Vec<GroundAtom>,
    ) {
        let ground = |atom: &Atom| -> GroundAtom {
            GroundAtom {
                pred: atom.pred,
                args: atom
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => *c,
                        Term::Var(v) => {
                            subst[self.var_index[v]].expect("all variables bound at emit")
                        }
                    })
                    .collect(),
            }
        };
        for neg in &self.negative {
            if total.contains(&ground(neg)) {
                return;
            }
        }
        out.push(ground(&self.rule.head));
    }
}

/// Runs one stratum's rules (`rule_indices` into `program`) to a least
/// fixpoint over `total`, semi-naively. `stratum_preds` are the IDB
/// predicates being computed (delta tracking applies to them).
///
/// `total` is updated in place; the function returns the number of new
/// facts derived.
pub fn evaluate_stratum(
    program: &Program,
    rule_indices: &[usize],
    stratum_preds: &[datalog_ast::PredSym],
    total: &mut Database,
    universe: &[ConstSym],
) -> usize {
    let evaluators: Vec<RuleEvaluator<'_>> = rule_indices
        .iter()
        .map(|&i| RuleEvaluator::new(&program.rules()[i]))
        .collect();
    let in_stratum =
        |p: datalog_ast::PredSym| -> bool { stratum_preds.contains(&p) };

    let mut derived = 0usize;
    let mut out: Vec<GroundAtom> = Vec::new();

    // Round 0: full evaluation.
    for ev in &evaluators {
        ev.emit(total, &Database::new(), None, universe, &mut out);
    }
    let mut delta = Database::new();
    for fact in out.drain(..) {
        if !total.contains(&fact) {
            total.insert(fact.clone()).expect("arity consistent");
            delta.insert(fact).expect("arity consistent");
            derived += 1;
        }
    }

    // Semi-naive rounds.
    while !delta.is_empty() {
        for ev in &evaluators {
            for occ in 0..ev.positive_len() {
                if in_stratum(ev.positive_pred(occ)) {
                    ev.emit(total, &delta, Some(occ), universe, &mut out);
                }
            }
        }
        let mut next = Database::new();
        for fact in out.drain(..) {
            if !total.contains(&fact) {
                total.insert(fact.clone()).expect("arity consistent");
                next.insert(fact).expect("arity consistent");
                derived += 1;
            }
        }
        delta = next;
    }
    derived
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_database, parse_program, PredSym};

    #[test]
    fn transitive_closure() {
        let p = parse_program("t(X, Y) :- e(X, Y).\nt(X, Z) :- t(X, Y), e(Y, Z).").unwrap();
        let mut db = parse_database("e(a, b).\ne(b, c).\ne(c, d).").unwrap();
        let u = Database::universe(&p, &db);
        let n = evaluate_stratum(
            &p,
            &[0, 1],
            &[PredSym::new("t")],
            &mut db,
            &u,
        );
        assert_eq!(n, 6); // ab bc cd ac bd ad
        assert!(db.contains(&GroundAtom::from_texts("t", &["a", "d"])));
        assert!(!db.contains(&GroundAtom::from_texts("t", &["d", "a"])));
    }

    #[test]
    fn negation_against_completed_relation() {
        // unreach(X) :- node(X), not reach(X).  (reach complete in total)
        let p = parse_program("unreach(X) :- node(X), not reach(X).").unwrap();
        let mut db =
            parse_database("node(a).\nnode(b).\nreach(a).").unwrap();
        let u = Database::universe(&p, &db);
        evaluate_stratum(&p, &[0], &[PredSym::new("unreach")], &mut db, &u);
        assert!(db.contains(&GroundAtom::from_texts("unreach", &["b"])));
        assert!(!db.contains(&GroundAtom::from_texts("unreach", &["a"])));
    }

    #[test]
    fn unsafe_rule_ranges_over_universe() {
        // p(X) :- e.  — X unbound: ranges over U.
        let p = parse_program("p(X) :- e.\nq(a).").unwrap();
        let mut db = parse_database("e.").unwrap();
        // Universe: {a} from the rule q(a).
        let u = Database::universe(&p, &db);
        assert_eq!(u.len(), 1);
        evaluate_stratum(&p, &[0, 1], &[PredSym::new("p"), PredSym::new("q")], &mut db, &u);
        assert!(db.contains(&GroundAtom::from_texts("p", &["a"])));
    }

    #[test]
    fn repeated_variables_unify() {
        // loop(X) :- e(X, X).
        let p = parse_program("loop(X) :- e(X, X).").unwrap();
        let mut db = parse_database("e(a, a).\ne(a, b).").unwrap();
        let u = Database::universe(&p, &db);
        evaluate_stratum(&p, &[0], &[PredSym::new("loop")], &mut db, &u);
        assert!(db.contains(&GroundAtom::from_texts("loop", &["a"])));
        assert!(!db.contains(&GroundAtom::from_texts("loop", &["b"])));
    }

    #[test]
    fn constants_in_body_filter() {
        let p = parse_program("p(X) :- e(a, X).").unwrap();
        let mut db = parse_database("e(a, b).\ne(c, d).").unwrap();
        let u = Database::universe(&p, &db);
        evaluate_stratum(&p, &[0], &[PredSym::new("p")], &mut db, &u);
        assert!(db.contains(&GroundAtom::from_texts("p", &["b"])));
        assert!(!db.contains(&GroundAtom::from_texts("p", &["d"])));
    }

    #[test]
    fn derivation_count_is_exact() {
        let p = parse_program("t(X, Y) :- e(X, Y).\nt(X, Z) :- t(X, Y), t(Y, Z).").unwrap();
        // A 2-chain: derivations: ab, bc (copies) + ac = 3.
        let mut db = parse_database("e(a, b).\ne(b, c).").unwrap();
        let u = Database::universe(&p, &db);
        let n = evaluate_stratum(&p, &[0, 1], &[PredSym::new("t")], &mut db, &u);
        assert_eq!(n, 3);
    }
}
