//! Semi-naive bottom-up rule evaluation.
//!
//! The relational substrate for stratified evaluation (\[CH, ABW\]; paper,
//! Section 1): within one stratum, rules are evaluated to a least fixpoint
//! with *delta* relations so each round only joins against newly derived
//! tuples. Negative literals are checked against relations completed by
//! lower strata (negation as failure on completed data).
//!
//! The join engine itself lives in [`datalog_ground::seminaive`] so the
//! relevant grounder (`GroundMode::Relevant`) can share it; this module
//! re-exports it under its historical path.

pub use datalog_ground::seminaive::{evaluate_stratum, RuleEvaluator};

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_database, parse_program, Database, GroundAtom, PredSym};

    #[test]
    fn transitive_closure() {
        let p = parse_program("t(X, Y) :- e(X, Y).\nt(X, Z) :- t(X, Y), e(Y, Z).").unwrap();
        let mut db = parse_database("e(a, b).\ne(b, c).\ne(c, d).").unwrap();
        let u = Database::universe(&p, &db);
        let n = evaluate_stratum(&p, &[0, 1], &[PredSym::new("t")], &mut db, &u);
        assert_eq!(n, 6); // ab bc cd ac bd ad
        assert!(db.contains(&GroundAtom::from_texts("t", &["a", "d"])));
        assert!(!db.contains(&GroundAtom::from_texts("t", &["d", "a"])));
    }

    #[test]
    fn negation_against_completed_relation() {
        // unreach(X) :- node(X), not reach(X).  (reach complete in total)
        let p = parse_program("unreach(X) :- node(X), not reach(X).").unwrap();
        let mut db = parse_database("node(a).\nnode(b).\nreach(a).").unwrap();
        let u = Database::universe(&p, &db);
        evaluate_stratum(&p, &[0], &[PredSym::new("unreach")], &mut db, &u);
        assert!(db.contains(&GroundAtom::from_texts("unreach", &["b"])));
        assert!(!db.contains(&GroundAtom::from_texts("unreach", &["a"])));
    }

    #[test]
    fn unsafe_rule_ranges_over_universe() {
        // p(X) :- e.  — X unbound: ranges over U.
        let p = parse_program("p(X) :- e.\nq(a).").unwrap();
        let mut db = parse_database("e.").unwrap();
        // Universe: {a} from the rule q(a).
        let u = Database::universe(&p, &db);
        assert_eq!(u.len(), 1);
        evaluate_stratum(
            &p,
            &[0, 1],
            &[PredSym::new("p"), PredSym::new("q")],
            &mut db,
            &u,
        );
        assert!(db.contains(&GroundAtom::from_texts("p", &["a"])));
    }

    #[test]
    fn repeated_variables_unify() {
        // loop(X) :- e(X, X).
        let p = parse_program("loop(X) :- e(X, X).").unwrap();
        let mut db = parse_database("e(a, a).\ne(a, b).").unwrap();
        let u = Database::universe(&p, &db);
        evaluate_stratum(&p, &[0], &[PredSym::new("loop")], &mut db, &u);
        assert!(db.contains(&GroundAtom::from_texts("loop", &["a"])));
        assert!(!db.contains(&GroundAtom::from_texts("loop", &["b"])));
    }

    #[test]
    fn constants_in_body_filter() {
        let p = parse_program("p(X) :- e(a, X).").unwrap();
        let mut db = parse_database("e(a, b).\ne(c, d).").unwrap();
        let u = Database::universe(&p, &db);
        evaluate_stratum(&p, &[0], &[PredSym::new("p")], &mut db, &u);
        assert!(db.contains(&GroundAtom::from_texts("p", &["b"])));
        assert!(!db.contains(&GroundAtom::from_texts("p", &["d"])));
    }

    #[test]
    fn derivation_count_is_exact() {
        let p = parse_program("t(X, Y) :- e(X, Y).\nt(X, Z) :- t(X, Y), t(Y, Z).").unwrap();
        // A 2-chain: derivations: ab, bc (copies) + ac = 3.
        let mut db = parse_database("e(a, b).\ne(b, c).").unwrap();
        let u = Database::universe(&p, &db);
        let n = evaluate_stratum(&p, &[0, 1], &[PredSym::new("t")], &mut db, &u);
        assert_eq!(n, 3);
    }
}
