//! The perfect model of locally stratified programs \[Pr\] (paper, §3).
//!
//! Przymusinski: every locally stratified Π with database Δ has a
//! distinguished fixpoint, the **perfect model**, minimizing positive
//! literals at lower levels. The paper observes that a strongly connected
//! component without negative edges is trivially a tie (one side empty),
//! so the tie-breaking interpreters always terminate on locally stratified
//! instances and in fact compute the perfect model: every tie broken has
//! an empty side, so no arbitrary choice is ever exercised — the whole run
//! is deterministic and coincides with iterated minimal-model steps, i.e.
//! with the well-founded computation.
//!
//! We implement the perfect model through exactly that route (well-founded
//! iteration after a local-stratification check) and assert totality.

use datalog_ast::{Database, Program};
use datalog_ground::GroundGraph;

use super::well_founded::well_founded;
use super::{InterpreterRun, SemanticsError};
use crate::analysis::local_strat::locally_stratified;

/// Computes the perfect model of a locally stratified instance.
///
/// # Errors
///
/// [`SemanticsError::NotApplicable`] if the instance is not locally
/// stratified (checked on the full ground graph, as the paper defines).
pub fn perfect(
    graph: &GroundGraph,
    program: &Program,
    database: &Database,
) -> Result<InterpreterRun, SemanticsError> {
    let check = locally_stratified(graph);
    if !check.locally_stratified {
        return Err(SemanticsError::NotApplicable(
            "instance is not locally stratified (a ground SCC contains a negative edge)".to_owned(),
        ));
    }
    let run = well_founded(graph, program, database)?;
    debug_assert!(
        run.total,
        "locally stratified instances have a total well-founded model"
    );
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_database, parse_program, GroundAtom};
    use datalog_ground::{ground, GroundConfig, TruthValue};

    #[test]
    fn perfect_model_of_stratified_instance() {
        let p = parse_program("reach(X) :- start(X).\nreach(Y) :- reach(X), edge(X, Y).").unwrap();
        let d = parse_database("start(a).\nedge(a, b).").unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        let run = perfect(&g, &p, &d).unwrap();
        assert!(run.total);
        let rb = g
            .atoms()
            .id_of(&GroundAtom::from_texts("reach", &["b"]))
            .unwrap();
        assert_eq!(run.model.get(rb), TruthValue::True);
    }

    #[test]
    fn rejects_non_locally_stratified() {
        let p = parse_program("p :- not q.\nq :- not p.").unwrap();
        let d = parse_database("").unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        assert!(matches!(
            perfect(&g, &p, &d),
            Err(SemanticsError::NotApplicable(_))
        ));
    }

    #[test]
    fn perfect_equals_tie_breaking_on_locally_stratified() {
        // Purely positive with a recursive loop: locally stratified
        // (no negative edges at all); perfect model = minimal model.
        let p = parse_program("p(X) :- e(X).\nq(X) :- q(X).").unwrap();
        let d = parse_database("e(a).").unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        let run = perfect(&g, &p, &d).unwrap();
        assert!(run.total);
        // q(a) is in a positive loop with no base: false in the perfect
        // model (minimality).
        let qa = g
            .atoms()
            .id_of(&GroundAtom::from_texts("q", &["a"]))
            .unwrap();
        assert_eq!(run.model.get(qa), TruthValue::False);

        let mut policy = super::super::tie_breaking::RootTruePolicy;
        let tb =
            super::super::tie_breaking::well_founded_tie_breaking(&g, &p, &d, &mut policy).unwrap();
        assert!(tb.total);
        assert_eq!(tb.model, run.model);
    }
}
