//! Stratified evaluation \[CH, ABW\] (paper, Section 1).
//!
//! IDB relations are partitioned into levels; each level depends
//! positively on its own or lower levels and negatively only on lower
//! levels, so least fixpoints can be computed level by level. Defined
//! exactly on stratified programs; for those it agrees with the
//! well-founded model (which Theorem 5 shows is the structural boundary of
//! well-founded totality).

use datalog_ast::{Database, GroundAtom, Program};

use super::seminaive::evaluate_stratum;
use super::SemanticsError;
use crate::analysis::stratification::stratify;

/// The outcome of stratified evaluation.
#[derive(Clone, Debug)]
pub struct StratifiedRun {
    /// All true ground atoms: Δ plus everything derived.
    pub facts: Database,
    /// Facts derived per stratum (diagnostics).
    pub derived_per_stratum: Vec<usize>,
}

impl StratifiedRun {
    /// The true atoms as a sorted list.
    pub fn true_atoms(&self) -> Vec<GroundAtom> {
        let mut v: Vec<GroundAtom> = self.facts.facts().collect();
        v.sort_by(|a, b| (a.pred.as_str(), &a.args).cmp(&(b.pred.as_str(), &b.args)));
        v
    }
}

/// Evaluates a stratified program bottom-up.
///
/// # Errors
///
/// [`SemanticsError::NotApplicable`] if the program is not stratified.
pub fn stratified(program: &Program, database: &Database) -> Result<StratifiedRun, SemanticsError> {
    let strat = stratify(program);
    if !strat.stratified {
        let why = strat.witness.map_or_else(
            || "program is not stratified".to_owned(),
            |w| format!("cycle through negation: {w}"),
        );
        return Err(SemanticsError::NotApplicable(why));
    }

    let universe = Database::universe(program, database);
    let mut total = database.clone();
    let mut derived_per_stratum = Vec::with_capacity(strat.stratum_count as usize);

    for level in 0..strat.stratum_count {
        let preds = strat.stratum_preds(program, level);
        let rule_indices: Vec<usize> = program
            .rules()
            .iter()
            .enumerate()
            .filter(|(_, r)| strat.strata.get(&r.head.pred) == Some(&level))
            .map(|(i, _)| i)
            .collect();
        let derived = evaluate_stratum(program, &rule_indices, &preds, &mut total, &universe);
        derived_per_stratum.push(derived);
    }

    Ok(StratifiedRun {
        facts: total,
        derived_per_stratum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_database, parse_program};

    #[test]
    fn two_strata_reachability() {
        let p = parse_program(
            "reach(X) :- start(X).\n\
             reach(Y) :- reach(X), edge(X, Y).\n\
             blocked(X) :- node(X), not reach(X).",
        )
        .unwrap();
        let d = parse_database(
            "start(a).\nedge(a, b).\nedge(b, c).\nedge(x, y).\n\
             node(a).\nnode(b).\nnode(c).\nnode(x).\nnode(y).",
        )
        .unwrap();
        let run = stratified(&p, &d).unwrap();
        assert!(run.facts.contains(&GroundAtom::from_texts("reach", &["c"])));
        assert!(run
            .facts
            .contains(&GroundAtom::from_texts("blocked", &["x"])));
        assert!(!run
            .facts
            .contains(&GroundAtom::from_texts("blocked", &["b"])));
        assert_eq!(run.derived_per_stratum.len(), 2);
    }

    #[test]
    fn rejects_unstratified_programs() {
        let p = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        let d = parse_database("move(a, b).").unwrap();
        let err = stratified(&p, &d).unwrap_err();
        assert!(matches!(err, SemanticsError::NotApplicable(_)));
        assert!(err.to_string().contains("win"));
    }

    #[test]
    fn agrees_with_well_founded_on_stratified_programs() {
        use datalog_ground::{ground, GroundConfig};
        let p = parse_program(
            "reach(X) :- start(X).\n\
             reach(Y) :- reach(X), edge(X, Y).\n\
             blocked(X) :- node(X), not reach(X).\n\
             ok(X) :- node(X), not blocked(X).",
        )
        .unwrap();
        let d = parse_database("start(a).\nedge(a, b).\nnode(a).\nnode(b).\nnode(c).").unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        let wf = super::super::well_founded::well_founded(&g, &p, &d).unwrap();
        assert!(wf.total);
        let strat = stratified(&p, &d).unwrap();

        let mut wf_true = wf.model.true_atoms(g.atoms());
        wf_true.sort();
        let mut strat_true: Vec<GroundAtom> = strat.facts.facts().collect();
        strat_true.sort();
        assert_eq!(wf_true, strat_true);
    }

    #[test]
    fn idb_seed_facts_participate() {
        // Δ contains an IDB fact: it seeds the fixpoint (uniform setting).
        let p = parse_program("t(X, Z) :- t(X, Y), t(Y, Z).").unwrap();
        let d = parse_database("t(a, b).\nt(b, c).").unwrap();
        let run = stratified(&p, &d).unwrap();
        assert!(run
            .facts
            .contains(&GroundAtom::from_texts("t", &["a", "c"])));
    }

    #[test]
    fn empty_program_empty_result() {
        let run = stratified(&Program::empty(), &Database::new()).unwrap();
        assert!(run.facts.is_empty());
        assert!(run.derived_per_stratum.is_empty());
    }
}
