//! Stable (default) models \[BF1, GL\] (paper, Section 2).
//!
//! M is **stable** iff it is a total model extending M₀(Δ) and
//! `close(M₋, G)` reconstructs M, where M₋ undefines every true IDB atom
//! not in Δ. Every stable model is a fixpoint; the converse fails (the
//! paper's guarded p/q cycle has the fixpoint {p} which is not stable).

use datalog_ast::{Database, Program};
use datalog_ground::{Closer, GroundGraph, PartialModel};

use super::fixpoint::is_fixpoint;

/// `true` iff `model` is a stable model of the grounded instance.
pub fn is_stable(
    graph: &GroundGraph,
    program: &Program,
    database: &Database,
    model: &PartialModel,
) -> bool {
    if !model.is_total() {
        return false;
    }
    let m0 = PartialModel::initial(program, database, graph.atoms());
    if !model.extends(&m0) {
        return false;
    }

    let mut m = model.minus(program, database, graph.atoms());
    let mut closer = Closer::new(graph);
    closer.bootstrap(&m);
    if closer.run(&mut m).is_err() {
        return false;
    }
    m == *model
}

/// Checks the paper's containment: stable ⊆ fixpoint. Exposed for tests
/// and the experiment harness (it recomputes both sides).
pub fn stable_implies_fixpoint(
    graph: &GroundGraph,
    program: &Program,
    database: &Database,
    model: &PartialModel,
) -> bool {
    !is_stable(graph, program, database, model) || is_fixpoint(graph, database, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_database, parse_program, GroundAtom};
    use datalog_ground::{ground, GroundConfig, TruthValue};

    fn instance(src: &str, db: &str) -> (GroundGraph, Program, Database, PartialModel) {
        let p = parse_program(src).unwrap();
        let d = parse_database(db).unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        let m = PartialModel::initial(&p, &d, g.atoms());
        (g, p, d, m)
    }

    fn set(g: &GroundGraph, m: &mut PartialModel, pred: &str, v: bool) {
        m.set(
            g.atoms().id_of(&GroundAtom::from_texts(pred, &[])).unwrap(),
            TruthValue::from_bool(v),
        );
    }

    #[test]
    fn pq_cycle_both_orientations_stable() {
        let (g, p, d, m0) = instance("p :- not q.\nq :- not p.", "");
        for (pv, qv, expect) in [
            (true, false, true),
            (false, true, true),
            (false, false, false), // not even a fixpoint
            (true, true, false),
        ] {
            let mut m = m0.clone();
            set(&g, &mut m, "p", pv);
            set(&g, &mut m, "q", qv);
            assert_eq!(is_stable(&g, &p, &d, &m), expect, "p={pv} q={qv}");
        }
    }

    #[test]
    fn guarded_pq_fixpoint_that_is_not_stable() {
        // Paper §3: p ← p, ¬q ; q ← q, ¬p. {p=T, q=F} is a fixpoint but
        // not stable; the unique stable model is all-false.
        let (g, p, d, m0) = instance("p :- p, not q.\nq :- q, not p.", "");
        let mut m = m0.clone();
        set(&g, &mut m, "p", true);
        set(&g, &mut m, "q", false);
        assert!(super::super::fixpoint::is_fixpoint(&g, &d, &m));
        assert!(!is_stable(&g, &p, &d, &m));

        let mut m = m0;
        set(&g, &mut m, "p", false);
        set(&g, &mut m, "q", false);
        assert!(is_stable(&g, &p, &d, &m));
    }

    #[test]
    fn three_rules_example_has_three_stable_models() {
        // Paper §3: p1 ← ¬p2, ¬p3 ; p2 ← ¬p1, ¬p3 ; p3 ← ¬p1, ¬p2.
        let (g, p, d, m0) = instance(
            "p1 :- not p2, not p3.\np2 :- not p1, not p3.\np3 :- not p1, not p2.",
            "",
        );
        let mut stable_count = 0;
        for bits in 0u8..8 {
            let mut m = m0.clone();
            set(&g, &mut m, "p1", bits & 1 != 0);
            set(&g, &mut m, "p2", bits & 2 != 0);
            set(&g, &mut m, "p3", bits & 4 != 0);
            if is_stable(&g, &p, &d, &m) {
                stable_count += 1;
                // Each stable model has exactly one true proposition.
                assert_eq!(m.true_count(), 1);
            }
        }
        assert_eq!(stable_count, 3);
    }

    #[test]
    fn delta_idb_facts_need_no_rule_support() {
        // win(b) ∈ Δ: stable models keep it by Δ-membership.
        let (g, p, d, m0) = instance("p(X) :- e(X), not q(X).", "e(a).\nq(a).");
        // Unique stable model: q(a)=T (Δ), p(a)=F.
        let mut m = m0;
        let pa = g
            .atoms()
            .id_of(&GroundAtom::from_texts("p", &["a"]))
            .unwrap();
        m.set(pa, TruthValue::False);
        assert!(m.is_total());
        assert!(is_stable(&g, &p, &d, &m));
    }

    #[test]
    fn partial_model_is_not_stable() {
        let (g, p, d, m0) = instance("p :- not q.\nq :- not p.", "");
        assert!(!is_stable(&g, &p, &d, &m0));
    }

    #[test]
    fn stable_models_are_fixpoints_exhaustively() {
        let (g, p, d, m0) = instance("a :- not b.\nb :- not a.\nc :- a, not d.\nd :- not c.", "");
        let names = ["a", "b", "c", "d"];
        for bits in 0u8..16 {
            let mut m = m0.clone();
            for (i, n) in names.iter().enumerate() {
                set(&g, &mut m, n, bits & (1 << i) != 0);
            }
            assert!(stable_implies_fixpoint(&g, &p, &d, &m), "bits={bits:04b}");
        }
    }
}
