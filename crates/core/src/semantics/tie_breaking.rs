//! The tie-breaking interpreters (paper, Section 3).
//!
//! **Algorithm Pure Tie-Breaking:**
//!
//! ```text
//! M := M0(Δ); G := G(Π, Δ); (M, G) := close(M, G);
//! while there is a tie T in G with no incoming edges do:
//!     let (K, L) be the partition of T as in Lemma 1 with L nonempty;
//!     for each atom a ∈ K set M(a) := true;
//!     for each atom a ∈ L set M(a) := false;
//!     (M, G) := close(M, G)
//! ```
//!
//! **Algorithm Well-Founded Tie-Breaking** interleaves the well-founded
//! unfounded-set step, which takes priority; a tie may only be broken when
//! no nonempty unfounded set exists. (The paper's printed listing assigns
//! both branches over `a ∈ K` — an evident typo; we implement K-true /
//! L-false as in the pure version and the proofs of Lemmas 2–3.)
//!
//! Both algorithms are *nondeterministic*: when both sides of a tie are
//! nonempty, either may play the role of K. The choice is delegated to a
//! [`TiePolicy`]. When one side is empty, the paper's minimalist
//! convention is followed: all atoms of the tie become false.

use datalog_ast::{Database, Program};
use datalog_ground::{AtomId, Closer, GroundGraph, PartialModel, TruthValue};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use signed_graph::{tie, Sccs};

use super::{EvalMode, EvalOptions, InterpreterRun, RunStats, SemanticsError};

/// What the policy sees when a tie with two nonempty sides must be broken.
///
/// "Root side" is the side containing the spanning-tree root of the
/// Lemma 1 partition (the paper's K, before the arbitrary renaming).
#[derive(Debug)]
pub struct TieView<'a> {
    /// Sequence number of this tie within the run (0-based).
    pub index: usize,
    /// Atoms on the root side.
    pub root_side: &'a [AtomId],
    /// Atoms on the other side.
    pub other_side: &'a [AtomId],
}

/// A tie-breaking choice strategy.
pub trait TiePolicy {
    /// Returns `true` to make the root side true (and the other false), or
    /// `false` for the opposite orientation.
    fn choose_root_side_true(&mut self, view: &TieView<'_>) -> bool;
}

/// Always makes the root side true.
#[derive(Clone, Copy, Debug, Default)]
pub struct RootTruePolicy;

impl TiePolicy for RootTruePolicy {
    fn choose_root_side_true(&mut self, _view: &TieView<'_>) -> bool {
        true
    }
}

/// Always makes the root side false.
#[derive(Clone, Copy, Debug, Default)]
pub struct RootFalsePolicy;

impl TiePolicy for RootFalsePolicy {
    fn choose_root_side_true(&mut self, _view: &TieView<'_>) -> bool {
        false
    }
}

/// Flips a seeded coin per tie (reproducible nondeterminism).
#[derive(Clone, Debug)]
pub struct RandomPolicy {
    rng: SmallRng,
}

impl RandomPolicy {
    /// A policy seeded with `seed`.
    pub fn seeded(seed: u64) -> Self {
        RandomPolicy {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl TiePolicy for RandomPolicy {
    fn choose_root_side_true(&mut self, _view: &TieView<'_>) -> bool {
        self.rng.gen::<bool>()
    }
}

/// Plays back a fixed script of choices (then a default) — used to
/// exhaustively explore all tie-breaking outcomes of small programs.
#[derive(Clone, Debug)]
pub struct ScriptedPolicy {
    script: Vec<bool>,
    default: bool,
    at: usize,
}

impl ScriptedPolicy {
    /// A policy that answers `script[i]` for the i-th tie, then `default`.
    pub fn new(script: Vec<bool>, default: bool) -> Self {
        ScriptedPolicy {
            script,
            default,
            at: 0,
        }
    }

    /// How many scripted answers were consumed.
    pub fn consumed(&self) -> usize {
        self.at
    }
}

impl TiePolicy for ScriptedPolicy {
    fn choose_root_side_true(&mut self, _view: &TieView<'_>) -> bool {
        let choice = self.script.get(self.at).copied().unwrap_or(self.default);
        self.at += 1;
        choice
    }
}

/// Runs **Algorithm Pure Tie-Breaking**.
///
/// # Errors
///
/// [`SemanticsError::Conflict`] cannot arise from the algorithm's own
/// choices (Lemma 2) and indicates substrate misuse.
pub fn pure_tie_breaking<P: TiePolicy>(
    graph: &GroundGraph,
    program: &Program,
    database: &Database,
    policy: &mut P,
) -> Result<InterpreterRun, SemanticsError> {
    pure_tie_breaking_with(graph, program, database, policy, &EvalOptions::default())
}

/// [`pure_tie_breaking`] with explicit [`EvalOptions`] (evaluation mode
/// and stats detail).
///
/// # Errors
///
/// As for [`pure_tie_breaking`].
pub fn pure_tie_breaking_with<P: TiePolicy>(
    graph: &GroundGraph,
    program: &Program,
    database: &Database,
    policy: &mut P,
    options: &EvalOptions,
) -> Result<InterpreterRun, SemanticsError> {
    match options.mode {
        EvalMode::Global => tie_breaking_loop(
            graph,
            program,
            database,
            policy,
            false,
            options.detailed_stats,
        ),
        EvalMode::Stratified => super::scc_stratified::run_stratified(
            graph,
            program,
            database,
            Some(policy),
            false,
            options.detailed_stats,
        ),
    }
}

/// Runs **Algorithm Well-Founded Tie-Breaking** (unfounded sets take
/// priority over tie-breaking).
///
/// # Errors
///
/// As for [`pure_tie_breaking`].
pub fn well_founded_tie_breaking<P: TiePolicy>(
    graph: &GroundGraph,
    program: &Program,
    database: &Database,
    policy: &mut P,
) -> Result<InterpreterRun, SemanticsError> {
    well_founded_tie_breaking_with(graph, program, database, policy, &EvalOptions::default())
}

/// [`well_founded_tie_breaking`] with explicit [`EvalOptions`]
/// (evaluation mode and stats detail).
///
/// When [`EvalOptions::certified_total`] is set (a stratification-grade
/// certificate from the analyzer), the policy is never consulted: the
/// well-founded model is total on its own, so this dispatches straight to
/// [`well_founded_with`](super::well_founded::well_founded_with) — same
/// model, same stats, none of the tie-side bookkeeping.
///
/// # Errors
///
/// As for [`well_founded_tie_breaking`].
pub fn well_founded_tie_breaking_with<P: TiePolicy>(
    graph: &GroundGraph,
    program: &Program,
    database: &Database,
    policy: &mut P,
    options: &EvalOptions,
) -> Result<InterpreterRun, SemanticsError> {
    if options.certified_total {
        return super::well_founded::well_founded_with(graph, program, database, options);
    }
    match options.mode {
        EvalMode::Global => tie_breaking_loop(
            graph,
            program,
            database,
            policy,
            true,
            options.detailed_stats,
        ),
        EvalMode::Stratified => super::scc_stratified::run_stratified(
            graph,
            program,
            database,
            Some(policy),
            true,
            options.detailed_stats,
        ),
    }
}

fn tie_breaking_loop<P: TiePolicy>(
    graph: &GroundGraph,
    program: &Program,
    database: &Database,
    policy: &mut P,
    use_unfounded: bool,
    detailed: bool,
) -> Result<InterpreterRun, SemanticsError> {
    let mut model = PartialModel::initial(program, database, graph.atoms());
    let mut closer = Closer::new(graph);
    let mut stats = RunStats::default();

    closer.bootstrap(&model);
    closer.run(&mut model)?;
    stats.close_rounds += 1;

    loop {
        if use_unfounded {
            let unfounded = closer.largest_unfounded_set();
            if !unfounded.is_empty() {
                stats.unfounded_rounds += 1;
                for atom in unfounded {
                    closer.define(&mut model, atom, TruthValue::False);
                }
                closer.run(&mut model)?;
                stats.close_rounds += 1;
                continue;
            }
        }

        // Look for a bottom tie in the remaining graph.
        let rem = closer.remaining_digraph();
        if rem.digraph.node_count() == 0 {
            break;
        }
        let sccs = Sccs::compute(&rem.digraph);
        let mut broke = false;
        for c in sccs.bottom_components(&rem.digraph) {
            let Ok(partition) = tie::check_tie(&rem.digraph, sccs.members(c)) else {
                continue; // odd component: not a tie
            };
            let root_side: Vec<AtomId> =
                partition.k_side().filter_map(|n| rem.as_atom(n)).collect();
            let other_side: Vec<AtomId> =
                partition.l_side().filter_map(|n| rem.as_atom(n)).collect();

            break_tie(
                &mut closer,
                &mut model,
                policy,
                &root_side,
                &other_side,
                &mut stats,
                detailed,
            )?;
            broke = true;
            break;
        }
        if !broke {
            break; // no bottom tie: the interpreter is stuck
        }
    }

    let total = model.is_total();
    Ok(InterpreterRun {
        model,
        total,
        stats,
    })
}

/// The shared tie-orientation convention of the global and stratified
/// loops (paper, Section 3): name the sides so L is nonempty and, when
/// one side has no atoms, make everything false (minimalist choice);
/// with both sides nonempty the policy decides. Assignments are
/// propagated through `closer` and the tie is recorded in `stats`.
///
/// Keeping this in one place is what the Global ≡ Stratified
/// differential suites rely on: a convention change cannot reach one
/// loop without the other.
pub(crate) fn break_tie(
    closer: &mut Closer<'_>,
    model: &mut PartialModel,
    policy: &mut dyn TiePolicy,
    root_side: &[AtomId],
    other_side: &[AtomId],
    stats: &mut RunStats,
    detailed: bool,
) -> Result<(), SemanticsError> {
    let one_sided = root_side.is_empty() || other_side.is_empty();
    let root_true = if one_sided {
        false // all atoms false, whichever side holds them
    } else {
        policy.choose_root_side_true(&TieView {
            index: stats.ties_broken,
            root_side,
            other_side,
        })
    };

    for &a in root_side {
        closer.define(model, a, TruthValue::from_bool(root_true));
    }
    let other_value = if one_sided {
        TruthValue::False
    } else {
        TruthValue::from_bool(!root_true)
    };
    for &a in other_side {
        closer.define(model, a, other_value);
    }

    stats.record_tie(root_side.len(), other_side.len(), root_true, detailed);
    closer.run(model)?;
    stats.close_rounds += 1;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_database, parse_program, GroundAtom};
    use datalog_ground::{ground, GroundConfig};

    fn setup(src: &str, db: &str) -> (GroundGraph, Program, Database) {
        let p = parse_program(src).unwrap();
        let d = parse_database(db).unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        (g, p, d)
    }

    fn val(g: &GroundGraph, r: &InterpreterRun, pred: &str) -> TruthValue {
        r.model
            .get(g.atoms().id_of(&GroundAtom::from_texts(pred, &[])).unwrap())
    }

    #[test]
    fn archetypal_pq_cycle_both_orientations() {
        // p ← ¬q ; q ← ¬p — the paper's archetypal structurally total but
        // unstratifiable program. Two fixpoints; the policy picks.
        let (g, p, d) = setup("p :- not q.\nq :- not p.", "");
        let mut pol = RootTruePolicy;
        let r1 = well_founded_tie_breaking(&g, &p, &d, &mut pol).unwrap();
        assert!(r1.total);
        let mut pol = RootFalsePolicy;
        let r2 = well_founded_tie_breaking(&g, &p, &d, &mut pol).unwrap();
        assert!(r2.total);
        // The two runs produce opposite orientations.
        let p1 = val(&g, &r1, "p");
        let p2 = val(&g, &r2, "p");
        assert_ne!(p1, p2);
        let q1 = val(&g, &r1, "q");
        assert_ne!(p1, q1);
    }

    #[test]
    fn pure_vs_wf_on_pq_guarded_cycle() {
        // Paper §3 example: p ← p, ¬q ; q ← q, ¬p.
        // Pure: breaks the tie, one true one false (a fixpoint, not stable).
        // WF-TB: {p, q} is unfounded ⇒ both false (the stable model).
        let (g, p, d) = setup("p :- p, not q.\nq :- q, not p.", "");

        let mut pol = RootTruePolicy;
        let pure = pure_tie_breaking(&g, &p, &d, &mut pol).unwrap();
        assert!(pure.total);
        let pv = val(&g, &pure, "p");
        let qv = val(&g, &pure, "q");
        assert_ne!(pv, qv, "pure TB makes exactly one of p, q true");
        assert_eq!(pure.stats.ties_broken, 1);

        let mut pol = RootTruePolicy;
        let wf = well_founded_tie_breaking(&g, &p, &d, &mut pol).unwrap();
        assert!(wf.total);
        assert_eq!(val(&g, &wf, "p"), TruthValue::False);
        assert_eq!(val(&g, &wf, "q"), TruthValue::False);
        assert_eq!(wf.stats.ties_broken, 0);
        assert_eq!(wf.stats.unfounded_rounds, 1);
    }

    #[test]
    fn odd_cycle_sticks_for_both() {
        // p ← ¬q ; q ← ¬r ; r ← ¬p: odd cycle, no ties, no unfounded sets.
        let (g, p, d) = setup("p :- not q.\nq :- not r.\nr :- not p.", "");
        let mut pol = RootTruePolicy;
        let pure = pure_tie_breaking(&g, &p, &d, &mut pol).unwrap();
        assert!(!pure.total);
        assert_eq!(pure.stats.ties_broken, 0);
        let mut pol = RootTruePolicy;
        let wf = well_founded_tie_breaking(&g, &p, &d, &mut pol).unwrap();
        assert!(!wf.total);
        assert_eq!(wf.model.defined_count(), 0);
    }

    #[test]
    fn three_rules_example_not_assigned() {
        // Paper §3: p1 ← ¬p2, ¬p3 ; p2 ← ¬p1, ¬p3 ; p3 ← ¬p1, ¬p2.
        // One SCC, not a tie (3 negative arcs on a cycle); no nonempty
        // unfounded set. WF-TB assigns nothing, though stable models exist.
        let (g, p, d) = setup(
            "p1 :- not p2, not p3.\np2 :- not p1, not p3.\np3 :- not p1, not p2.",
            "",
        );
        let mut pol = RootTruePolicy;
        let wf = well_founded_tie_breaking(&g, &p, &d, &mut pol).unwrap();
        assert!(!wf.total);
        assert_eq!(wf.model.defined_count(), 0);
    }

    #[test]
    fn scripted_policy_explores_both_branches() {
        let (g, p, d) = setup("p :- not q.\nq :- not p.", "");
        let mut seen = std::collections::HashSet::new();
        for &choice in &[false, true] {
            let mut pol = ScriptedPolicy::new(vec![choice], false);
            let r = well_founded_tie_breaking(&g, &p, &d, &mut pol).unwrap();
            assert!(r.total);
            assert_eq!(pol.consumed(), 1);
            seen.insert(format!("{:?}", val(&g, &r, "p")));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn random_policy_is_reproducible() {
        let (g, p, d) = setup("a :- not b.\nb :- not a.\nc :- not d.\nd :- not c.", "");
        let run = |seed: u64| {
            let mut pol = RandomPolicy::seeded(seed);
            let r = well_founded_tie_breaking(&g, &p, &d, &mut pol).unwrap();
            assert!(r.total);
            r.model
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn locally_stratified_perfect_model() {
        // even(0); odd(s(0))... encoded with succ facts:
        // even(X) :- zero(X).  even(Y) :- succ(X, Y), odd(X).
        // odd(Y) :- succ(X, Y), not odd(X), not zero(Y)... keep simple:
        // odd(Y) :- succ(X, Y), even(X).
        // Positive and stratified; both interpreters total.
        let (g, p, d) = setup(
            "even(X) :- zero(X).\neven(Y) :- succ(X, Y), odd(X).\nodd(Y) :- succ(X, Y), even(X).",
            "zero(0).\nsucc(0, 1).\nsucc(1, 2).\nsucc(2, 3).",
        );
        let mut pol = RootTruePolicy;
        let r = well_founded_tie_breaking(&g, &p, &d, &mut pol).unwrap();
        assert!(r.total);
        let gv = |pred: &str, c: &str| {
            r.model.get(
                g.atoms()
                    .id_of(&GroundAtom::from_texts(pred, &[c]))
                    .unwrap(),
            )
        };
        assert_eq!(gv("even", "0"), TruthValue::True);
        assert_eq!(gv("odd", "1"), TruthValue::True);
        assert_eq!(gv("even", "2"), TruthValue::True);
        assert_eq!(gv("odd", "3"), TruthValue::True);
        assert_eq!(gv("even", "1"), TruthValue::False);
    }

    #[test]
    fn certified_fast_path_is_bit_identical_on_stratified_programs() {
        // A stratified program: wf-tb never consults the policy, so the
        // certified fast path must reproduce the run exactly — model,
        // totality, and every stats counter.
        let (g, p, d) = setup(
            "reach(Y) :- start(X), edge(X, Y).\nreach(Y) :- reach(X), edge(X, Y).\n\
             blocked(X) :- node(X), not reach(X).",
            "start(a).\nedge(a, b).\nedge(b, c).\nnode(a).\nnode(b).\nnode(c).\nnode(d).",
        );
        for mode in [EvalMode::Global, EvalMode::Stratified] {
            let base_opts = EvalOptions::with_mode(mode);
            let fast_opts = EvalOptions {
                certified_total: true,
                ..base_opts
            };
            let mut pol = RootTruePolicy;
            let base = well_founded_tie_breaking_with(&g, &p, &d, &mut pol, &base_opts).unwrap();
            let mut pol = RootTruePolicy;
            let fast = well_founded_tie_breaking_with(&g, &p, &d, &mut pol, &fast_opts).unwrap();
            assert!(base.total && fast.total);
            assert_eq!(base.model, fast.model, "mode {mode:?}");
            assert_eq!(base.stats, fast.stats, "mode {mode:?}");
        }
    }

    #[test]
    fn uncertified_flag_on_tied_program_degrades_to_plain_wf() {
        // Mis-certifying a program with a genuine tie must not invent
        // answers: the fast path returns the (partial) wf model instead
        // of consulting the policy.
        let (g, p, d) = setup("p :- not q.\nq :- not p.", "");
        let opts = EvalOptions {
            certified_total: true,
            ..EvalOptions::default()
        };
        let mut pol = RootTruePolicy;
        let r = well_founded_tie_breaking_with(&g, &p, &d, &mut pol, &opts).unwrap();
        assert!(!r.total);
        assert_eq!(r.stats.ties_broken, 0);
    }

    #[test]
    fn win_move_draw_cycle_resolved_by_tie_breaking() {
        // The drawn 2-cycle a ↔ b that the well-founded semantics leaves
        // undefined: tie-breaking decides it (either orientation).
        let (g, p, d) = setup(
            "win(X) :- move(X, Y), not win(Y).",
            "move(a, b).\nmove(b, a).",
        );
        let mut pol = RootTruePolicy;
        let r = well_founded_tie_breaking(&g, &p, &d, &mut pol).unwrap();
        assert!(r.total);
        let wa = r.model.get(
            g.atoms()
                .id_of(&GroundAtom::from_texts("win", &["a"]))
                .unwrap(),
        );
        let wb = r.model.get(
            g.atoms()
                .id_of(&GroundAtom::from_texts("win", &["b"]))
                .unwrap(),
        );
        // Exactly one of the two positions wins.
        assert_ne!(wa, wb);
    }
}
