//! Exhaustive enumeration of tie-breaking outcomes.
//!
//! The tie-breaking interpreters are nondeterministic: each tie with two
//! nonempty sides is a binary choice. This module explores the complete
//! choice tree (deduplicating final models), which makes the paper's
//! meta-claims checkable:
//!
//! * Lemma 2 — every outcome (pure or well-founded) that is total is a
//!   fixpoint;
//! * Lemma 3 — every total outcome of the well-founded flavour is a
//!   **stable** model;
//! * the converse fails: the §3 three-rule example has stable models but
//!   the interpreter reaches none of them.

use datalog_ast::{Database, Program};
use datalog_ground::{GroundGraph, PartialModel};

use super::tie_breaking::{pure_tie_breaking_with, well_founded_tie_breaking_with, ScriptedPolicy};
use super::{EvalOptions, SemanticsError};

/// The set of distinct outcomes of one interpreter over all choice
/// scripts.
#[derive(Clone, Debug)]
pub struct OutcomeSet {
    /// Distinct final models (total or partial), in discovery order.
    pub models: Vec<PartialModel>,
    /// Number of interpreter runs performed.
    pub runs: usize,
    /// `true` if the exploration stopped at the run budget.
    pub truncated: bool,
}

impl OutcomeSet {
    /// The outcomes that are total models.
    pub fn total_models(&self) -> impl Iterator<Item = &PartialModel> {
        self.models.iter().filter(|m| m.is_total())
    }
}

/// Explores every script of tie choices for the chosen interpreter
/// flavour, stopping after `max_runs` runs.
///
/// # Errors
///
/// Propagates interpreter errors ([`SemanticsError::Conflict`] cannot
/// occur for the paper's algorithms).
pub fn all_outcomes(
    graph: &GroundGraph,
    program: &Program,
    database: &Database,
    pure: bool,
    max_runs: usize,
) -> Result<OutcomeSet, SemanticsError> {
    all_outcomes_with(
        graph,
        program,
        database,
        pure,
        max_runs,
        &EvalOptions::default(),
    )
}

/// [`all_outcomes`] with explicit [`EvalOptions`] — used by the
/// differential suites to compare the outcome sets of the global and
/// SCC-stratified evaluation modes.
///
/// # Errors
///
/// As for [`all_outcomes`].
pub fn all_outcomes_with(
    graph: &GroundGraph,
    program: &Program,
    database: &Database,
    pure: bool,
    max_runs: usize,
    options: &EvalOptions,
) -> Result<OutcomeSet, SemanticsError> {
    explore_scripts(max_runs, |prefix| {
        let mut policy = ScriptedPolicy::new(prefix.to_vec(), false);
        let run = if pure {
            pure_tie_breaking_with(graph, program, database, &mut policy, options)?
        } else {
            well_founded_tie_breaking_with(graph, program, database, &mut policy, options)?
        };
        Ok((run.model, policy.consumed()))
    })
}

/// The tie-script choice-tree driver: depth-first over scripts, flipping
/// every default (`false`) answer exactly once, deduplicating final
/// models, stopping after `max_runs` runs.
///
/// `run_script` evaluates one script prefix and returns the final model
/// plus the number of choices the run consumed.
///
/// The session runtime's parallel enumerator
/// (`tiebreak_runtime::Solver::all_outcomes`) walks the **same choice
/// tree with the same branching rule** (every defaulted answer flipped
/// exactly once) but breadth-first, in worker-pool waves. An exhaustive
/// (untruncated) exploration therefore visits the identical script set
/// and run count and yields the identical outcome *set*; model
/// *discovery order* differs between the two drivers (DFS pops the
/// deepest flip first, the wave walk the shallowest), and under a
/// `max_runs` cut the explored subsets can differ too. Each driver is
/// individually deterministic — this one by construction, the wave walk
/// across all thread counts.
///
/// # Errors
///
/// Whatever `run_script` returns.
pub fn explore_scripts<F>(max_runs: usize, mut run_script: F) -> Result<OutcomeSet, SemanticsError>
where
    F: FnMut(&[bool]) -> Result<(PartialModel, usize), SemanticsError>,
{
    let mut models: Vec<PartialModel> = Vec::new();
    let mut stack: Vec<Vec<bool>> = vec![Vec::new()];
    let mut runs = 0;
    let mut truncated = false;

    while let Some(prefix) = stack.pop() {
        if runs >= max_runs {
            truncated = true;
            break;
        }
        runs += 1;
        let (model, consumed) = run_script(&prefix)?;

        // Branch: for every choice position answered by the default
        // (false), queue the script that flips it to true.
        for flip_at in prefix.len()..consumed {
            let mut next = prefix.clone();
            next.extend(std::iter::repeat_n(false, flip_at - prefix.len()));
            next.push(true);
            stack.push(next);
        }

        if !models.contains(&model) {
            models.push(model);
        }
    }

    Ok(OutcomeSet {
        models,
        runs,
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::fixpoint::is_fixpoint;
    use crate::semantics::stable::is_stable;
    use datalog_ast::{parse_database, parse_program};
    use datalog_ground::{ground, GroundConfig};

    fn outcomes(
        src: &str,
        db_src: &str,
        pure: bool,
    ) -> (GroundGraph, Program, Database, OutcomeSet) {
        let p = parse_program(src).unwrap();
        let d = parse_database(db_src).unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        let o = all_outcomes(&g, &p, &d, pure, 1_000).unwrap();
        (g, p, d, o)
    }

    #[test]
    fn pq_cycle_has_two_outcomes_both_stable() {
        let (g, p, d, o) = outcomes("p :- not q.\nq :- not p.", "", false);
        assert!(!o.truncated);
        assert_eq!(o.models.len(), 2);
        for m in &o.models {
            assert!(m.is_total());
            assert!(is_stable(&g, &p, &d, m));
        }
    }

    #[test]
    fn independent_ties_reach_all_orientations() {
        let (g, p, d, o) = outcomes(
            "a0 :- not b0.\nb0 :- not a0.\na1 :- not b1.\nb1 :- not a1.",
            "",
            false,
        );
        assert_eq!(o.models.len(), 4);
        assert!(o.models.iter().all(datalog_ground::PartialModel::is_total));
        for m in &o.models {
            assert!(is_stable(&g, &p, &d, m));
        }
    }

    #[test]
    fn pure_outcomes_are_fixpoints_not_necessarily_stable() {
        // Paper §3: pure TB on the guarded cycle reaches {p} and {q} —
        // fixpoints that are not stable.
        let (g, _p, d, o) = outcomes("p :- p, not q.\nq :- q, not p.", "", true);
        assert_eq!(o.models.len(), 2);
        for m in &o.models {
            assert!(m.is_total());
            assert!(is_fixpoint(&g, &d, m));
            assert_eq!(m.true_count(), 1);
        }
    }

    #[test]
    fn wf_flavour_on_guarded_cycle_has_single_stable_outcome() {
        let (g, p, d, o) = outcomes("p :- p, not q.\nq :- q, not p.", "", false);
        assert_eq!(o.models.len(), 1);
        assert!(is_stable(&g, &p, &d, &o.models[0]));
        assert_eq!(o.models[0].true_count(), 0);
    }

    #[test]
    fn converse_of_lemma_3_fails_on_three_rules() {
        // Stable models exist (three of them), but the interpreter makes
        // no choices at all and stops partial: zero total outcomes.
        let (_g, _p, _d, o) = outcomes(
            "p1 :- not p2, not p3.\np2 :- not p1, not p3.\np3 :- not p1, not p2.",
            "",
            false,
        );
        assert_eq!(o.models.len(), 1);
        assert!(!o.models[0].is_total());
        assert_eq!(o.total_models().count(), 0);
    }

    #[test]
    fn truncation_reports() {
        // 8 ties ⇒ 256 scripts; cap at 10 runs.
        let mut src = String::new();
        for i in 0..8 {
            src.push_str(&format!("a{i} :- not b{i}.\nb{i} :- not a{i}.\n"));
        }
        let p = parse_program(&src).unwrap();
        let d = Database::new();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        let o = all_outcomes(&g, &p, &d, false, 10).unwrap();
        assert!(o.truncated);
        assert_eq!(o.runs, 10);
    }
}
