//! The alternating-fixpoint characterization of the well-founded model
//! \[VRS\].
//!
//! A third, independent implementation of the well-founded semantics
//! (besides the paper's `close`/unfounded-set interpreter and the
//! stratified evaluator): Van Gelder's alternating fixpoint. With Γ(S)
//! the least model of the GL reduct relative to "exactly S is true":
//!
//! * Γ is antimonotone, so Γ∘Γ is monotone;
//! * iterating from below, `I₀ = ∅, I_{k+1} = Γ(Γ(I_k))` climbs to the
//!   set of **well-founded true** atoms;
//! * the interleaved overestimates `J_k = Γ(I_k)` descend to the set of
//!   *possibly true* atoms — their complement is the well-founded
//!   **false** set; the gap is the undefined residue.
//!
//! The property and corpus tests pin this implementation against the
//! worklist interpreter on random programs: two very different algorithms
//! must produce identical three-valued models.

use datalog_ast::{Database, Program};
use datalog_ground::{GroundGraph, PartialModel, TruthValue};

use super::reduct::reduct_least_model;
use super::{InterpreterRun, RunStats};

/// Γ(S): the least model of the reduct where exactly the atoms true in
/// `snapshot` count as true (everything else false).
fn gamma(graph: &GroundGraph, database: &Database, snapshot: &PartialModel) -> PartialModel {
    reduct_least_model(graph, database, snapshot)
}

/// Computes the well-founded model by the alternating fixpoint.
///
/// Returns the same three-valued model as
/// [`super::well_founded::well_founded`] (property-tested), with
/// `stats.close_rounds` counting Γ applications.
pub fn alternating_well_founded(
    graph: &GroundGraph,
    program: &Program,
    database: &Database,
) -> InterpreterRun {
    let n = graph.atom_count();
    let mut stats = RunStats::default();

    // Underestimate I: nothing true (beyond what Γ derives from Δ).
    // Overestimate J: everything possibly true.
    let mut under = PartialModel::undefined(n);
    for id in graph.atoms().ids() {
        under.set(id, TruthValue::False);
    }
    let mut over = PartialModel::undefined(n);
    for id in graph.atoms().ids() {
        over.set(id, TruthValue::True);
    }

    loop {
        // J := Γ(I) — what might still be true given the certain truths.
        let next_over = gamma(graph, database, &under);
        // I := Γ(J) — what is certainly true given the optimistic bound.
        let next_under = gamma(graph, database, &next_over);
        stats.close_rounds += 2;
        let stable = next_under == under && next_over == over;
        under = next_under;
        over = next_over;
        if stable {
            break;
        }
    }

    // Assemble the three-valued model: true = I, false = complement of J,
    // undefined = the gap.
    let mut model = PartialModel::undefined(n);
    for id in graph.atoms().ids() {
        match (under.get(id), over.get(id)) {
            (TruthValue::True, _) => model.set(id, TruthValue::True),
            (_, TruthValue::False) => model.set(id, TruthValue::False),
            _ => {}
        }
    }
    // EDB atoms and Δ facts: fix them from M₀ (Γ never derives EDB atoms
    // outside Δ, and Δ atoms are always in I, so this only reasserts the
    // initial valuation).
    let m0 = PartialModel::initial(program, database, graph.atoms());
    for (id, v) in m0.defined() {
        model.set(id, v);
    }

    let total = model.is_total();
    InterpreterRun {
        model,
        total,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::well_founded::well_founded;
    use datalog_ast::{parse_database, parse_program};
    use datalog_ground::{ground, GroundConfig};

    fn agree(src: &str, db_src: &str) {
        let p = parse_program(src).unwrap();
        let d = parse_database(db_src).unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        let worklist = well_founded(&g, &p, &d).unwrap();
        let alternating = alternating_well_founded(&g, &p, &d);
        assert_eq!(
            worklist.model, alternating.model,
            "programs:\n{src}\nΔ: {db_src}"
        );
    }

    #[test]
    fn agrees_on_the_paper_examples() {
        agree("p :- not q.\nq :- not p.", "");
        agree("p :- p, not q.\nq :- q, not p.", "");
        agree(
            "p1 :- not p2, not p3.\np2 :- not p1, not p3.\np3 :- not p1, not p2.",
            "",
        );
        agree("p(a) :- not p(X), e(b).", "e(b).");
        agree("p :- not p.", "");
    }

    #[test]
    fn agrees_on_win_move_boards() {
        agree(
            "win(X) :- move(X, Y), not win(Y).",
            "move(a, b).\nmove(b, a).\nmove(c, a).",
        );
        agree(
            "win(X) :- move(X, Y), not win(Y).",
            "move(a, b).\nmove(b, c).",
        );
    }

    #[test]
    fn agrees_on_stratified_programs() {
        agree(
            "reach(X) :- start(X).\nreach(Y) :- reach(X), edge(X, Y).\n\
             blocked(X) :- node(X), not reach(X).",
            "start(a).\nedge(a, b).\nnode(a).\nnode(b).\nnode(c).",
        );
    }

    #[test]
    fn gamma_round_count_is_reported() {
        let p = parse_program("p :- not q.\nq :- not p.").unwrap();
        let d = parse_database("").unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        let run = alternating_well_founded(&g, &p, &d);
        assert!(!run.total);
        assert!(run.stats.close_rounds >= 2);
    }
}
