//! The interpreters and model-theoretic checkers.

pub mod alternating;
pub mod enumerate;
pub mod fixpoint;
pub mod outcomes;
pub mod perfect;
pub mod reduct;
pub mod seminaive;
pub mod stable;
pub mod stratified;
pub mod tie_breaking;
pub mod well_founded;

use std::fmt;

use datalog_ground::{AtomId, CloseConflict, GroundError, PartialModel};

pub use tie_breaking::{
    pure_tie_breaking, well_founded_tie_breaking, RandomPolicy, RootFalsePolicy, RootTruePolicy,
    ScriptedPolicy, TiePolicy, TieView,
};
pub use well_founded::well_founded;

/// Statistics collected by an interpreter run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Number of `close` fixpoint rounds (external-assignment batches).
    pub close_rounds: usize,
    /// Number of nonempty unfounded sets falsified.
    pub unfounded_rounds: usize,
    /// Number of ties broken.
    pub ties_broken: usize,
    /// Per broken tie: `(|K|, |L|, root_side_true)` where K is the side
    /// containing the spanning-tree root.
    pub tie_log: Vec<(usize, usize, bool)>,
}

/// The outcome of an interpreter.
#[derive(Clone, Debug)]
pub struct InterpreterRun {
    /// The computed (possibly partial) model.
    pub model: PartialModel,
    /// `true` iff the model is total (every ground atom valued).
    pub total: bool,
    /// Run statistics.
    pub stats: RunStats,
}

impl InterpreterRun {
    /// The atoms left undefined (empty iff total).
    pub fn residue(&self) -> Vec<AtomId> {
        self.model.undefined_atoms().collect()
    }
}

/// Errors from the high-level evaluation paths.
#[derive(Clone, Debug)]
pub enum SemanticsError {
    /// Grounding failed (budget or signature).
    Ground(GroundError),
    /// Propagation derived a contradiction — indicates misuse of the
    /// low-level API (the paper's algorithms never conflict).
    Conflict(CloseConflict),
    /// The requested semantics does not apply to this program (e.g.
    /// stratified evaluation of an unstratifiable program).
    NotApplicable(String),
}

impl fmt::Display for SemanticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemanticsError::Ground(e) => e.fmt(f),
            SemanticsError::Conflict(e) => e.fmt(f),
            SemanticsError::NotApplicable(msg) => write!(f, "semantics not applicable: {msg}"),
        }
    }
}

impl std::error::Error for SemanticsError {}

impl From<GroundError> for SemanticsError {
    fn from(e: GroundError) -> Self {
        SemanticsError::Ground(e)
    }
}

impl From<CloseConflict> for SemanticsError {
    fn from(e: CloseConflict) -> Self {
        SemanticsError::Conflict(e)
    }
}
