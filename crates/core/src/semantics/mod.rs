//! The interpreters and model-theoretic checkers.

pub mod alternating;
pub mod enumerate;
pub mod fixpoint;
pub mod outcomes;
pub mod perfect;
pub mod reduct;
pub mod scc_stratified;
pub mod seminaive;
pub mod stable;
pub mod stratified;
pub mod tie_breaking;
pub mod well_founded;

use std::fmt;

use datalog_ground::{AtomId, CloseConflict, GroundError, PartialModel};

pub use scc_stratified::{
    process_components, pure_tie_breaking_stratified, well_founded_stratified,
    well_founded_tie_breaking_stratified, ComponentPass,
};
pub use tie_breaking::{
    pure_tie_breaking, pure_tie_breaking_with, well_founded_tie_breaking,
    well_founded_tie_breaking_with, RandomPolicy, RootFalsePolicy, RootTruePolicy, ScriptedPolicy,
    TiePolicy, TieView,
};
pub use well_founded::{well_founded, well_founded_with};

/// How an interpreter traverses the residual graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvalMode {
    /// The paper-literal loop: every unfounded-set and tie query scans
    /// (and clones) the whole remaining graph.
    #[default]
    Global,
    /// SCC-stratified evaluation: condense the residual graph once and
    /// process components in topological order with component-local
    /// unfounded sets and tie breaks. Same models and outcome sets as
    /// [`EvalMode::Global`] (see the differential suites), but linear
    /// instead of quadratic on alternation-heavy instances.
    Stratified,
}

/// Per-run evaluation knobs shared by the interpreters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalOptions {
    /// Traversal strategy (default [`EvalMode::Global`]).
    pub mode: EvalMode,
    /// Record per-event details in [`RunStats`] (`tie_log`,
    /// `component_rounds`). Off by default: large enumerations would
    /// otherwise grow the logs without bound; the scalar counters
    /// (`ties_broken`, `components_processed`, …) are always kept.
    pub detailed_stats: bool,
    /// The program carries a stratification-grade totality certificate
    /// (see the `datalog-analyze` crate): the well-founded model is total
    /// and unique, so no tie can ever fire. When set, the wf-tb
    /// interpreters skip the tie-policy machinery entirely and run the
    /// plain well-founded path — bit-identical results, none of the
    /// tie-bookkeeping cost. Certificates are the analyzer's to issue;
    /// setting this on an uncertified program degrades wf-tb back to
    /// plain wf (ties would surface as a partial model, not be broken).
    pub certified_total: bool,
}

impl EvalOptions {
    /// Options selecting `mode` with default details.
    pub fn with_mode(mode: EvalMode) -> Self {
        EvalOptions {
            mode,
            ..EvalOptions::default()
        }
    }
}

/// Statistics collected by an interpreter run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Number of `close` fixpoint rounds (external-assignment batches).
    pub close_rounds: usize,
    /// Number of nonempty unfounded sets falsified.
    pub unfounded_rounds: usize,
    /// Number of ties broken.
    pub ties_broken: usize,
    /// Residual components visited ([`EvalMode::Stratified`] only; 0 for
    /// global runs).
    pub components_processed: usize,
    /// Largest number of unfounded/tie rounds any single component needed
    /// ([`EvalMode::Stratified`] only).
    pub max_component_rounds: usize,
    /// Per-component round counts in processing order. Recorded only when
    /// [`EvalOptions::detailed_stats`] is set.
    pub component_rounds: Vec<usize>,
    /// Per broken tie: `(|K|, |L|, root_side_true)` where K is the side
    /// containing the spanning-tree root. Recorded only when
    /// [`EvalOptions::detailed_stats`] is set; `ties_broken` always
    /// carries the count.
    pub tie_log: Vec<(usize, usize, bool)>,
    /// Branches served from the session solver's per-branch well-founded
    /// cache instead of being re-evaluated (incremental sessions only;
    /// always 0 on the one-shot paths). The cached branches' own
    /// counters are still merged in, so every *other* field is identical
    /// whether a branch was recomputed or replayed — this field is the
    /// one serving-dependent statistic.
    pub branches_reused: usize,
}

impl RunStats {
    /// Records one broken tie (the log entry only when `detailed`).
    pub(crate) fn record_tie(&mut self, k: usize, l: usize, root_true: bool, detailed: bool) {
        if detailed {
            self.tie_log.push((k, l, root_true));
        }
        self.ties_broken += 1;
    }

    /// Records one finished component (the round entry only when
    /// `detailed`).
    pub(crate) fn record_component(&mut self, rounds: usize, detailed: bool) {
        self.components_processed += 1;
        self.max_component_rounds = self.max_component_rounds.max(rounds);
        if detailed {
            self.component_rounds.push(rounds);
        }
    }

    /// Merges the stats of another (partial) run into `self`: counters
    /// add, `max_component_rounds` maxes, detailed logs append.
    ///
    /// This is how the parallel runtime aggregates per-worker partials:
    /// each branch task accumulates into a private `RunStats` (no shared
    /// counter, no lock on the hot path) and the scheduler merges the
    /// partials **at join, in deterministic branch order**, so the
    /// aggregate — including the `tie_log` / `component_rounds` sequences
    /// — is bit-identical across thread counts and schedules.
    pub fn merge(&mut self, other: &RunStats) {
        self.close_rounds += other.close_rounds;
        self.unfounded_rounds += other.unfounded_rounds;
        self.ties_broken += other.ties_broken;
        self.components_processed += other.components_processed;
        self.max_component_rounds = self.max_component_rounds.max(other.max_component_rounds);
        self.component_rounds
            .extend_from_slice(&other.component_rounds);
        self.tie_log.extend_from_slice(&other.tie_log);
        self.branches_reused += other.branches_reused;
    }
}

/// The outcome of an interpreter.
#[derive(Clone, Debug)]
pub struct InterpreterRun {
    /// The computed (possibly partial) model.
    pub model: PartialModel,
    /// `true` iff the model is total (every ground atom valued).
    pub total: bool,
    /// Run statistics.
    pub stats: RunStats,
}

impl InterpreterRun {
    /// The atoms left undefined (empty iff total).
    pub fn residue(&self) -> Vec<AtomId> {
        self.model.undefined_atoms().collect()
    }
}

/// Errors from the high-level evaluation paths.
#[derive(Clone, Debug)]
pub enum SemanticsError {
    /// Grounding failed (budget or signature).
    Ground(GroundError),
    /// Propagation derived a contradiction — indicates misuse of the
    /// low-level API (the paper's algorithms never conflict).
    Conflict(CloseConflict),
    /// The requested semantics does not apply to this program (e.g.
    /// stratified evaluation of an unstratifiable program).
    NotApplicable(String),
    /// Static analysis rejected the program before evaluation (error-level
    /// lints under [`crate::engine::EngineConfig`] analysis / server
    /// strict mode). The message lists the offending lints.
    Rejected(String),
}

impl fmt::Display for SemanticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemanticsError::Ground(e) => e.fmt(f),
            SemanticsError::Conflict(e) => e.fmt(f),
            SemanticsError::NotApplicable(msg) => write!(f, "semantics not applicable: {msg}"),
            SemanticsError::Rejected(msg) => write!(f, "program rejected by analysis: {msg}"),
        }
    }
}

impl std::error::Error for SemanticsError {}

impl From<GroundError> for SemanticsError {
    fn from(e: GroundError) -> Self {
        SemanticsError::Ground(e)
    }
}

impl From<CloseConflict> for SemanticsError {
    fn from(e: CloseConflict) -> Self {
        SemanticsError::Conflict(e)
    }
}
