//! Exhaustive enumeration of fixpoints and stable models.
//!
//! Telling whether a fixpoint (or stable model) exists is NP-hard already
//! for propositional programs \[KP\]; this module is the exact oracle the
//! experiments use on *small* instances: a DPLL-style backtracking search
//! whose unit propagation is precisely the forced part of the supported-
//! model conditions:
//!
//! * a rule whose body became all-true forces its head true;
//! * an atom that lost its last potentially-true rule and is not in Δ is
//!   forced false (if undefined) or contradicts (if true).
//!
//! Totality is the search's hard budget: instances with more than
//! [`EnumerateConfig::max_branch_atoms`] undefined atoms after the initial
//! propagation are rejected rather than silently left running.

use datalog_ast::{Database, Program};
use datalog_ground::{AtomId, GroundGraph, PartialModel, TruthValue};

use super::fixpoint::is_fixpoint;
use super::stable::is_stable;
use super::SemanticsError;

/// Budgets for the enumeration search.
#[derive(Clone, Copy, Debug)]
pub struct EnumerateConfig {
    /// Stop after this many models (0 = unlimited).
    pub limit: usize,
    /// Refuse instances with more than this many branchable atoms.
    pub max_branch_atoms: usize,
}

impl Default for EnumerateConfig {
    fn default() -> Self {
        EnumerateConfig {
            limit: 0,
            max_branch_atoms: 30,
        }
    }
}

/// Search state: model plus supported-model propagation counters.
#[derive(Clone)]
struct State {
    model: PartialModel,
    /// Rule disabled by a false body literal.
    rule_dead: Vec<bool>,
    /// Body literals not yet resolved true.
    rule_pending: Vec<u32>,
    /// Non-dead rules per head atom.
    atom_support: Vec<u32>,
    /// Defined atoms awaiting propagation.
    queue: Vec<AtomId>,
}

struct Search<'g> {
    graph: &'g GroundGraph,
    in_delta: Vec<bool>,
    limit: usize,
    results: Vec<PartialModel>,
}

impl<'g> Search<'g> {
    fn propagate(&self, st: &mut State) -> bool {
        while let Some(atom) = st.queue.pop() {
            let value = st.model.get(atom);
            debug_assert!(value.is_defined());
            let truth = value == TruthValue::True;

            // A true atom not in Δ must keep some potentially-true rule.
            if truth && !self.in_delta[atom.index()] && st.atom_support[atom.index()] == 0 {
                return false;
            }

            for k in 0..self.graph.uses_of(atom).len() {
                let (rule, sign) = self.graph.uses_of(atom)[k];
                if st.rule_dead[rule.index()] {
                    continue;
                }
                let literal_true = sign.is_pos() == truth;
                if literal_true {
                    let p = &mut st.rule_pending[rule.index()];
                    *p -= 1;
                    if *p == 0 {
                        // Rule fires: head forced true.
                        let head = self.graph.rule(rule).head;
                        match st.model.get(head) {
                            TruthValue::False => return false,
                            TruthValue::True => {}
                            TruthValue::Undefined => {
                                st.model.set(head, TruthValue::True);
                                st.queue.push(head);
                            }
                        }
                    }
                } else {
                    // Rule dies; its head loses one potential support.
                    st.rule_dead[rule.index()] = true;
                    let head = self.graph.rule(rule).head;
                    let s = &mut st.atom_support[head.index()];
                    *s -= 1;
                    if *s == 0 && !self.in_delta[head.index()] {
                        match st.model.get(head) {
                            TruthValue::True => return false,
                            TruthValue::False => {}
                            TruthValue::Undefined => {
                                st.model.set(head, TruthValue::False);
                                st.queue.push(head);
                            }
                        }
                    }
                }
            }
        }
        true
    }

    fn search(&mut self, mut st: State) {
        if !self.propagate(&mut st) {
            return;
        }
        if self.limit != 0 && self.results.len() >= self.limit {
            return;
        }
        // Branch on the first undefined atom.
        let Some(atom) = st.model.undefined_atoms().next() else {
            self.results.push(st.model);
            return;
        };
        for value in [TruthValue::False, TruthValue::True] {
            let mut branch = st.clone();
            branch.model.set(atom, value);
            branch.queue.push(atom);
            self.search(branch);
            if self.limit != 0 && self.results.len() >= self.limit {
                return;
            }
        }
    }
}

fn initial_state(graph: &GroundGraph, program: &Program, database: &Database) -> State {
    let model = PartialModel::initial(program, database, graph.atoms());
    let rule_pending: Vec<u32> = graph.rules().iter().map(|r| r.body.len() as u32).collect();
    let atom_support: Vec<u32> = (0..graph.atom_count())
        .map(|i| graph.heads_of(AtomId(i as u32)).len() as u32)
        .collect();
    let queue: Vec<AtomId> = model.defined().map(|(a, _)| a).collect();
    State {
        model,
        rule_dead: vec![false; graph.rule_count()],
        rule_pending,
        atom_support,
        queue,
    }
}

/// Enumerates the fixpoints (supported models) of the grounded instance.
///
/// # Errors
///
/// [`SemanticsError::NotApplicable`] when more atoms would have to be
/// branched on than `config.max_branch_atoms` allows.
pub fn enumerate_fixpoints(
    graph: &GroundGraph,
    program: &Program,
    database: &Database,
    config: &EnumerateConfig,
) -> Result<Vec<PartialModel>, SemanticsError> {
    let mut search = Search {
        graph,
        in_delta: delta_mask(graph, database),
        limit: config.limit,
        results: Vec::new(),
    };

    // Seed: facts (body-less rules) fire immediately; unsupported atoms
    // are forced false by propagation once their counters are seen — but
    // counters only change on events, so seed those too.
    let mut st = initial_state(graph, program, database);
    for (i, rule) in graph.rules().iter().enumerate() {
        if rule.body.is_empty() && !st.rule_dead[i] {
            let head = rule.head;
            if st.model.get(head) == TruthValue::Undefined {
                st.model.set(head, TruthValue::True);
                st.queue.push(head);
            }
        }
    }
    for i in 0..graph.atom_count() {
        let id = AtomId(i as u32);
        if st.atom_support[i] == 0
            && !search.in_delta[i]
            && st.model.get(id) == TruthValue::Undefined
        {
            st.model.set(id, TruthValue::False);
            st.queue.push(id);
        }
    }

    // Budget check after initial propagation.
    let mut probe = st.clone();
    if search.propagate(&mut probe) {
        let branchable = probe.model.undefined_atoms().count();
        if branchable > config.max_branch_atoms {
            return Err(SemanticsError::NotApplicable(format!(
                "enumeration would branch over {branchable} atoms (cap {})",
                config.max_branch_atoms
            )));
        }
        search.search(probe);
    }

    // Belt-and-braces: every reported model must pass the checker.
    debug_assert!(search
        .results
        .iter()
        .all(|m| is_fixpoint(graph, database, m)));
    Ok(search.results)
}

/// Enumerates the stable models (the stable subset of the fixpoints).
///
/// # Errors
///
/// As for [`enumerate_fixpoints`].
pub fn enumerate_stable(
    graph: &GroundGraph,
    program: &Program,
    database: &Database,
    config: &EnumerateConfig,
) -> Result<Vec<PartialModel>, SemanticsError> {
    // The limit must not truncate fixpoints before the stability filter.
    let all = enumerate_fixpoints(
        graph,
        program,
        database,
        &EnumerateConfig {
            limit: 0,
            ..*config
        },
    )?;
    let mut stable: Vec<PartialModel> = all
        .into_iter()
        .filter(|m| is_stable(graph, program, database, m))
        .collect();
    if config.limit != 0 {
        stable.truncate(config.limit);
    }
    Ok(stable)
}

/// `true` iff the instance has at least one fixpoint.
///
/// # Errors
///
/// As for [`enumerate_fixpoints`].
pub fn has_fixpoint(
    graph: &GroundGraph,
    program: &Program,
    database: &Database,
    max_branch_atoms: usize,
) -> Result<bool, SemanticsError> {
    Ok(!enumerate_fixpoints(
        graph,
        program,
        database,
        &EnumerateConfig {
            limit: 1,
            max_branch_atoms,
        },
    )?
    .is_empty())
}

fn delta_mask(graph: &GroundGraph, database: &Database) -> Vec<bool> {
    let mut mask = vec![false; graph.atom_count()];
    for fact in database.facts() {
        if let Some(id) = graph.atoms().id_of(&fact) {
            mask[id.index()] = true;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_database, parse_program};
    use datalog_ground::{ground, GroundConfig};

    fn fixpoints(src: &str, db: &str) -> Vec<PartialModel> {
        let p = parse_program(src).unwrap();
        let d = parse_database(db).unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        enumerate_fixpoints(&g, &p, &d, &EnumerateConfig::default()).unwrap()
    }

    fn stables(src: &str, db: &str) -> Vec<PartialModel> {
        let p = parse_program(src).unwrap();
        let d = parse_database(db).unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        enumerate_stable(&g, &p, &d, &EnumerateConfig::default()).unwrap()
    }

    #[test]
    fn pq_cycle_counts() {
        assert_eq!(fixpoints("p :- not q.\nq :- not p.", "").len(), 2);
        assert_eq!(stables("p :- not q.\nq :- not p.", "").len(), 2);
    }

    #[test]
    fn guarded_pq_counts() {
        // Fixpoints: {}, {p}, {q}; stable: only {}.
        assert_eq!(fixpoints("p :- p, not q.\nq :- q, not p.", "").len(), 3);
        assert_eq!(stables("p :- p, not q.\nq :- q, not p.", "").len(), 1);
    }

    #[test]
    fn odd_loop_has_no_fixpoint() {
        assert!(fixpoints("p :- not p.", "").is_empty());
    }

    #[test]
    fn odd_loop_guarded_by_edb() {
        // p ← ¬p, e: no fixpoint when e ∈ Δ, one ({p=F, e=F}) when not.
        assert!(fixpoints("p :- not p, e.", "e.").is_empty());
        let fp = fixpoints("p :- not p, e.", "");
        assert_eq!(fp.len(), 1);
    }

    #[test]
    fn three_rules_fixpoints_and_stables() {
        // Paper §3: three mutually-exclusive propositions.
        let src = "p1 :- not p2, not p3.\np2 :- not p1, not p3.\np3 :- not p1, not p2.";
        let fp = fixpoints(src, "");
        // Fixpoints: the three singletons (all-false is not a fixpoint:
        // all three rules fire).
        assert_eq!(fp.len(), 3);
        assert!(fp.iter().all(|m| m.true_count() == 1));
        assert_eq!(stables(src, "").len(), 3);
    }

    #[test]
    fn positive_loop_fixpoints() {
        // p :- p. has two fixpoints ({}, {p}); only {} is stable.
        assert_eq!(fixpoints("p :- p.", "").len(), 2);
        let st = stables("p :- p.", "");
        assert_eq!(st.len(), 1);
        assert_eq!(st[0].true_count(), 0);
    }

    #[test]
    fn predicate_level_instance() {
        // Paper program (1) with E = {b}: unique fixpoint {p(a), e(b)}.
        let fp = fixpoints("p(a) :- not p(X), e(b).", "e(b).");
        assert_eq!(fp.len(), 1);
        assert_eq!(fp[0].true_count(), 2); // p(a) and e(b)
                                           // Variant (2) with E = {a}: no fixpoint (Theorem 2's witness).
        let fp = fixpoints("p(X, Y) :- not p(Y, Y), e(X).", "e(a).");
        assert!(fp.is_empty());
    }

    #[test]
    fn limit_short_circuits() {
        let p = parse_program("p :- not q.\nq :- not p.").unwrap();
        let d = Database::new();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        let one = enumerate_fixpoints(
            &g,
            &p,
            &d,
            &EnumerateConfig {
                limit: 1,
                max_branch_atoms: 30,
            },
        )
        .unwrap();
        assert_eq!(one.len(), 1);
        assert!(has_fixpoint(&g, &p, &d, 30).unwrap());
    }

    #[test]
    fn branch_budget_enforced() {
        // 40 independent p_i ← ¬q_i ; q_i ← ¬p_i pairs exceed a cap of 10.
        let mut src = String::new();
        for i in 0..20 {
            src.push_str(&format!("p{i} :- not q{i}.\nq{i} :- not p{i}.\n"));
        }
        let p = parse_program(&src).unwrap();
        let d = Database::new();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        let err = enumerate_fixpoints(
            &g,
            &p,
            &d,
            &EnumerateConfig {
                limit: 0,
                max_branch_atoms: 10,
            },
        )
        .unwrap_err();
        assert!(matches!(err, SemanticsError::NotApplicable(_)));
    }

    #[test]
    fn delta_facts_are_respected() {
        // q ∈ Δ: q needs no support; fixpoints must keep it true.
        let fp = fixpoints("p :- not q.", "q.");
        assert_eq!(fp.len(), 1);
        assert_eq!(fp[0].true_count(), 1); // q only
    }
}
