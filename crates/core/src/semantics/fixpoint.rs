//! Fixpoints (supported models) and consistency (paper, Section 2).
//!
//! A **fixpoint** of Π for Δ is a total model M in which an atom is true
//! iff it belongs to Δ or it is the head of an instantiated rule whose
//! body is true under M. (Some authors say *supported model*.) A partial
//! model is **consistent** if it extends M₀(Δ) and every instantiated
//! rule with an all-true body has a true head.

use datalog_ast::{Database, Program};
use datalog_ground::{AtomId, GroundGraph, PartialModel, RuleId, TruthValue};

/// One way a purported fixpoint fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FixpointViolation {
    /// The model leaves this atom undefined (fixpoints are total).
    Undefined(AtomId),
    /// True atom with no support: not in Δ and no rule with true body.
    Unsupported(AtomId),
    /// False atom that is in Δ or derived by a rule with true body.
    FalseButDerived(AtomId, Option<RuleId>),
}

/// Checks whether `model` is a fixpoint of the grounded instance,
/// returning all violations (empty ⇔ fixpoint).
pub fn fixpoint_violations(
    graph: &GroundGraph,
    database: &Database,
    model: &PartialModel,
) -> Vec<FixpointViolation> {
    let mut violations = Vec::new();

    // Which atoms are derived by a rule with an all-true body?
    let mut derived: Vec<Option<RuleId>> = vec![None; graph.atom_count()];
    for (i, rule) in graph.rules().iter().enumerate() {
        let body_true = rule
            .body
            .iter()
            .all(|&(a, s)| model.literal_truth(a, s) == Some(true));
        if body_true && derived[rule.head.index()].is_none() {
            derived[rule.head.index()] = Some(RuleId(i as u32));
        }
    }

    // Which atoms are in Δ?
    let mut in_delta = vec![false; graph.atom_count()];
    for fact in database.facts() {
        if let Some(id) = graph.atoms().id_of(&fact) {
            in_delta[id.index()] = true;
        }
    }

    for id in graph.atoms().ids() {
        let expected = in_delta[id.index()] || derived[id.index()].is_some();
        match model.get(id) {
            TruthValue::Undefined => violations.push(FixpointViolation::Undefined(id)),
            TruthValue::True if !expected => {
                violations.push(FixpointViolation::Unsupported(id));
            }
            TruthValue::False if expected => {
                violations.push(FixpointViolation::FalseButDerived(id, derived[id.index()]));
            }
            _ => {}
        }
    }
    violations
}

/// `true` iff `model` is a fixpoint of the grounded instance.
pub fn is_fixpoint(graph: &GroundGraph, database: &Database, model: &PartialModel) -> bool {
    fixpoint_violations(graph, database, model).is_empty()
}

/// `true` iff the (possibly partial) `model` is **consistent**: it extends
/// M₀(Δ) and every rule node with an all-true body has a true head.
pub fn is_consistent(
    graph: &GroundGraph,
    program: &Program,
    database: &Database,
    model: &PartialModel,
) -> bool {
    let m0 = PartialModel::initial(program, database, graph.atoms());
    if !model.extends(&m0) {
        return false;
    }
    graph.rules().iter().all(|rule| {
        let body_true = rule
            .body
            .iter()
            .all(|&(a, s)| model.literal_truth(a, s) == Some(true));
        !body_true || model.get(rule.head) == TruthValue::True
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_database, parse_program, GroundAtom};
    use datalog_ground::{ground, GroundConfig};

    fn instance(src: &str, db: &str) -> (GroundGraph, Program, Database, PartialModel) {
        let p = parse_program(src).unwrap();
        let d = parse_database(db).unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        let m = PartialModel::initial(&p, &d, g.atoms());
        (g, p, d, m)
    }

    fn set(g: &GroundGraph, m: &mut PartialModel, pred: &str, args: &[&str], v: TruthValue) {
        m.set(
            g.atoms()
                .id_of(&GroundAtom::from_texts(pred, args))
                .unwrap(),
            v,
        );
    }

    #[test]
    fn pq_cycle_has_two_fixpoints() {
        let (g, _, d, m0) = instance("p :- not q.\nq :- not p.", "");
        // p=T, q=F is a fixpoint.
        let mut m = m0.clone();
        set(&g, &mut m, "p", &[], TruthValue::True);
        set(&g, &mut m, "q", &[], TruthValue::False);
        assert!(is_fixpoint(&g, &d, &m));
        // p=T, q=T is NOT (both unsupported: each rule body is false).
        let mut m = m0.clone();
        set(&g, &mut m, "p", &[], TruthValue::True);
        set(&g, &mut m, "q", &[], TruthValue::True);
        let v = fixpoint_violations(&g, &d, &m);
        assert_eq!(v.len(), 2);
        assert!(matches!(v[0], FixpointViolation::Unsupported(_)));
        // p=F, q=F is NOT (both derived: each rule body is true).
        let mut m = m0;
        set(&g, &mut m, "p", &[], TruthValue::False);
        set(&g, &mut m, "q", &[], TruthValue::False);
        let v = fixpoint_violations(&g, &d, &m);
        assert_eq!(v.len(), 2);
        assert!(matches!(
            v[0],
            FixpointViolation::FalseButDerived(_, Some(_))
        ));
    }

    #[test]
    fn guarded_pq_cycle_fixpoints() {
        // p ← p, ¬q ; q ← q, ¬p: {p=T,q=F}, {p=F,q=T}, {p=F,q=F} are all
        // fixpoints (supported models); {p=T,q=T} is not.
        let (g, _, d, m0) = instance("p :- p, not q.\nq :- q, not p.", "");
        let mk = |pv: bool, qv: bool| {
            let mut m = m0.clone();
            set(&g, &mut m, "p", &[], TruthValue::from_bool(pv));
            set(&g, &mut m, "q", &[], TruthValue::from_bool(qv));
            m
        };
        assert!(is_fixpoint(&g, &d, &mk(true, false)));
        assert!(is_fixpoint(&g, &d, &mk(false, true)));
        assert!(is_fixpoint(&g, &d, &mk(false, false)));
        assert!(!is_fixpoint(&g, &d, &mk(true, true)));
    }

    #[test]
    fn delta_atoms_must_be_true() {
        let (g, _, d, m0) = instance("p(X) :- e(X).", "e(a).");
        // M0 has e(a)=T; setting p(a)=F violates (derived), p(a)=T is the
        // unique fixpoint.
        let mut m = m0.clone();
        set(&g, &mut m, "p", &["a"], TruthValue::False);
        assert!(!is_fixpoint(&g, &d, &m));
        let mut m = m0;
        set(&g, &mut m, "p", &["a"], TruthValue::True);
        assert!(is_fixpoint(&g, &d, &m));
    }

    #[test]
    fn partial_models_are_never_fixpoints() {
        let (g, _, d, m0) = instance("p :- not q.\nq :- not p.", "");
        let v = fixpoint_violations(&g, &d, &m0);
        assert!(v
            .iter()
            .all(|x| matches!(x, FixpointViolation::Undefined(_))));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn consistency_of_partial_models() {
        let (g, p, d, m0) = instance("p :- not q.\nq :- not p.", "");
        // M0 itself is consistent (no rule body fully true yet).
        assert!(is_consistent(&g, &p, &d, &m0));
        // q=F forces p's body true; without p=T it is inconsistent.
        let mut m = m0.clone();
        set(&g, &mut m, "q", &[], TruthValue::False);
        assert!(!is_consistent(&g, &p, &d, &m));
        set(&g, &mut m, "p", &[], TruthValue::True);
        assert!(is_consistent(&g, &p, &d, &m));
        // A model that contradicts M0 is inconsistent.
        let (g2, p2, d2, _) = instance("p(X) :- e(X).", "e(a).");
        let mut bad = PartialModel::initial(&p2, &d2, g2.atoms());
        set(&g2, &mut bad, "e", &["a"], TruthValue::False);
        assert!(!is_consistent(&g2, &p2, &d2, &bad));
    }
}
