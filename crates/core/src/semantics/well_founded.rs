//! Algorithm Well-Founded (paper, Section 2).
//!
//! ```text
//! M := M0(Δ); G := G(Π, Δ); (M, G) := close(M, G);
//! while C = Atoms[close(M, G+)] is nonempty do:
//!     for each atom a in C define M(a) := false;
//!     (M, G) := close(M, G)
//! ```
//!
//! The result is the well-founded (possibly partial) model of \[VRS\]. When
//! it is total, it is a fixpoint and the unique stable model.

use datalog_ast::{Database, Program};
use datalog_ground::{Closer, GroundGraph, PartialModel, TruthValue};

use super::{EvalMode, EvalOptions, InterpreterRun, RunStats, SemanticsError};

/// Runs the well-founded interpreter with explicit [`EvalOptions`]:
/// [`EvalMode::Global`] is the paper-literal loop below,
/// [`EvalMode::Stratified`] the condensation-driven variant of
/// [`super::scc_stratified`] (identical model, linear in the number of
/// unfounded rounds instead of quadratic).
///
/// # Errors
///
/// As for [`well_founded`].
pub fn well_founded_with(
    graph: &GroundGraph,
    program: &Program,
    database: &Database,
    options: &EvalOptions,
) -> Result<InterpreterRun, SemanticsError> {
    match options.mode {
        EvalMode::Global => well_founded(graph, program, database),
        EvalMode::Stratified => super::scc_stratified::run_stratified(
            graph,
            program,
            database,
            None,
            true,
            options.detailed_stats,
        ),
    }
}

/// Runs the well-founded interpreter over a pre-built ground graph.
///
/// # Errors
///
/// Only [`SemanticsError::Conflict`], which cannot occur for models
/// produced by this algorithm itself (it would indicate substrate
/// corruption); surfaced rather than panicked for uniformity.
pub fn well_founded(
    graph: &GroundGraph,
    program: &Program,
    database: &Database,
) -> Result<InterpreterRun, SemanticsError> {
    let mut model = PartialModel::initial(program, database, graph.atoms());
    let mut closer = Closer::new(graph);
    let mut stats = RunStats::default();

    closer.bootstrap(&model);
    closer.run(&mut model)?;
    stats.close_rounds += 1;

    loop {
        let unfounded = closer.largest_unfounded_set();
        if unfounded.is_empty() {
            break;
        }
        stats.unfounded_rounds += 1;
        for atom in unfounded {
            closer.define(&mut model, atom, TruthValue::False);
        }
        closer.run(&mut model)?;
        stats.close_rounds += 1;
    }

    let total = model.is_total();
    Ok(InterpreterRun {
        model,
        total,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_database, parse_program, GroundAtom};
    use datalog_ground::{ground, GroundConfig};

    fn run(src: &str, db: &str) -> (GroundGraph, Program, Database, InterpreterRun) {
        let p = parse_program(src).unwrap();
        let d = parse_database(db).unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        let r = well_founded(&g, &p, &d).unwrap();
        (g, p, d, r)
    }

    fn val(g: &GroundGraph, r: &InterpreterRun, pred: &str, args: &[&str]) -> TruthValue {
        r.model.get(
            g.atoms()
                .id_of(&GroundAtom::from_texts(pred, args))
                .unwrap(),
        )
    }

    #[test]
    fn stratified_program_is_total() {
        // reach(X) :- start(X). reach(Y) :- reach(X), edge(X, Y).
        // blocked(X) :- node(X), not reach(X).
        let (g, _, _, r) = run(
            "reach(X) :- start(X).\n\
             reach(Y) :- reach(X), edge(X, Y).\n\
             blocked(X) :- node(X), not reach(X).",
            "start(a).\nedge(a, b).\nedge(c, d).\nnode(a).\nnode(b).\nnode(c).\nnode(d).",
        );
        assert!(r.total);
        assert_eq!(val(&g, &r, "reach", &["b"]), TruthValue::True);
        assert_eq!(val(&g, &r, "reach", &["c"]), TruthValue::False);
        assert_eq!(val(&g, &r, "blocked", &["c"]), TruthValue::True);
        assert_eq!(val(&g, &r, "blocked", &["b"]), TruthValue::False);
    }

    #[test]
    fn win_move_game_partial_on_cycle() {
        // Draw position: a ↔ b cycle with a tail c → a.
        // win(c) depends on win(a), which is drawn ⇒ all three undefined?
        // Classic: nodes in a 2-cycle are drawn (undefined); a position
        // moving only to drawn positions is undefined too.
        let (g, _, _, r) = run(
            "win(X) :- move(X, Y), not win(Y).",
            "move(a, b).\nmove(b, a).\nmove(c, a).",
        );
        assert!(!r.total);
        assert_eq!(val(&g, &r, "win", &["a"]), TruthValue::Undefined);
        assert_eq!(val(&g, &r, "win", &["b"]), TruthValue::Undefined);
        assert_eq!(val(&g, &r, "win", &["c"]), TruthValue::Undefined);
    }

    #[test]
    fn win_move_game_decided_on_dag() {
        // b → c (c terminal): win(b); a → b: a loses? a moves to b which
        // wins ⇒ win(a) false... wait: win(X) iff ∃ move to a non-winning
        // position. c has no moves: win(c) false. b moves to c: win(b)
        // true. a moves only to b: win(a) false.
        let (g, _, _, r) = run(
            "win(X) :- move(X, Y), not win(Y).",
            "move(a, b).\nmove(b, c).",
        );
        assert!(r.total);
        assert_eq!(val(&g, &r, "win", &["c"]), TruthValue::False);
        assert_eq!(val(&g, &r, "win", &["b"]), TruthValue::True);
        assert_eq!(val(&g, &r, "win", &["a"]), TruthValue::False);
    }

    #[test]
    fn paper_program_1_is_total_for_this_db() {
        // P(a) ← ¬P(x), E(b): with E = {b}: ground rules P(a) ← ¬P(c), E(b)
        // for c ∈ {a, b}. Well-founded: P(b) unsupported ⇒ false; then rule
        // P(a) ← ¬P(b), E(b) has body true ⇒ P(a) true. Total!
        let (g, _, _, r) = run("p(a) :- not p(X), e(b).", "e(b).");
        assert!(r.total);
        assert_eq!(val(&g, &r, "p", &["a"]), TruthValue::True);
        assert_eq!(val(&g, &r, "p", &["b"]), TruthValue::False);
    }

    #[test]
    fn paper_variant_2_has_no_total_wf_model() {
        // P(x, y) ← ¬P(y, y), E(x) — program (2); not total when E ≠ ∅:
        // the atom P(a, a) with rule P(a, a) ← ¬P(a, a), E(a) is a direct
        // odd loop.
        let (_, _, _, r) = run("p(X, Y) :- not p(Y, Y), e(X).", "e(a).");
        assert!(!r.total);
    }

    #[test]
    fn pq_paper_example_both_false() {
        // p ← p, ¬q ; q ← q, ¬p: {p, q} is unfounded ⇒ both false.
        let (g, _, _, r) = run("p :- p, not q.\nq :- q, not p.", "");
        assert!(r.total);
        assert_eq!(val(&g, &r, "p", &[]), TruthValue::False);
        assert_eq!(val(&g, &r, "q", &[]), TruthValue::False);
        assert_eq!(r.stats.unfounded_rounds, 1);
    }

    #[test]
    fn negation_cycle_stays_partial() {
        let (_, _, _, r) = run("p :- not q.\nq :- not p.", "");
        assert!(!r.total);
        assert_eq!(r.model.defined_count(), 0);
        assert_eq!(r.residue().len(), 2);
    }

    #[test]
    fn three_negation_cycle_stays_partial() {
        // Odd cycle: no unfounded sets, WF assigns nothing.
        let (_, _, _, r) = run("p :- not q.\nq :- not r.\nr :- not p.", "");
        assert!(!r.total);
        assert_eq!(r.model.defined_count(), 0);
    }

    #[test]
    fn idb_facts_in_delta_respected() {
        let (g, _, _, r) = run("p(X) :- e(X), not q(X).", "e(a).\nq(a).");
        assert!(r.total);
        // q(a) ∈ Δ is true ⇒ p(a) false.
        assert_eq!(val(&g, &r, "q", &["a"]), TruthValue::True);
        assert_eq!(val(&g, &r, "p", &["a"]), TruthValue::False);
    }
}
