//! Stable models via the Gelfond–Lifschitz reduct \[GL\].
//!
//! The paper (§2) defines stable models operationally through
//! `close(M₋, G)`; the original definition is via the **reduct**: given a
//! candidate total model M, delete every ground rule with a negative body
//! literal false under M, strip the negative literals from the survivors,
//! and compute the least model of the resulting positive program (seeded
//! with Δ). M is stable iff it equals that least model (on top of the EDB
//! valuation).
//!
//! This module implements the reduct route independently of the `close`
//! machinery; the two characterizations are equivalent, which the
//! property tests exercise — each implementation guards the other.

use datalog_ast::{Database, Program, Sign};
use datalog_ground::{AtomId, GroundGraph, PartialModel, TruthValue};

/// Computes the least model of the GL reduct of the grounded instance
/// with respect to `candidate`, returned as a total model (every atom
/// true or false).
pub fn reduct_least_model(
    graph: &GroundGraph,
    database: &Database,
    candidate: &PartialModel,
) -> PartialModel {
    // Which rules survive the reduct: every negative literal true under
    // the candidate (i.e. its atom false).
    let mut pending: Vec<u32> = Vec::with_capacity(graph.rule_count());
    let mut alive: Vec<bool> = Vec::with_capacity(graph.rule_count());
    for rule in graph.rules() {
        let survives = rule
            .body
            .iter()
            .filter(|(_, s)| *s == Sign::Neg)
            .all(|&(a, _)| candidate.get(a) == TruthValue::False);
        alive.push(survives);
        // Count the positive literals still to satisfy.
        pending.push(rule.body.iter().filter(|(_, s)| *s == Sign::Pos).count() as u32);
    }

    // Least model: seed with Δ, fire surviving rules to a fixpoint.
    let mut truth: Vec<bool> = vec![false; graph.atom_count()];
    let mut queue: Vec<AtomId> = Vec::new();
    for fact in database.facts() {
        if let Some(id) = graph.atoms().id_of(&fact) {
            if !truth[id.index()] {
                truth[id.index()] = true;
                queue.push(id);
            }
        }
    }
    for (i, rule) in graph.rules().iter().enumerate() {
        if alive[i] && pending[i] == 0 && !truth[rule.head.index()] {
            truth[rule.head.index()] = true;
            queue.push(rule.head);
        }
    }
    while let Some(atom) = queue.pop() {
        for &(rule, sign) in graph.uses_of(atom) {
            if sign == Sign::Pos && alive[rule.index()] {
                let p = &mut pending[rule.index()];
                *p -= 1;
                if *p == 0 {
                    let head = graph.rule(rule).head;
                    if !truth[head.index()] {
                        truth[head.index()] = true;
                        queue.push(head);
                    }
                }
            }
        }
    }

    let mut model = PartialModel::undefined(graph.atom_count());
    for (i, &t) in truth.iter().enumerate() {
        model.set(AtomId(i as u32), TruthValue::from_bool(t));
    }
    model
}

/// `true` iff `candidate` is a stable model per the GL-reduct definition.
pub fn is_stable_via_reduct(
    graph: &GroundGraph,
    program: &Program,
    database: &Database,
    candidate: &PartialModel,
) -> bool {
    if !candidate.is_total() {
        return false;
    }
    let m0 = PartialModel::initial(program, database, graph.atoms());
    if !candidate.extends(&m0) {
        return false;
    }
    reduct_least_model(graph, database, candidate) == *candidate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::stable::is_stable;
    use datalog_ast::{parse_database, parse_program, GroundAtom};
    use datalog_ground::{ground, GroundConfig};

    fn instance(src: &str, db: &str) -> (GroundGraph, Program, Database, PartialModel) {
        let p = parse_program(src).unwrap();
        let d = parse_database(db).unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        let m = PartialModel::initial(&p, &d, g.atoms());
        (g, p, d, m)
    }

    fn set(g: &GroundGraph, m: &mut PartialModel, pred: &str, v: bool) {
        m.set(
            g.atoms().id_of(&GroundAtom::from_texts(pred, &[])).unwrap(),
            TruthValue::from_bool(v),
        );
    }

    #[test]
    fn reduct_agrees_with_close_on_pq() {
        let (g, p, d, m0) = instance("p :- not q.\nq :- not p.", "");
        for (pv, qv) in [(true, false), (false, true), (true, true), (false, false)] {
            let mut m = m0.clone();
            set(&g, &mut m, "p", pv);
            set(&g, &mut m, "q", qv);
            assert_eq!(
                is_stable_via_reduct(&g, &p, &d, &m),
                is_stable(&g, &p, &d, &m),
                "p={pv} q={qv}"
            );
        }
    }

    #[test]
    fn reduct_rejects_the_unstable_fixpoint() {
        // Paper §3 example: {p} is a fixpoint but not stable.
        let (g, p, d, m0) = instance("p :- p, not q.\nq :- q, not p.", "");
        let mut m = m0.clone();
        set(&g, &mut m, "p", true);
        set(&g, &mut m, "q", false);
        assert!(!is_stable_via_reduct(&g, &p, &d, &m));
        // Reduct wrt {p}: q's rule is deleted (¬p false); p's rule becomes
        // p ← p, whose least model is ∅ — not {p}.
        let least = reduct_least_model(&g, &d, &m);
        assert_eq!(least.true_count(), 0);
    }

    #[test]
    fn reduct_least_model_seeds_from_delta() {
        let (g, p, d, m0) = instance("p(X) :- e(X), not q(X).", "e(a).\nq(a).");
        let mut m = m0;
        let pa = g
            .atoms()
            .id_of(&GroundAtom::from_texts("p", &["a"]))
            .unwrap();
        m.set(pa, TruthValue::False);
        assert!(m.is_total());
        assert!(is_stable_via_reduct(&g, &p, &d, &m));
        assert!(is_stable(&g, &p, &d, &m));
    }

    #[test]
    fn three_rules_reduct_census() {
        let (g, p, d, m0) = instance(
            "p1 :- not p2, not p3.\np2 :- not p1, not p3.\np3 :- not p1, not p2.",
            "",
        );
        let mut both_agree_count = 0;
        for bits in 0u8..8 {
            let mut m = m0.clone();
            set(&g, &mut m, "p1", bits & 1 != 0);
            set(&g, &mut m, "p2", bits & 2 != 0);
            set(&g, &mut m, "p3", bits & 4 != 0);
            let a = is_stable_via_reduct(&g, &p, &d, &m);
            let b = is_stable(&g, &p, &d, &m);
            assert_eq!(a, b, "bits={bits:03b}");
            if a {
                both_agree_count += 1;
            }
        }
        assert_eq!(both_agree_count, 3);
    }
}
