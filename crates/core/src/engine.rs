//! A one-stop facade over parsing, analysis, grounding, and evaluation.
//!
//! ```
//! use tiebreak_core::{Engine, RootTruePolicy};
//!
//! let engine = Engine::from_sources(
//!     "win(X) :- move(X, Y), not win(Y).",
//!     "move(a, b). move(b, a).",
//! )
//! .unwrap();
//!
//! let report = engine.analyze().unwrap();
//! assert!(!report.stratified);          // win depends negatively on win
//! assert!(!report.structurally_total);  // odd self-cycle at `win`
//!
//! // Not structurally total — yet for THIS database the ground cycle is
//! // even (a ↔ b), so the tie-breaking interpreter still finds a fixpoint
//! // where the well-founded semantics leaves the draw undefined.
//! let outcome = engine
//!     .well_founded_tie_breaking(&mut RootTruePolicy)
//!     .unwrap();
//! assert!(outcome.total);
//! ```

use std::fmt;

use datalog_ast::{AstError, Database, GroundAtom, Program};
use datalog_ground::{ground, GroundConfig, GroundGraph, GroundMode, PartialModel, TruthValue};

use crate::analysis::{
    self, stratify, structural_nonuniform_totality, structural_totality, useless_predicates,
};
use crate::semantics::enumerate::{enumerate_fixpoints, enumerate_stable, EnumerateConfig};
use crate::semantics::stratified::{stratified, StratifiedRun};
use crate::semantics::tie_breaking::{
    pure_tie_breaking_with, well_founded_tie_breaking_with, TiePolicy,
};
use crate::semantics::well_founded::well_founded_with;
use crate::semantics::{EvalMode, EvalOptions, InterpreterRun, RunStats, SemanticsError};

/// Parallelism knobs for the `tiebreak-runtime` session solver.
///
/// The config travels inside [`EngineConfig`] so one value configures the
/// whole pipeline; the sequential [`Engine`] facade simply ignores it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Worker threads for the parallel branch scheduler. `0` (the
    /// default) means *auto*: the `TIEBREAK_THREADS` environment
    /// variable if set and positive, otherwise the machine's available
    /// parallelism.
    pub threads: usize,
    /// Minimum number of equal-depth components for an intra-branch
    /// *wave* to be dispatched across the worker pool (policy-free
    /// evaluations only; see the `tiebreak-runtime` scheduler docs).
    /// Waves narrower than this run on the sequential kernel — in
    /// particular a single-component wave pays no synchronization at
    /// all. `0` (the default) means *auto*, currently `2`.
    pub wave_min_width: usize,
}

impl RuntimeConfig {
    /// A config pinning the worker count (`0` = auto).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        RuntimeConfig {
            threads,
            ..RuntimeConfig::default()
        }
    }

    /// A copy with the wave dispatch threshold pinned (`0` = auto).
    #[must_use]
    pub fn with_wave_min_width(mut self, width: usize) -> Self {
        self.wave_min_width = width;
        self
    }

    /// The effective wave dispatch threshold: an explicit
    /// `wave_min_width`, else `2` — never below 2, since a one-component
    /// wave has nothing to dispatch.
    pub fn resolved_wave_min_width(&self) -> usize {
        if self.wave_min_width == 0 {
            2
        } else {
            self.wave_min_width.max(2)
        }
    }

    /// The effective worker count: an explicit `threads`, else the
    /// `TIEBREAK_THREADS` environment variable, else available
    /// parallelism (at least 1).
    ///
    /// Resolution is silent; a set-but-unusable `TIEBREAK_THREADS` falls
    /// back to the machine's parallelism and the misconfiguration is
    /// reported by [`RuntimeConfig::threads_diagnostic`], which each
    /// front-end surfaces in its own channel (CLI stderr, one line per
    /// session start; the network server in every `open` response) — a
    /// long-lived server must warn *every* misconfigured session, not
    /// just the first one a process-global `Once` would cover.
    pub fn resolved_threads(&self) -> usize {
        self.resolve_threads().0
    }

    /// The diagnostic for a set-but-unusable `TIEBREAK_THREADS`
    /// (non-numeric, or `0`): a configuration mistake, not a request for
    /// the default. `None` when the variable is absent, usable, or
    /// overridden by an explicit [`RuntimeConfig::threads`].
    pub fn threads_diagnostic(&self) -> Option<String> {
        self.resolve_threads().1
    }

    fn resolve_threads(&self) -> (usize, Option<String>) {
        if self.threads > 0 {
            return (self.threads, None);
        }
        let mut diagnostic = None;
        if let Ok(raw) = std::env::var("TIEBREAK_THREADS") {
            match raw.trim().parse::<usize>() {
                Ok(n) if n > 0 => return (n, None),
                _ => {
                    diagnostic = Some(format!(
                        "warning: TIEBREAK_THREADS={raw:?} is not a positive integer; \
                         falling back to the machine's available parallelism"
                    ));
                }
            }
        }
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        (threads, diagnostic)
    }
}

/// Incremental-session knobs (used by the `tiebreak-runtime` solver;
/// the one-shot [`Engine`] facade re-prepares per query regardless).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionConfig {
    /// Serve mutations incrementally (delta grounding + cone re-close +
    /// condensation patch). When `false` — or whenever the incremental
    /// preconditions fail (a constant enters or leaves the universe,
    /// `prune_decided` grounding) — every mutation re-prepares from
    /// scratch; results are identical either way, only the cost differs.
    pub incremental: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig { incremental: true }
    }
}

/// A single database mutation for the session solver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Add a ground fact to Δ (no-op if already present).
    Insert(GroundAtom),
    /// Remove a ground fact from Δ (no-op if absent).
    Retract(GroundAtom),
}

impl Mutation {
    /// The fact being inserted or retracted.
    pub fn fact(&self) -> &GroundAtom {
        match self {
            Mutation::Insert(f) | Mutation::Retract(f) => f,
        }
    }
}

/// What applying a batch of [`Mutation`]s did to a session's prepared
/// state — the observability surface of the incremental pipeline.
///
/// When `rebuilt` is set the mutation fell back to a full re-prepare
/// (`rebuild_reason` says why) and the cone/delta fields describe the
/// whole instance.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PrepareDelta {
    /// The session epoch after this batch (incremented once per
    /// state-changing `apply`).
    pub epoch: u64,
    /// Facts actually added to Δ (duplicates and cancelled pairs drop
    /// out).
    pub inserted: usize,
    /// Facts actually removed from Δ.
    pub retracted: usize,
    /// The batch fell back to a full re-prepare.
    pub rebuilt: bool,
    /// Why the full re-prepare happened, when it did.
    pub rebuild_reason: Option<String>,
    /// Atoms in the mutation's forward cone (re-closed).
    pub cone_atoms: usize,
    /// Rule nodes in the mutation's forward cone.
    pub cone_rules: usize,
    /// Atoms appended by delta grounding.
    pub new_atoms: usize,
    /// Rule instances appended by delta grounding.
    pub new_rules: usize,
    /// Newly supportable atoms (|ΔS|; `Relevant` grounding only).
    pub delta_supportable: usize,
    /// Condensation components retired by the cone patch.
    pub components_removed: usize,
    /// Condensation components created by the cone patch.
    pub components_added: usize,
    /// Branches whose cached evaluation state was discarded.
    pub branches_invalidated: usize,
    /// Branches after the patch.
    pub branches_total: usize,
    /// Residual (alive) atoms after the re-close.
    pub residual_atoms: usize,
}

/// Engine-wide budgets, grounding mode, evaluation mode, and runtime
/// parallelism.
///
/// The default is the **production path**: `GroundMode::Relevant` +
/// `EvalMode::Stratified` (identical semantics to the paper-literal
/// modes — see the differential suites — but linear instead of quadratic
/// on large instances). [`EngineConfig::paper_literal`] restores
/// `Full`/`Global` for paper-exact experiments and the differential
/// suites.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Grounding budgets and [`GroundMode`].
    pub ground: GroundConfig,
    /// Enumeration budgets.
    pub enumerate: EnumerateConfig,
    /// Evaluation mode and stats detail for the interpreters.
    pub eval: EvalOptions,
    /// Parallelism for the `tiebreak-runtime` session solver.
    pub runtime: RuntimeConfig,
    /// Incremental-session behaviour for the `tiebreak-runtime` solver.
    pub session: SessionConfig,
    /// Run the `datalog-analyze` static pass before preparing a session
    /// (`tiebreak-runtime` solver): error-level lints reject the program
    /// with [`SemanticsError::Rejected`] before any grounding work, and a
    /// stratification-grade totality certificate arms
    /// [`EvalOptions::certified_total`]. Off by default; the sequential
    /// [`Engine`] facade exposes analysis as an explicit call instead.
    pub analysis: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            ground: GroundConfig {
                mode: GroundMode::Relevant,
                ..GroundConfig::default()
            },
            enumerate: EnumerateConfig::default(),
            eval: EvalOptions {
                mode: EvalMode::Stratified,
                ..EvalOptions::default()
            },
            runtime: RuntimeConfig::default(),
            session: SessionConfig::default(),
            analysis: false,
        }
    }
}

impl EngineConfig {
    /// The paper-literal configuration: `GroundMode::Full` grounding and
    /// `EvalMode::Global` evaluation, exactly as the 1992 listings.
    #[must_use]
    pub fn paper_literal() -> Self {
        EngineConfig {
            ground: GroundConfig::default(),
            enumerate: EnumerateConfig::default(),
            eval: EvalOptions::default(),
            runtime: RuntimeConfig::default(),
            session: SessionConfig::default(),
            analysis: false,
        }
    }

    /// Selects the grounding mode (`Relevant` — the production default —
    /// grounds only supportable instances; `Full` is the paper-literal
    /// dense instantiation — identical post-`close` semantics).
    #[must_use]
    pub fn with_ground_mode(mut self, mode: GroundMode) -> Self {
        self.ground.mode = mode;
        self
    }

    /// Selects the evaluation mode (`Stratified` — the production
    /// default — drives the interpreters over the SCC condensation;
    /// `Global` is the paper-literal loop — identical models and outcome
    /// sets).
    #[must_use]
    pub fn with_eval_mode(mut self, mode: EvalMode) -> Self {
        self.eval.mode = mode;
        self
    }

    /// Sets the runtime parallelism config (used by the
    /// `tiebreak-runtime` session solver; ignored by the sequential
    /// facade methods).
    #[must_use]
    pub fn with_runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = runtime;
        self
    }

    /// Enables or disables incremental mutation serving in the
    /// `tiebreak-runtime` session solver (on by default; `false` forces
    /// every mutation through a full re-prepare — the differential
    /// baseline and the churn benchmarks use this).
    #[must_use]
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.session.incremental = incremental;
        self
    }

    /// Enables the pre-prepare static-analysis pass (see
    /// [`EngineConfig::analysis`]).
    #[must_use]
    pub fn with_analysis(mut self, analysis: bool) -> Self {
        self.analysis = analysis;
        self
    }

    /// Opts into detailed per-event statistics (`RunStats::tie_log`,
    /// `RunStats::component_rounds`). Off by default so long enumerations
    /// keep constant-size stats.
    #[must_use]
    pub fn with_detailed_stats(mut self, detailed: bool) -> Self {
        self.eval.detailed_stats = detailed;
        self
    }
}

/// The static analysis report for a program (and, where noted, database).
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// Is the program stratified (Theorem 5's class)?
    pub stratified: bool,
    /// Is it structurally total — *G(Π)* odd-cycle-free (Theorem 2)?
    pub structurally_total: bool,
    /// Odd-cycle witness when not structurally total.
    pub odd_cycle: Option<analysis::PredCycle>,
    /// Structurally nonuniformly total — *G(Π′)* odd-cycle-free (Thm 3)?
    pub structurally_nonuniform_total: bool,
    /// The useless predicates (Theorem 3 machinery).
    pub useless_predicates: Vec<String>,
    /// Locally stratified for the engine's database (strict, full ground
    /// graph)?
    pub locally_stratified: Option<bool>,
    /// Are all rules range-restricted (safe)?
    pub safe: bool,
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "stratified:                     {}", self.stratified)?;
        writeln!(
            f,
            "structurally total (Thm 2):     {}",
            self.structurally_total
        )?;
        if let Some(cycle) = &self.odd_cycle {
            writeln!(f, "  odd cycle: {cycle}")?;
        }
        writeln!(
            f,
            "struct. nonuniform total (Thm 3): {}",
            self.structurally_nonuniform_total
        )?;
        if !self.useless_predicates.is_empty() {
            writeln!(
                f,
                "  useless predicates: {}",
                self.useless_predicates.join(", ")
            )?;
        }
        if let Some(ls) = self.locally_stratified {
            writeln!(f, "locally stratified (this Δ):    {ls}")?;
        }
        writeln!(f, "safe (range-restricted):        {}", self.safe)
    }
}

/// The decoded outcome of an interpreter run.
#[derive(Clone, Debug)]
pub struct EvalOutcome {
    /// True ground atoms, sorted.
    pub true_facts: Vec<GroundAtom>,
    /// Atoms left undefined (empty iff `total`), sorted.
    pub undefined: Vec<GroundAtom>,
    /// Whether the model is total.
    pub total: bool,
    /// Interpreter statistics.
    pub stats: RunStats,
}

impl EvalOutcome {
    /// Decodes an interpreter run against its atom table: true and
    /// undefined facts, each sorted by `(predicate, args)`.
    ///
    /// The single decoding point for every front-end — the `Engine`
    /// facade and the `tiebreak-runtime` session solver both go through
    /// it, so their printed fact order can never drift apart.
    pub fn decode(atoms: &datalog_ground::AtomTable, run: InterpreterRun) -> EvalOutcome {
        let mut true_facts = run.model.true_atoms(atoms);
        true_facts.sort_by(|a, b| (a.pred.as_str(), &a.args).cmp(&(b.pred.as_str(), &b.args)));
        let mut undefined: Vec<GroundAtom> = run
            .model
            .undefined_atoms()
            .map(|id| atoms.decode(id))
            .collect();
        undefined.sort_by(|a, b| (a.pred.as_str(), &a.args).cmp(&(b.pred.as_str(), &b.args)));
        EvalOutcome {
            true_facts,
            undefined,
            total: run.total,
            stats: run.stats,
        }
    }
}

/// The facade: a program, a database, and budgets.
#[derive(Clone, Debug)]
pub struct Engine {
    program: Program,
    database: Database,
    config: EngineConfig,
}

impl Engine {
    /// Builds an engine from parsed parts.
    pub fn new(program: Program, database: Database) -> Self {
        Engine {
            program,
            database,
            config: EngineConfig::default(),
        }
    }

    /// Parses program and database sources.
    ///
    /// # Errors
    ///
    /// [`AstError`] on syntax or arity problems.
    pub fn from_sources(program_src: &str, database_src: &str) -> Result<Self, AstError> {
        Ok(Engine::new(
            datalog_ast::parse_program(program_src)?,
            datalog_ast::parse_database(database_src)?,
        ))
    }

    /// Replaces the budgets.
    #[must_use]
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// The program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The database.
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// Grounds the instance.
    ///
    /// # Errors
    ///
    /// [`SemanticsError::Ground`] over budget or on arity conflicts.
    pub fn ground(&self) -> Result<GroundGraph, SemanticsError> {
        Ok(ground(&self.program, &self.database, &self.config.ground)?)
    }

    /// Runs every static analysis. Local stratification is included when
    /// the instance grounds within budget.
    ///
    /// # Errors
    ///
    /// Never fails on analysis itself; returns `Err` only if the *ground*
    /// step both fails and was required (it is optional here — a grounding
    /// failure yields `locally_stratified: None`).
    pub fn analyze(&self) -> Result<AnalysisReport, SemanticsError> {
        let strat = stratify(&self.program);
        let st = structural_totality(&self.program);
        let non = structural_nonuniform_totality(&self.program);
        let useless = useless_predicates(&self.program);
        let locally = self
            .ground()
            .ok()
            .map(|g| analysis::locally_stratified(&g).locally_stratified);
        let mut useless_names: Vec<String> = useless
            .useless
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        useless_names.sort();
        Ok(AnalysisReport {
            stratified: strat.stratified,
            structurally_total: st.total,
            odd_cycle: st.witness,
            structurally_nonuniform_total: non.total,
            useless_predicates: useless_names,
            locally_stratified: locally,
            safe: self.program.is_safe(),
        })
    }

    fn decode(&self, graph: &GroundGraph, run: InterpreterRun) -> EvalOutcome {
        EvalOutcome::decode(graph.atoms(), run)
    }

    /// Runs the well-founded interpreter.
    ///
    /// # Errors
    ///
    /// Grounding failures.
    pub fn well_founded(&self) -> Result<EvalOutcome, SemanticsError> {
        let graph = self.ground()?;
        let _span = tiebreak_trace::span("eval", "well_founded", &[]);
        let run = well_founded_with(&graph, &self.program, &self.database, &self.config.eval)?;
        Ok(self.decode(&graph, run))
    }

    /// Runs the pure tie-breaking interpreter with `policy`.
    ///
    /// # Errors
    ///
    /// Grounding failures.
    pub fn pure_tie_breaking<P: TiePolicy>(
        &self,
        policy: &mut P,
    ) -> Result<EvalOutcome, SemanticsError> {
        let graph = self.ground()?;
        let _span = tiebreak_trace::span("eval", "pure_tie_breaking", &[]);
        let run = pure_tie_breaking_with(
            &graph,
            &self.program,
            &self.database,
            policy,
            &self.config.eval,
        )?;
        Ok(self.decode(&graph, run))
    }

    /// Runs the well-founded tie-breaking interpreter with `policy`.
    ///
    /// # Errors
    ///
    /// Grounding failures.
    pub fn well_founded_tie_breaking<P: TiePolicy>(
        &self,
        policy: &mut P,
    ) -> Result<EvalOutcome, SemanticsError> {
        let graph = self.ground()?;
        let _span = tiebreak_trace::span("eval", "well_founded_tie_breaking", &[]);
        let run = well_founded_tie_breaking_with(
            &graph,
            &self.program,
            &self.database,
            policy,
            &self.config.eval,
        )?;
        Ok(self.decode(&graph, run))
    }

    /// Runs stratified evaluation (errors on unstratified programs).
    ///
    /// # Errors
    ///
    /// [`SemanticsError::NotApplicable`] when not stratified.
    pub fn stratified(&self) -> Result<StratifiedRun, SemanticsError> {
        stratified(&self.program, &self.database)
    }

    /// Enumerates fixpoints (bounded; see [`EnumerateConfig`]).
    ///
    /// # Errors
    ///
    /// Grounding failures or enumeration budget.
    pub fn fixpoints(&self) -> Result<Vec<Vec<GroundAtom>>, SemanticsError> {
        let graph = self.ground()?;
        let models = enumerate_fixpoints(
            &graph,
            &self.program,
            &self.database,
            &self.config.enumerate,
        )?;
        Ok(models.iter().map(|m| sorted_true(m, &graph)).collect())
    }

    /// Enumerates stable models (bounded).
    ///
    /// # Errors
    ///
    /// Grounding failures or enumeration budget.
    pub fn stable_models(&self) -> Result<Vec<Vec<GroundAtom>>, SemanticsError> {
        let graph = self.ground()?;
        let models = enumerate_stable(
            &graph,
            &self.program,
            &self.database,
            &self.config.enumerate,
        )?;
        Ok(models.iter().map(|m| sorted_true(m, &graph)).collect())
    }
}

fn sorted_true(model: &PartialModel, graph: &GroundGraph) -> Vec<GroundAtom> {
    let mut v: Vec<GroundAtom> = model
        .defined()
        .filter(|&(_, t)| t == TruthValue::True)
        .map(|(id, _)| graph.atoms().decode(id))
        .collect();
    v.sort_by(|a, b| (a.pred.as_str(), &a.args).cmp(&(b.pred.as_str(), &b.args)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::tie_breaking::RootTruePolicy;

    #[test]
    fn facade_pipeline() {
        let engine = Engine::from_sources(
            "win(X) :- move(X, Y), not win(Y).",
            "move(a, b).\nmove(b, c).",
        )
        .unwrap();
        let report = engine.analyze().unwrap();
        assert!(!report.stratified);
        assert!(!report.structurally_total);
        assert!(report.odd_cycle.is_some());
        assert!(report.safe);

        let wf = engine.well_founded().unwrap();
        assert!(wf.total);
        assert!(wf.true_facts.iter().any(|f| f.to_string() == "win(b)"));
    }

    #[test]
    fn analysis_report_displays() {
        let engine = Engine::from_sources("p :- not q.\nq :- not p.", "").unwrap();
        let report = engine.analyze().unwrap();
        let text = report.to_string();
        assert!(text.contains("structurally total (Thm 2):     true"));
        assert!(text.contains("stratified:                     false"));
    }

    #[test]
    fn fixpoint_and_stable_enumeration_via_facade() {
        let engine = Engine::from_sources("p :- not q.\nq :- not p.", "").unwrap();
        assert_eq!(engine.fixpoints().unwrap().len(), 2);
        assert_eq!(engine.stable_models().unwrap().len(), 2);
    }

    #[test]
    fn tie_breaking_via_facade() {
        let engine = Engine::from_sources("p :- not q.\nq :- not p.", "").unwrap();
        let out = engine
            .well_founded_tie_breaking(&mut RootTruePolicy)
            .unwrap();
        assert!(out.total);
        assert_eq!(out.true_facts.len(), 1);
        assert_eq!(out.stats.ties_broken, 1);
    }

    #[test]
    fn relevant_mode_agrees_through_the_facade() {
        let sources = (
            "win(X) :- move(X, Y), not win(Y).",
            "move(a, b).\nmove(b, c).\nmove(d, d).",
        );
        let full = Engine::from_sources(sources.0, sources.1)
            .unwrap()
            .with_config(EngineConfig::default().with_ground_mode(GroundMode::Full));
        let relevant = Engine::from_sources(sources.0, sources.1)
            .unwrap()
            .with_config(EngineConfig::default().with_ground_mode(GroundMode::Relevant));

        let a = full.well_founded().unwrap();
        let b = relevant.well_founded().unwrap();
        assert_eq!(a.true_facts, b.true_facts);
        assert_eq!(a.undefined, b.undefined);
        assert_eq!(a.total, b.total);
        // The relevant graph is strictly smaller pre-close.
        assert!(relevant.ground().unwrap().rule_count() < full.ground().unwrap().rule_count());
    }

    #[test]
    fn stratified_eval_mode_agrees_through_the_facade() {
        let sources = (
            "win(X) :- move(X, Y), not win(Y).",
            "move(a, b).\nmove(b, a).\nmove(c, a).\nmove(d, e).\nmove(e, d).",
        );
        let global = Engine::from_sources(sources.0, sources.1)
            .unwrap()
            .with_config(EngineConfig::default().with_eval_mode(EvalMode::Global));
        let strat = Engine::from_sources(sources.0, sources.1)
            .unwrap()
            .with_config(EngineConfig::default().with_eval_mode(EvalMode::Stratified));

        let a = global.well_founded().unwrap();
        let b = strat.well_founded().unwrap();
        assert_eq!(a.true_facts, b.true_facts);
        assert_eq!(a.undefined, b.undefined);
        assert_eq!(a.total, b.total);

        // The d ↔ e pocket is a tie both modes can break.
        let ta = global
            .well_founded_tie_breaking(&mut RootTruePolicy)
            .unwrap();
        let tb = strat
            .well_founded_tie_breaking(&mut RootTruePolicy)
            .unwrap();
        assert_eq!(ta.total, tb.total);
        assert_eq!(ta.stats.ties_broken, tb.stats.ties_broken);
        // Detailed stats stay off by default (the tie_log bugfix).
        assert!(ta.stats.tie_log.is_empty());
        assert!(tb.stats.tie_log.is_empty());
        let detailed = Engine::from_sources(sources.0, sources.1)
            .unwrap()
            .with_config(EngineConfig::default().with_detailed_stats(true));
        let td = detailed
            .well_founded_tie_breaking(&mut RootTruePolicy)
            .unwrap();
        assert_eq!(td.stats.tie_log.len(), td.stats.ties_broken);
    }

    #[test]
    fn production_defaults_are_relevant_stratified() {
        let config = EngineConfig::default();
        assert_eq!(config.ground.mode, GroundMode::Relevant);
        assert_eq!(config.eval.mode, EvalMode::Stratified);
        let literal = EngineConfig::paper_literal();
        assert_eq!(literal.ground.mode, GroundMode::Full);
        assert_eq!(literal.eval.mode, EvalMode::Global);
    }

    #[test]
    fn runtime_config_resolution() {
        // Pinned thread counts win over every fallback; auto resolves to
        // at least one worker whatever the environment says.
        assert_eq!(RuntimeConfig::with_threads(3).resolved_threads(), 3);
        assert!(RuntimeConfig::default().resolved_threads() >= 1);
        // An explicit count never warns — the env var is not consulted.
        // (The unusable-env diagnostic itself is pinned by the CLI and
        // server suites, which control the variable per subprocess.)
        assert_eq!(RuntimeConfig::with_threads(3).threads_diagnostic(), None);
    }

    #[test]
    fn session_config_defaults_and_toggle() {
        assert!(EngineConfig::default().session.incremental);
        assert!(
            !EngineConfig::default()
                .with_incremental(false)
                .session
                .incremental
        );
        let delta = PrepareDelta::default();
        assert!(!delta.rebuilt && delta.rebuild_reason.is_none());
        let m = Mutation::Insert(GroundAtom::from_texts("p", &["a"]));
        assert_eq!(m.fact().pred.as_str(), "p");
    }

    #[test]
    fn stratified_via_facade() {
        let engine = Engine::from_sources(
            "t(X, Y) :- e(X, Y).\nt(X, Z) :- t(X, Y), e(Y, Z).",
            "e(a, b).\ne(b, c).",
        )
        .unwrap();
        let run = engine.stratified().unwrap();
        assert_eq!(run.facts.relation("t".into()).unwrap().len(), 3);
    }
}
