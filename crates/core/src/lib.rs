//! The paper's contribution: tie-breaking semantics and structural
//! totality for Datalog with negation.
//!
//! This crate implements, on top of the `datalog-ast` / `signed-graph` /
//! `datalog-ground` substrates:
//!
//! **Interpreters** ([`semantics`]):
//! * [`semantics::well_founded()`] — Algorithm Well-Founded (paper §2),
//! * [`semantics::pure_tie_breaking`] — Algorithm Pure Tie-Breaking (§3),
//! * [`semantics::well_founded_tie_breaking`] — Algorithm Well-Founded
//!   Tie-Breaking (§3), with pluggable [`semantics::TiePolicy`] choices,
//! * [`semantics::stratified`] — level-by-level least fixpoints via a
//!   semi-naive engine, for stratified programs,
//! * [`semantics::perfect`] — Przymusinski's perfect model for locally
//!   stratified programs,
//! * checkers and enumerators for **fixpoints** (supported models) and
//!   **stable models** ([`semantics::fixpoint`], [`semantics::stable`],
//!   [`semantics::enumerate`]).
//!
//! **Analyses** ([`analysis`]):
//! * the signed program graph *G(Π)* ([`analysis::program_graph`]),
//! * stratification (Theorem 5's boundary), with odd/negative cycle
//!   witnesses,
//! * **structural totality** — Theorem 2: *G(Π)* odd-cycle-free — and its
//!   nonuniform refinement via useless predicates and the reduced program
//!   Π′ — Theorem 3 ([`analysis::structural`], [`analysis::useless`]),
//! * local stratification on the ground graph ([`analysis::local_strat`]),
//! * brute-force **totality oracles** on bounded instance spaces
//!   ([`analysis::totality`]) — the undecidable property (Theorem 6),
//!   decided exhaustively where that is possible.
//!
//! The [`engine`] module bundles everything behind a one-stop API.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod engine;
pub mod semantics;

pub use datalog_ground::{GroundConfig, GroundMode};
pub use engine::{Engine, EngineConfig, Mutation, PrepareDelta, RuntimeConfig, SessionConfig};
pub use semantics::{
    EvalMode, EvalOptions, InterpreterRun, RandomPolicy, RootFalsePolicy, RootTruePolicy, RunStats,
    ScriptedPolicy, SemanticsError, TiePolicy, TieView,
};
