//! Reproducible workload generators for tests, examples, and benchmarks.

use datalog_ast::{
    Atom, Database, GroundAtom, Literal, PredSym, Program, ProgramBuilder, Rule, Sign, Skeleton,
    Term,
};
use rand::Rng;

/// The win–move game program `win(X) ← move(X, Y), ¬win(Y)` — the
/// motivating example of the well-founded semantics literature.
pub fn win_move_program() -> Program {
    ProgramBuilder::new()
        .rule("win", &["X"], |b| {
            b.pos("move", &["X", "Y"]).neg("win", &["Y"]);
        })
        .build()
        .expect("valid")
}

/// A random `move` relation over `nodes` constants with `edges` random
/// edges (duplicates collapse).
pub fn random_move_db<R: Rng>(rng: &mut R, nodes: usize, edges: usize) -> Database {
    let mut db = Database::new();
    let name = |i: usize| format!("n{i}");
    for _ in 0..edges {
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        db.insert(GroundAtom::from_texts("move", &[&name(a), &name(b)]))
            .expect("binary facts");
    }
    db
}

/// An acyclic `move` relation (edges only from lower to higher ids): the
/// win–move game is then fully decided by the well-founded semantics.
pub fn dag_move_db<R: Rng>(rng: &mut R, nodes: usize, edges: usize) -> Database {
    let mut db = Database::new();
    let name = |i: usize| format!("n{i}");
    for _ in 0..edges {
        let a = rng.gen_range(0..nodes.saturating_sub(1));
        let b = rng.gen_range(a + 1..nodes);
        db.insert(GroundAtom::from_texts("move", &[&name(a), &name(b)]))
            .expect("binary facts");
    }
    db
}

/// The propositional negation cycle C(n, k): rules
/// `p_i ← [¬] p_{(i+1) mod n}` where the first `k` dependencies are
/// negative. Structurally total iff `k` is even (Theorem 2's family).
pub fn negation_cycle(n: usize, k: usize) -> Program {
    assert!(n > 0 && k <= n);
    let mut b = ProgramBuilder::new();
    for i in 0..n {
        let head = format!("p{i}");
        let dep = format!("p{}", (i + 1) % n);
        let negative = i < k;
        b = b.rule(&head, &[], move |body| {
            if negative {
                body.neg(&dep, &[]);
            } else {
                body.pos(&dep, &[]);
            }
        });
    }
    b.build().expect("valid")
}

/// `pairs` independent 2-cycles `aᵢ ← ¬bᵢ ; bᵢ ← ¬aᵢ`: a program with
/// exactly `2^pairs` fixpoints, all reachable by tie-breaking. Stress
/// workload for the tie-breaking interpreters.
pub fn independent_ties(pairs: usize) -> Program {
    let mut b = ProgramBuilder::new();
    for i in 0..pairs {
        let (a, bb) = (format!("a{i}"), format!("b{i}"));
        b = b
            .rule(&a, &[], |body| {
                body.neg(&bb, &[]);
            })
            .rule(&bb, &[], |body| {
                body.neg(&a, &[]);
            });
    }
    b.build().expect("valid")
}

/// A `move` relation forming a **chain of `n` draw pockets** for the
/// win–move game: positions `a_i` and `b_i` move to each other (an even
/// cycle the well-founded semantics leaves drawn) and `a_i` can also
/// advance to `a_{i+1}`. The residual graph is a chain of `n` tie
/// components, each resolvable only after its successor — the canonical
/// alternation-heavy workload: the global tie-breaking loop re-scans the
/// whole graph per tie (Θ(n²) end-to-end) while the SCC-stratified mode
/// walks the condensation once (Θ(n)).
pub fn tie_chain_move_db(n: usize) -> Database {
    let mut db = Database::new();
    let mut insert = |from: &str, to: &str| {
        db.insert(GroundAtom::from_texts("move", &[from, to]))
            .expect("binary facts");
    };
    for i in 0..n {
        insert(&format!("a{i}"), &format!("b{i}"));
        insert(&format!("b{i}"), &format!("a{i}"));
        if i + 1 < n {
            insert(&format!("a{i}"), &format!("a{}", i + 1));
        }
    }
    db
}

/// A **wide tie forest** for the win–move game: `chains` independent
/// copies of [`tie_chain_move_db`]-style pocket chains, `pockets` draw
/// pockets each, with no moves between copies. The residual condensation
/// is a forest of `chains` weakly-connected branches — the canonical
/// *wide* workload for the parallel session runtime: branches are
/// causally independent, so the scheduler's speedup is bounded only by
/// `min(threads, chains)`.
pub fn wide_tie_forest_db(chains: usize, pockets: usize) -> Database {
    let mut db = Database::new();
    let mut insert = |from: &str, to: &str| {
        db.insert(GroundAtom::from_texts("move", &[from, to]))
            .expect("binary facts");
    };
    for c in 0..chains {
        for i in 0..pockets {
            insert(&format!("t{c}a{i}"), &format!("t{c}b{i}"));
            insert(&format!("t{c}b{i}"), &format!("t{c}a{i}"));
            if i + 1 < pockets {
                insert(&format!("t{c}a{i}"), &format!("t{c}a{}", i + 1));
            }
        }
    }
    db
}

/// A **braided tie chain** for the win–move game: `chains` parallel
/// pocket chains of `pockets` draw pockets each, plus one hub position
/// `h` that can advance into every chain's first pocket. The hub moves
/// weakly connect everything, so the residual condensation is a *single*
/// branch — the shape branch-level scheduling cannot split — while the
/// pockets at equal chain offset share no path and form waves of width
/// `chains`: the canonical workload for the intra-branch wave scheduler.
/// (The hub itself sits alone in the deepest wave, exercising the
/// single-component short-circuit.)
pub fn braided_tie_chain_db(chains: usize, pockets: usize) -> Database {
    let mut db = Database::new();
    let mut insert = |from: &str, to: &str| {
        db.insert(GroundAtom::from_texts("move", &[from, to]))
            .expect("binary facts");
    };
    for c in 0..chains {
        for i in 0..pockets {
            insert(&format!("t{c}a{i}"), &format!("t{c}b{i}"));
            insert(&format!("t{c}b{i}"), &format!("t{c}a{i}"));
            if i + 1 < pockets {
                insert(&format!("t{c}a{i}"), &format!("t{c}a{}", i + 1));
            }
        }
        insert("h", &format!("t{c}a0"));
    }
    db
}

/// A **braided unfounded chain**: `chains` parallel chains of `pockets`
/// positive loops of `loop_size` atoms each (`p_i ← p_{i+1 mod m}`), a
/// link rule handing each pocket support from its predecessor pocket,
/// and a guarded hub atom supported by every chain's last pocket. Like
/// [`braided_tie_chain_db`] the hub makes the residual one
/// weakly-connected branch with waves of width `chains`, but here every
/// component does real well-founded work — a `loop_size`-long unfounded
/// cascade plus the `close` that retires it — so the instance measures
/// wave *throughput* on the policy-free hot path rather than tie
/// bookkeeping. The well-founded model is total (everything false).
pub fn braided_unfounded_chain_program(chains: usize, pockets: usize, loop_size: usize) -> Program {
    assert!(loop_size >= 2, "a link rule needs a second loop atom");
    let mut b = ProgramBuilder::new();
    let name = |c: usize, j: usize, i: usize| format!("u{c}p{j}n{i}");
    for c in 0..chains {
        for j in 0..pockets {
            for i in 0..loop_size {
                let head = name(c, j, i);
                let next = name(c, j, (i + 1) % loop_size);
                b = b.rule(&head, &[], |body| {
                    body.pos(&next, &[]);
                });
            }
            if j > 0 {
                // In-pocket second literal pulls the link rule into the
                // pocket's SCC, keeping one component per pocket.
                let head = name(c, j, 0);
                let prev = name(c, j - 1, 0);
                let sibling = name(c, j, 1);
                b = b.rule(&head, &[], |body| {
                    body.pos(&prev, &[]).pos(&sibling, &[]);
                });
            }
        }
        let last = name(c, pockets - 1, 0);
        b = b.rule("hub", &[], |body| {
            body.pos(&last, &[]).pos("hub", &[]);
        });
    }
    b.build().expect("valid")
}

/// An **outcome-enumeration workload** for the win–move game: a decided
/// move chain of `decided` edges (the well-founded core resolves it in
/// the first `close`) plus `pockets` independent draw pockets. With `k`
/// pockets the tie-breaking choice tree has `2^k` scripts; the per-script
/// cost of re-running `close` is Θ(`decided`), while a copy-on-write fork
/// off the shared post-close state pays only the (constant-size) pocket
/// work plus a state `memcpy` — the instance behind the session runtime's
/// enumeration speedup gate.
pub fn outcome_pocket_db(decided: usize, pockets: usize) -> Database {
    let mut db = Database::new();
    let mut insert = |from: &str, to: &str| {
        db.insert(GroundAtom::from_texts("move", &[from, to]))
            .expect("binary facts");
    };
    for i in 0..decided {
        insert(&format!("d{i}"), &format!("d{}", i + 1));
    }
    for p in 0..pockets {
        insert(&format!("pa{p}"), &format!("pb{p}"));
        insert(&format!("pb{p}"), &format!("pa{p}"));
    }
    db
}

/// The **unfounded chain** U(n): `a_i ← a_i` (guard loops),
/// `a_i ← b_{i-1}` (chain support), `b_i ← ¬a_i`. Algorithm Well-Founded
/// resolves it one loop at a time — falsifying `a_i` closes `b_i` true
/// and `a_{i+1}` true, exposing `a_{i+2}` as the next unfounded set — so
/// the global interpreter pays Θ(n) unfounded rounds of Θ(n) state
/// cloning each. The stratified mode handles each loop inside its own
/// component in one topological pass.
pub fn unfounded_chain_program(n: usize) -> Program {
    let mut b = ProgramBuilder::new();
    for i in 0..n {
        let a = format!("a{i}");
        let bb = format!("b{i}");
        b = b.rule(&a, &[], |body| {
            body.pos(&a, &[]);
        });
        if i > 0 {
            let prev = format!("b{}", i - 1);
            b = b.rule(&a, &[], |body| {
                body.pos(&prev, &[]);
            });
        }
        b = b.rule(&bb, &[], |body| {
            body.neg(&a, &[]);
        });
    }
    b.build().expect("valid")
}

/// A random **call-consistent** (structurally total) program with a
/// planted tie partition: each predicate gets a side bit; positive
/// dependencies stay within a side, negative ones cross — so every cycle
/// of the program graph has an even number of negative edges.
///
/// All predicates are unary; bodies mix variables and the constant pool.
pub fn random_call_consistent<R: Rng>(
    rng: &mut R,
    preds: usize,
    rules: usize,
    max_body: usize,
) -> Program {
    assert!(preds >= 2);
    let sides: Vec<bool> = (0..preds).map(|_| rng.gen()).collect();
    let name = |i: usize| format!("p{i}");
    let mut out: Vec<Rule> = Vec::with_capacity(rules);
    for _ in 0..rules {
        let head_pred = rng.gen_range(0..preds);
        let body_len = rng.gen_range(1..=max_body);
        let head_arg = if rng.gen::<bool>() {
            Term::var("X")
        } else {
            Term::constant("c0")
        };
        let head = Atom::new(name(head_pred).as_str(), [head_arg]);
        let body: Vec<Literal> = (0..body_len)
            .map(|_| {
                let dep = rng.gen_range(0..preds);
                let sign = if sides[dep] == sides[head_pred] {
                    Sign::Pos
                } else {
                    Sign::Neg
                };
                let arg = match rng.gen_range(0..3) {
                    0 => Term::var("X"),
                    1 => Term::var("Y"),
                    _ => Term::constant(&format!("c{}", rng.gen_range(0..2))),
                };
                Literal {
                    sign,
                    atom: Atom::new(name(dep).as_str(), [arg]),
                }
            })
            .collect();
        out.push(Rule::new(head, body));
    }
    // Ensure at least one EDB predicate exists so databases can matter.
    out.push(Rule::new(
        Atom::new("seed", [Term::constant("c0")]),
        vec![Literal::pos(Atom::new("base", [Term::constant("c0")]))],
    ));
    Program::new(out).expect("unary rules are arity-consistent")
}

/// A random database for the predicates of `program` over `pool_size`
/// constants, inserting each candidate fact with probability `density`.
pub fn random_database<R: Rng>(
    rng: &mut R,
    program: &Program,
    pool_size: usize,
    density: f64,
    idb_too: bool,
) -> Database {
    let mut db = Database::new();
    let consts: Vec<String> = (0..pool_size).map(|i| format!("c{i}")).collect();
    for &pred in program.predicates() {
        if !idb_too && program.is_idb(pred) {
            continue;
        }
        let arity = program.arity(pred).expect("known");
        let mut tuple = vec![0usize; arity];
        loop {
            if rng.gen_bool(density) {
                let args: Vec<&str> = tuple.iter().map(|&i| consts[i].as_str()).collect();
                db.insert(GroundAtom::from_texts(pred.as_str(), &args))
                    .expect("consistent arities");
            }
            // Advance mixed-radix; arity-0 predicates have one candidate.
            let mut i = 0;
            loop {
                if i == arity {
                    tuple.clear();
                    break;
                }
                tuple[i] += 1;
                if tuple[i] < consts.len() {
                    break;
                }
                tuple[i] = 0;
                i += 1;
            }
            if tuple.is_empty() {
                break;
            }
        }
    }
    db
}

/// Realizes `skeleton` as a random alphabetic variant: each predicate
/// gets a random arity in `0..=max_arity`, and every occurrence gets
/// random argument terms over two variables and a small constant pool.
pub fn random_variant<R: Rng>(rng: &mut R, skeleton: &Skeleton, max_arity: usize) -> Program {
    let preds = skeleton.predicates();
    let arity: std::collections::HashMap<PredSym, usize> = preds
        .iter()
        .map(|&p| (p, rng.gen_range(0..=max_arity)))
        .collect();
    let term = |rng: &mut R| -> Term {
        match rng.gen_range(0..4) {
            0 => Term::var("X"),
            1 => Term::var("Y"),
            2 => Term::constant("k0"),
            _ => Term::constant("k1"),
        }
    };
    let rules: Vec<Rule> = skeleton
        .rules
        .iter()
        .map(|sr| {
            let head_args: Vec<Term> = (0..arity[&sr.head]).map(|_| term(rng)).collect();
            let body: Vec<Literal> = sr
                .body
                .iter()
                .map(|&(sign, pred)| Literal {
                    sign,
                    atom: Atom::new(pred, (0..arity[&pred]).map(|_| term(rng))),
                })
                .collect();
            Rule::new(Atom::new(sr.head, head_args), body)
        })
        .collect();
    Program::new(rules).expect("consistent arities by construction")
}

/// A layered stratified program: `layers` strata, each defining
/// `preds_per_layer` unary predicates from the previous layer, with
/// negation only across layers. Layer 0 reads the EDB predicate `e`.
pub fn layered_stratified(layers: usize, preds_per_layer: usize) -> Program {
    assert!(layers >= 1 && preds_per_layer >= 1);
    let mut b = ProgramBuilder::new();
    for layer in 0..layers {
        for i in 0..preds_per_layer {
            let head = format!("l{layer}_{i}");
            if layer == 0 {
                b = b.rule(&head, &["X"], |body| {
                    body.pos("e", &["X"]);
                });
            } else {
                let below_pos = format!("l{}_{}", layer - 1, i % preds_per_layer);
                let below_neg = format!("l{}_{}", layer - 1, (i + 1) % preds_per_layer);
                b = b.rule(&head, &["X"], |body| {
                    body.pos(&below_pos, &["X"]).neg(&below_neg, &["X"]);
                });
            }
        }
    }
    b.build().expect("valid")
}

/// A chain database `e(c0, c1), …, e(c_{n-1}, c_n)` for transitive-closure
/// style workloads.
pub fn chain_db(n: usize) -> Database {
    let mut db = Database::new();
    for i in 0..n {
        db.insert(GroundAtom::from_texts(
            "e",
            &[&format!("c{i}"), &format!("c{}", i + 1)],
        ))
        .expect("binary facts");
    }
    db
}

/// Unary facts `e(c0) … e(c_{n-1})`.
pub fn unary_db(n: usize) -> Database {
    let mut db = Database::new();
    for i in 0..n {
        db.insert(GroundAtom::from_texts("e", &[&format!("c{i}")]))
            .expect("unary facts");
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tiebreak_core::analysis::{stratify, structural_totality};

    #[test]
    fn negation_cycle_parity_matches_theorem2() {
        for n in 1..6 {
            for k in 0..=n {
                let p = negation_cycle(n, k);
                let st = structural_totality(&p);
                assert_eq!(st.total, k % 2 == 0, "C({n}, {k})");
            }
        }
    }

    #[test]
    fn planted_tie_programs_are_structurally_total() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..20 {
            let p = random_call_consistent(&mut rng, 5, 12, 3);
            assert!(structural_totality(&p).total);
        }
    }

    #[test]
    fn layered_programs_are_stratified() {
        let p = layered_stratified(4, 3);
        let s = stratify(&p);
        assert!(s.stratified);
        assert_eq!(s.stratum_count, 4);
    }

    #[test]
    fn random_variants_preserve_the_skeleton() {
        let mut rng = SmallRng::seed_from_u64(11);
        let base = win_move_program();
        let skel = base.skeleton();
        for _ in 0..10 {
            let v = random_variant(&mut rng, &skel, 3);
            assert!(v.is_alphabetic_variant_of(&base));
        }
    }

    #[test]
    fn independent_ties_structure() {
        let p = independent_ties(3);
        assert_eq!(p.len(), 6);
        assert!(structural_totality(&p).total);
        assert!(!stratify(&p).stratified);
    }

    #[test]
    fn dag_db_is_acyclic() {
        let mut rng = SmallRng::seed_from_u64(5);
        let db = dag_move_db(&mut rng, 10, 30);
        for fact in db.facts() {
            let a: usize = fact.args[0].as_str()[1..].parse().unwrap();
            let b: usize = fact.args[1].as_str()[1..].parse().unwrap();
            assert!(a < b);
        }
    }

    #[test]
    fn chain_db_shape() {
        let db = chain_db(3);
        assert_eq!(db.len(), 3);
        assert!(db.contains(&GroundAtom::from_texts("e", &["c2", "c3"])));
    }
}
