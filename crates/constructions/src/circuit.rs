//! Monotone Boolean circuits and the Theorem 4 reduction.
//!
//! Theorem 4 shows structural **nonuniform** totality is P-complete by
//! reducing from the monotone circuit value problem: given a circuit B of
//! ∧/∨ gates and an input assignment x, build a program that is
//! structurally nonuniformly total **iff B(x) = 0**:
//!
//! * input bit 1 → the gate predicate is EDB (appears in no head);
//! * input bit 0 → the rule `Gᵢ ← Gᵢ` (making Gᵢ useless);
//! * ∧ gate → one rule whose body lists all gate inputs positively;
//! * ∨ gate → one rule per input;
//! * output gate G_m → the rule `p ← ¬p, G_m`.
//!
//! A gate predicate is *useful* iff the gate evaluates to 1, so the odd
//! cycle at `p` survives reduction exactly when B(x) = 1.

use datalog_ast::{Program, ProgramBuilder};
use rand::Rng;

/// A gate of a monotone circuit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Gate {
    /// An input bit (index into the assignment).
    Input(usize),
    /// Conjunction of earlier gates (indices must be < this gate's index).
    And(Vec<usize>),
    /// Disjunction of earlier gates.
    Or(Vec<usize>),
}

/// A monotone circuit in topological order; the last gate is the output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Circuit {
    /// Number of input bits.
    pub inputs: usize,
    /// Gates; `Gate::And`/`Gate::Or` refer to earlier gates only.
    pub gates: Vec<Gate>,
}

impl Circuit {
    /// Validates the topological discipline.
    ///
    /// # Panics
    ///
    /// If a gate references a later or equal index, a fan-in is empty, or
    /// an input index is out of range.
    pub fn validate(&self) {
        for (i, g) in self.gates.iter().enumerate() {
            match g {
                Gate::Input(b) => assert!(*b < self.inputs, "input index out of range"),
                Gate::And(fan) | Gate::Or(fan) => {
                    assert!(!fan.is_empty(), "empty fan-in at gate {i}");
                    assert!(
                        fan.iter().all(|&j| j < i),
                        "gate {i} references a non-earlier gate"
                    );
                }
            }
        }
        assert!(!self.gates.is_empty(), "circuit has no gates");
    }

    /// Evaluates the circuit on `assignment`.
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.inputs);
        let mut value = vec![false; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            value[i] = match g {
                Gate::Input(b) => assignment[*b],
                Gate::And(fan) => fan.iter().all(|&j| value[j]),
                Gate::Or(fan) => fan.iter().any(|&j| value[j]),
            };
        }
        value[self.gates.len() - 1]
    }

    /// Per-gate values (used to cross-check usefulness).
    pub fn gate_values(&self, assignment: &[bool]) -> Vec<bool> {
        let mut value = vec![false; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            value[i] = match g {
                Gate::Input(b) => assignment[*b],
                Gate::And(fan) => fan.iter().all(|&j| value[j]),
                Gate::Or(fan) => fan.iter().any(|&j| value[j]),
            };
        }
        value
    }

    /// The Theorem 4 reduction: a propositional program that is
    /// structurally nonuniformly total iff `self.evaluate(assignment)` is
    /// false.
    pub fn to_program(&self, assignment: &[bool]) -> Program {
        self.validate();
        assert_eq!(assignment.len(), self.inputs);
        let gate_name = |i: usize| format!("g{i}");
        let mut b = ProgramBuilder::new();
        for (i, g) in self.gates.iter().enumerate() {
            let name = gate_name(i);
            match g {
                Gate::Input(bit) => {
                    if !assignment[*bit] {
                        // 0-input: Gi ← Gi (useless). 1-inputs stay EDB.
                        b = b.rule(&name, &[], |body| {
                            body.pos(&name, &[]);
                        });
                    }
                }
                Gate::And(fan) => {
                    let fan = fan.clone();
                    b = b.rule(&name, &[], |body| {
                        for &j in &fan {
                            body.pos(&gate_name(j), &[]);
                        }
                    });
                }
                Gate::Or(fan) => {
                    for &j in fan {
                        b = b.rule(&name, &[], |body| {
                            body.pos(&gate_name(j), &[]);
                        });
                    }
                }
            }
        }
        let out = gate_name(self.gates.len() - 1);
        b = b.rule("p", &[], |body| {
            body.neg("p", &[]).pos(&out, &[]);
        });
        b.build().expect("reduction is arity-consistent")
    }

    /// A random layered monotone circuit (reproducible via `rng`).
    pub fn random<R: Rng>(rng: &mut R, inputs: usize, gate_count: usize) -> Circuit {
        assert!(inputs > 0 && gate_count > 0);
        let mut gates: Vec<Gate> = (0..inputs).map(Gate::Input).collect();
        for _ in 0..gate_count {
            let i = gates.len();
            let fan_size = rng.gen_range(1..=3.min(i));
            let fan: Vec<usize> = (0..fan_size).map(|_| rng.gen_range(0..i)).collect();
            gates.push(if rng.gen::<bool>() {
                Gate::And(fan)
            } else {
                Gate::Or(fan)
            });
        }
        Circuit { inputs, gates }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tiebreak_core::analysis::{structural_nonuniform_totality, useless_predicates};

    /// x0 ∧ (x1 ∨ x2)
    fn sample() -> Circuit {
        Circuit {
            inputs: 3,
            gates: vec![
                Gate::Input(0),
                Gate::Input(1),
                Gate::Input(2),
                Gate::Or(vec![1, 2]),
                Gate::And(vec![0, 3]),
            ],
        }
    }

    #[test]
    fn evaluation() {
        let c = sample();
        assert!(c.evaluate(&[true, true, false]));
        assert!(c.evaluate(&[true, false, true]));
        assert!(!c.evaluate(&[true, false, false]));
        assert!(!c.evaluate(&[false, true, true]));
    }

    #[test]
    fn reduction_tracks_circuit_value_on_sample() {
        let c = sample();
        for bits in 0u8..8 {
            let x: Vec<bool> = (0..3).map(|i| bits & (1 << i) != 0).collect();
            let program = c.to_program(&x);
            let st = structural_nonuniform_totality(&program);
            assert_eq!(
                st.total,
                !c.evaluate(&x),
                "assignment {x:?}: totality must equal ¬B(x)"
            );
        }
    }

    #[test]
    fn gate_usefulness_equals_gate_value() {
        let c = sample();
        let x = [true, false, true];
        let program = c.to_program(&x);
        let analysis = useless_predicates(&program);
        let values = c.gate_values(&x);
        for (i, &v) in values.iter().enumerate() {
            let pred = datalog_ast::PredSym::new(&format!("g{i}"));
            // EDB predicates (1-inputs) are not IDB, hence never useless;
            // they are trivially "useful" leaves.
            let useless = analysis.is_useless(pred);
            assert_eq!(!useless, v, "gate g{i}");
        }
    }

    #[test]
    fn random_circuits_agree_with_oracle() {
        let mut rng = SmallRng::seed_from_u64(7);
        for trial in 0..30 {
            let c = Circuit::random(&mut rng, 4, 12);
            let x: Vec<bool> = (0..4).map(|_| rng.gen::<bool>()).collect();
            let program = c.to_program(&x);
            let st = structural_nonuniform_totality(&program);
            assert_eq!(st.total, !c.evaluate(&x), "trial {trial}");
        }
    }

    #[test]
    #[should_panic(expected = "non-earlier")]
    fn forward_reference_rejected() {
        let c = Circuit {
            inputs: 1,
            gates: vec![Gate::Input(0), Gate::And(vec![2]), Gate::Or(vec![0])],
        };
        c.validate();
    }
}
