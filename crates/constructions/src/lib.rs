//! The paper's proof constructions, reductions, and workload generators.
//!
//! Everything in the paper that *builds* something is implemented here so
//! the theorems can be validated mechanically:
//!
//! * [`variants`] — the alphabetic-variant constructions from the proofs
//!   of Theorems 2, 3, and 5: given a program with an odd (or merely
//!   negative) cycle, produce a same-skeleton program and a database with
//!   no fixpoint (respectively, no total well-founded model);
//! * [`circuit`] — monotone Boolean circuits and the Theorem 4 reduction
//!   from the circuit value problem to structural nonuniform totality
//!   (P-completeness);
//! * [`counter_machine`] — deterministic 2-counter (Minsky) machines and
//!   a step simulator;
//! * [`undecidability`] — the Theorem 6 reduction from the halting problem
//!   of 2-counter machines to (non)totality, including the uniform-case
//!   `q`-transformation;
//! * [`pi2p`] — ∀∃-CNF formulas, a brute-force Π₂ᵖ oracle, and the
//!   Section 5 Proposition's reduction to propositional totality;
//! * [`default_logic`] — atomic default theories, Reiter's Γ operator,
//!   and the \[PS\]/\[BF1\] correspondence (extensions = stable models;
//!   tie-breaking as extension finding);
//! * [`generators`] — reproducible workload generators (win–move games,
//!   negation cycles, planted-tie call-consistent programs, random
//!   alphabetic variants, layered stratified programs) shared by tests,
//!   examples, and benchmarks.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod circuit;
pub mod counter_machine;
pub mod default_logic;
pub mod generators;
pub mod pi2p;
pub mod undecidability;
pub mod variants;

pub use circuit::{Circuit, Gate};
pub use counter_machine::{CounterMachine, MachineOutcome, Transition};
pub use default_logic::DefaultTheory;
pub use pi2p::{CnfFormula, Lit, Var};
pub use variants::{
    realize_cycle, theorem2_ternary_variant, theorem2_unary_variant, theorem3_binary_variant,
    theorem3_quaternary_variant, ArcRealization, CycleRealization,
};
