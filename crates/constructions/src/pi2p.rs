//! ∀∃-SAT and the Section 5 Proposition's reduction.
//!
//! The paper shows deciding totality of a *propositional* program is
//! Π₂ᵖ-complete by reducing from: given CNF F(x, y), does every assignment
//! to x admit an assignment to y satisfying F? The reduction:
//!
//! * an EDB proposition `Xi` per x-variable, an IDB proposition `Yi` per
//!   y-variable, plus IDB propositions `p` and `q`;
//! * per clause Cj, the rule `p ← ¬p, ¬q, ⟨complements of Cj's literals⟩`
//!   (literal `xi` contributes body literal `¬Xi`, literal `¬xi`
//!   contributes `Xi`, and likewise for y);
//! * the rules `Yi ← Yi, ¬q` and `q ← Yi, q` for every y-variable.
//!
//! The program is total (uniform or nonuniform sense) iff ∀x ∃y F(x, y).

use datalog_ast::{Program, ProgramBuilder};
use rand::Rng;

/// A variable of the formula.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Var {
    /// Universally quantified (an `x` variable).
    X(usize),
    /// Existentially quantified (a `y` variable).
    Y(usize),
}

/// A literal of the formula.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Lit {
    /// The variable.
    pub var: Var,
    /// `true` iff the literal is negated.
    pub negated: bool,
}

impl Lit {
    /// Positive literal over `var`.
    pub fn pos(var: Var) -> Self {
        Lit {
            var,
            negated: false,
        }
    }

    /// Negative literal over `var`.
    pub fn neg(var: Var) -> Self {
        Lit { var, negated: true }
    }

    fn eval(self, x: &[bool], y: &[bool]) -> bool {
        let v = match self.var {
            Var::X(i) => x[i],
            Var::Y(i) => y[i],
        };
        v != self.negated
    }
}

/// A CNF formula F(x, y) with the variables split into ∀ (x) and ∃ (y).
#[derive(Clone, Debug)]
pub struct CnfFormula {
    /// Number of x (∀) variables.
    pub x_vars: usize,
    /// Number of y (∃) variables.
    pub y_vars: usize,
    /// The clauses (disjunctions of literals).
    pub clauses: Vec<Vec<Lit>>,
}

impl CnfFormula {
    /// Evaluates F on a full assignment.
    pub fn eval(&self, x: &[bool], y: &[bool]) -> bool {
        assert_eq!(x.len(), self.x_vars);
        assert_eq!(y.len(), self.y_vars);
        self.clauses
            .iter()
            .all(|clause| clause.iter().any(|l| l.eval(x, y)))
    }

    /// The Π₂ oracle: ∀x ∃y F(x, y), by brute force.
    pub fn forall_exists(&self) -> bool {
        let xs = 1usize << self.x_vars;
        let ys = 1usize << self.y_vars;
        (0..xs).all(|xm| {
            let x: Vec<bool> = (0..self.x_vars).map(|i| xm & (1 << i) != 0).collect();
            (0..ys).any(|ym| {
                let y: Vec<bool> = (0..self.y_vars).map(|i| ym & (1 << i) != 0).collect();
                self.eval(&x, &y)
            })
        })
    }

    /// The Proposition's reduction to a propositional program.
    pub fn to_program(&self) -> Program {
        let mut b = ProgramBuilder::new();
        let xname = |i: usize| format!("x{i}");
        let yname = |i: usize| format!("y{i}");

        for clause in &self.clauses {
            let clause = clause.clone();
            let (xname, yname) = (&xname, &yname);
            b = b.rule("p", &[], move |body| {
                body.neg("p", &[]).neg("q", &[]);
                for lit in &clause {
                    let name = match lit.var {
                        Var::X(i) => xname(i),
                        Var::Y(i) => yname(i),
                    };
                    // The body carries the COMPLEMENT of the clause literal.
                    if lit.negated {
                        body.pos(&name, &[]);
                    } else {
                        body.neg(&name, &[]);
                    }
                }
            });
        }
        for i in 0..self.y_vars {
            let name = yname(i);
            b = b.rule(&name, &[], |body| {
                body.pos(&name, &[]).neg("q", &[]);
            });
            b = b.rule("q", &[], |body| {
                body.pos(&name, &[]).pos("q", &[]);
            });
        }
        b.build().expect("reduction is arity-consistent")
    }

    /// A random CNF (reproducible).
    pub fn random<R: Rng>(
        rng: &mut R,
        x_vars: usize,
        y_vars: usize,
        clauses: usize,
        width: usize,
    ) -> CnfFormula {
        let total = x_vars + y_vars;
        assert!(total > 0 && width > 0);
        let clauses = (0..clauses)
            .map(|_| {
                (0..width)
                    .map(|_| {
                        let v = rng.gen_range(0..total);
                        let var = if v < x_vars {
                            Var::X(v)
                        } else {
                            Var::Y(v - x_vars)
                        };
                        Lit {
                            var,
                            negated: rng.gen::<bool>(),
                        }
                    })
                    .collect()
            })
            .collect();
        CnfFormula {
            x_vars,
            y_vars,
            clauses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tiebreak_core::analysis::{propositional_totality, TotalityConfig};

    fn totality_matches(f: &CnfFormula) {
        let program = f.to_program();
        let expected = f.forall_exists();
        let uni = propositional_totality(&program, false, &TotalityConfig::default()).unwrap();
        assert_eq!(uni.total, expected, "uniform totality vs ∀∃ oracle");
        let non = propositional_totality(&program, true, &TotalityConfig::default()).unwrap();
        assert_eq!(non.total, expected, "nonuniform totality vs ∀∃ oracle");
    }

    #[test]
    fn tautological_formula_is_total() {
        // (y0 ∨ ¬y0): always satisfiable.
        let f = CnfFormula {
            x_vars: 1,
            y_vars: 1,
            clauses: vec![vec![Lit::pos(Var::Y(0)), Lit::neg(Var::Y(0))]],
        };
        assert!(f.forall_exists());
        totality_matches(&f);
    }

    #[test]
    fn unsatisfiable_branch_kills_totality() {
        // F = (x0): when x0 = false no y helps.
        let f = CnfFormula {
            x_vars: 1,
            y_vars: 1,
            clauses: vec![vec![Lit::pos(Var::X(0))]],
        };
        assert!(!f.forall_exists());
        totality_matches(&f);
    }

    #[test]
    fn y_can_repair_x() {
        // F = (x0 ∨ y0) ∧ (¬x0 ∨ ¬y0): choose y0 = ¬x0.
        let f = CnfFormula {
            x_vars: 1,
            y_vars: 1,
            clauses: vec![
                vec![Lit::pos(Var::X(0)), Lit::pos(Var::Y(0))],
                vec![Lit::neg(Var::X(0)), Lit::neg(Var::Y(0))],
            ],
        };
        assert!(f.forall_exists());
        totality_matches(&f);
    }

    #[test]
    fn contradictory_ys_fail() {
        // F = (y0) ∧ (¬y0): never satisfiable.
        let f = CnfFormula {
            x_vars: 1,
            y_vars: 1,
            clauses: vec![vec![Lit::pos(Var::Y(0))], vec![Lit::neg(Var::Y(0))]],
        };
        assert!(!f.forall_exists());
        totality_matches(&f);
    }

    #[test]
    fn random_formulas_agree_with_oracle() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..10 {
            let f = CnfFormula::random(&mut rng, 2, 2, 3, 2);
            totality_matches(&f);
        }
    }

    #[test]
    fn reduction_shape() {
        let f = CnfFormula {
            x_vars: 1,
            y_vars: 2,
            clauses: vec![vec![Lit::pos(Var::X(0)), Lit::neg(Var::Y(1))]],
        };
        let p = f.to_program();
        // 1 clause rule + 2 rules per y-variable.
        assert_eq!(p.len(), 5);
        assert_eq!(p.rules()[0].to_string(), "p :- not p, not q, not x0, y1.");
        // X variables are EDB.
        assert!(p.edb_predicates().any(|q| q.as_str() == "x0"));
        assert!(p.is_idb("y1".into()));
    }
}
