//! Regenerates `examples/dl/` — the textual program/database pairs the
//! `datalog check` CI matrix runs over, one pair per runnable example.
//!
//! ```sh
//! cargo run -p paper-constructions --bin gen_example_dl
//! ```
//!
//! The sources mirror the instances the `examples/*.rs` binaries build
//! programmatically (`two_counter` is the paper's pump-and-drain(2)
//! machine, whose full grounding intentionally blows the default budget
//! — the CI matrix expects `check --ground-mode full` to fail on it).

use std::io::Write as _;
use std::path::Path;

use paper_constructions::counter_machine::CounterMachine;
use paper_constructions::default_logic::{Default, DefaultTheory};
use paper_constructions::undecidability::{machine_to_program, natural_database};
use paper_constructions::{generators, Circuit, Gate, MachineOutcome};

fn write_pair(dir: &Path, name: &str, program: &str, database: &str) {
    let write = |suffix: &str, text: &str| {
        let path = dir.join(format!("{name}{suffix}.dl"));
        let mut f = std::fs::File::create(&path).expect("create");
        f.write_all(text.as_bytes()).expect("write");
        println!("wrote {}", path.display());
    };
    write("", program);
    write("_db", database);
}

fn main() {
    let dir = Path::new("examples/dl");
    std::fs::create_dir_all(dir).expect("mkdir examples/dl");

    write_pair(
        dir,
        "quickstart",
        "p(X) :- not q(X).\nq(X) :- not p(X).\n",
        "e(a).\ne(b).\n",
    );

    write_pair(
        dir,
        "win_move",
        &generators::win_move_program().to_string(),
        "move(a, b).\nmove(b, c).\nmove(p, q).\nmove(q, p).\nmove(t, p).\n",
    );

    // The circuit example's anatomy assignment: B(x) = x0 AND (x1 OR x2)
    // at x = (1, 0, 1), so B(x) = 1 and the reduction keeps its odd
    // cycle (`check` reports it, CI expects exit 0 — it is a warning).
    let circuit = Circuit {
        inputs: 3,
        gates: vec![
            Gate::Input(0),
            Gate::Input(1),
            Gate::Input(2),
            Gate::Or(vec![1, 2]),
            Gate::And(vec![0, 3]),
        ],
    };
    write_pair(
        dir,
        "circuit_totality",
        &circuit.to_program(&[true, false, true]).to_string(),
        "",
    );

    let machine = CounterMachine::pump_and_drain(2);
    let MachineOutcome::Halted(steps) = machine.simulate(1000) else {
        panic!("pump_and_drain(2) halts");
    };
    write_pair(
        dir,
        "two_counter",
        &machine_to_program(&machine).to_string(),
        &natural_database(steps).to_string(),
    );

    let theory = DefaultTheory::default()
        .fact("bird")
        .default_rule(Default::new(&["bird"], &["grounded"], "flies"))
        .default_rule(Default::new(&["bird"], &["flies"], "grounded"));
    let (program, database) = theory.to_program();
    write_pair(
        dir,
        "default_reasoning",
        &program.to_string(),
        &database.to_string(),
    );

    let mut choice = String::new();
    for i in 0..3 {
        choice.push_str(&format!("a{i} :- not b{i}.\nb{i} :- not a{i}.\n"));
    }
    write_pair(dir, "nondeterministic_choice", &choice, "");
}
