//! Deterministic 2-counter (Minsky) machines.
//!
//! The substrate of Theorem 6: 2-counter machines have an undecidable
//! halting problem, and the paper reduces halting to (non)totality. A
//! machine has states `0..=states-1` with `0` the start state (both
//! counters zero) and a designated halt state; a transition is chosen by
//! the current state and the zero-status of each counter, and may move to
//! a new state while incrementing or decrementing each counter by at most
//! one.

use std::fmt;

/// One transition: target state and counter deltas (each in {-1, 0, +1}).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transition {
    /// The next state.
    pub next: usize,
    /// Delta applied to counter 1.
    pub d1: i8,
    /// Delta applied to counter 2.
    pub d2: i8,
}

/// A deterministic 2-counter machine.
#[derive(Clone, Debug)]
pub struct CounterMachine {
    /// Number of states (numbered from 0, the start state).
    pub states: usize,
    /// The halting state (no transitions out of it).
    pub halt: usize,
    /// `rules[s][z1][z2]` = transition taken in state `s` when counter 1
    /// is zero iff `z1` and counter 2 is zero iff `z2` (indices: 1 =
    /// zero). `None` means the machine jams (treated as non-halting).
    pub rules: Vec<[[Option<Transition>; 2]; 2]>,
}

/// The outcome of a bounded simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineOutcome {
    /// Reached the halt state after this many steps (configurations
    /// visited: steps + 1).
    Halted(usize),
    /// Still running (or jammed) after the step bound.
    Running,
}

/// A configuration snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Config {
    /// Current state.
    pub state: usize,
    /// Counter 1.
    pub c1: u64,
    /// Counter 2.
    pub c2: u64,
}

impl CounterMachine {
    /// A machine with `states` states, halting state `halt`, and no
    /// transitions (fill via [`CounterMachine::on`]).
    pub fn new(states: usize, halt: usize) -> Self {
        assert!(halt < states);
        CounterMachine {
            states,
            halt,
            rules: vec![[[None; 2]; 2]; states],
        }
    }

    /// Sets the transition for `(state, c1_zero, c2_zero)`.
    ///
    /// # Panics
    ///
    /// On out-of-range states or deltas, on decrements of a zero counter,
    /// or on transitions out of the halt state.
    #[must_use]
    pub fn on(mut self, state: usize, c1_zero: bool, c2_zero: bool, t: Transition) -> Self {
        assert!(state < self.states && t.next < self.states);
        assert!(state != self.halt, "halt state has no transitions");
        assert!((-1..=1).contains(&t.d1) && (-1..=1).contains(&t.d2));
        assert!(!(c1_zero && t.d1 < 0), "cannot decrement zero counter 1");
        assert!(!(c2_zero && t.d2 < 0), "cannot decrement zero counter 2");
        self.rules[state][usize::from(c1_zero)][usize::from(c2_zero)] = Some(t);
        self
    }

    /// Runs from the start configuration for at most `max_steps` steps.
    pub fn simulate(&self, max_steps: usize) -> MachineOutcome {
        let mut config = Config {
            state: 0,
            c1: 0,
            c2: 0,
        };
        for step in 0..=max_steps {
            if config.state == self.halt {
                return MachineOutcome::Halted(step);
            }
            if step == max_steps {
                break;
            }
            match self.step(config) {
                Some(next) => config = next,
                None => return MachineOutcome::Running, // jammed
            }
        }
        MachineOutcome::Running
    }

    /// One step from `config`, if a transition applies.
    pub fn step(&self, config: Config) -> Option<Config> {
        if config.state == self.halt {
            return None;
        }
        let t = self.rules[config.state][usize::from(config.c1 == 0)][usize::from(config.c2 == 0)]?;
        Some(Config {
            state: t.next,
            c1: config
                .c1
                .checked_add_signed(t.d1 as i64)
                .expect("counter underflow"),
            c2: config
                .c2
                .checked_add_signed(t.d2 as i64)
                .expect("counter underflow"),
        })
    }

    /// The configuration trace for `steps` steps (first entry is the start
    /// configuration; stops early at halt or jam).
    pub fn trace(&self, steps: usize) -> Vec<Config> {
        let mut out = vec![Config {
            state: 0,
            c1: 0,
            c2: 0,
        }];
        for _ in 0..steps {
            let last = *out.last().expect("nonempty");
            match self.step(last) {
                Some(next) => out.push(next),
                None => break,
            }
        }
        out
    }

    /// Sample: counts counter 1 up to `n`, then halts. Halts in exactly
    /// `n + 1` steps. States: 0 = counting, 1 = comparing... encoded with
    /// `n + 1` counting states for a bounded, explicit machine.
    pub fn count_up_and_halt(n: usize) -> CounterMachine {
        // States 0..n increment; state n+1 is halt.
        let states = n + 2;
        let halt = n + 1;
        let mut m = CounterMachine::new(states, halt);
        for s in 0..=n {
            let next = if s == n { halt } else { s + 1 };
            // Same move regardless of counter status.
            for z1 in [false, true] {
                for z2 in [false, true] {
                    m = m.on(s, z1, z2, Transition { next, d1: 1, d2: 0 });
                }
            }
        }
        m
    }

    /// Sample: increments counter 1 forever (never halts).
    pub fn run_forever() -> CounterMachine {
        let mut m = CounterMachine::new(2, 1);
        for z1 in [false, true] {
            for z2 in [false, true] {
                m = m.on(
                    0,
                    z1,
                    z2,
                    Transition {
                        next: 0,
                        d1: 1,
                        d2: 0,
                    },
                );
            }
        }
        m
    }

    /// Sample: pumps counter 1 up to `n`, drains it into counter 2, then
    /// halts when both are zero again... (drain leaves c2 = n, so it
    /// halts when c1 reaches zero). Exercises decrements and zero tests.
    pub fn pump_and_drain(n: usize) -> CounterMachine {
        // state 0: if c1 < n keep pumping — we encode the bound by
        // dedicated pump states 0..n-1, then a drain state.
        let pump_states = n.max(1);
        let drain = pump_states;
        let halt = pump_states + 1;
        let mut m = CounterMachine::new(pump_states + 2, halt);
        for s in 0..pump_states {
            let next = if s + 1 == pump_states { drain } else { s + 1 };
            for z1 in [false, true] {
                for z2 in [false, true] {
                    m = m.on(s, z1, z2, Transition { next, d1: 1, d2: 0 });
                }
            }
        }
        // Drain: while c1 > 0: c1--, c2++; when c1 == 0: halt.
        for z2 in [false, true] {
            m = m.on(
                drain,
                false,
                z2,
                Transition {
                    next: drain,
                    d1: -1,
                    d2: 1,
                },
            );
            m = m.on(
                drain,
                true,
                z2,
                Transition {
                    next: halt,
                    d1: 0,
                    d2: 0,
                },
            );
        }
        m
    }
}

impl fmt::Display for CounterMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "2-counter machine: {} states, halt = {}",
            self.states, self.halt
        )?;
        for (s, by_z1) in self.rules.iter().enumerate() {
            for (z1, by_z2) in by_z1.iter().enumerate() {
                for (z2, t) in by_z2.iter().enumerate() {
                    if let Some(t) = t {
                        writeln!(
                            f,
                            "  ({s}, c1{}0, c2{}0) -> state {}, d1={:+}, d2={:+}",
                            if z1 == 1 { "=" } else { ">" },
                            if z2 == 1 { "=" } else { ">" },
                            t.next,
                            t.d1,
                            t.d2
                        )?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_up_halts_in_n_plus_one_steps() {
        let m = CounterMachine::count_up_and_halt(3);
        assert_eq!(m.simulate(100), MachineOutcome::Halted(4));
        assert_eq!(m.simulate(3), MachineOutcome::Running); // bound too low
    }

    #[test]
    fn run_forever_never_halts() {
        let m = CounterMachine::run_forever();
        assert_eq!(m.simulate(10_000), MachineOutcome::Running);
    }

    #[test]
    fn pump_and_drain_moves_counters() {
        let m = CounterMachine::pump_and_drain(3);
        // 3 pump steps + 3 drain steps + 1 halt-detect step.
        let outcome = m.simulate(100);
        let MachineOutcome::Halted(steps) = outcome else {
            panic!("must halt")
        };
        assert_eq!(steps, 7);
        let trace = m.trace(steps);
        let last = trace.last().unwrap();
        assert_eq!(last.state, m.halt);
        assert_eq!(last.c1, 0);
        assert_eq!(last.c2, 3);
    }

    #[test]
    fn trace_records_configurations() {
        let m = CounterMachine::count_up_and_halt(2);
        let t = m.trace(10);
        assert_eq!(t.len(), 4); // start + 3 steps (then halt, no move)
        assert_eq!(
            t[0],
            Config {
                state: 0,
                c1: 0,
                c2: 0
            }
        );
        assert_eq!(t[3].state, m.halt);
        assert_eq!(t[3].c1, 3);
    }

    #[test]
    #[should_panic(expected = "zero counter")]
    fn decrement_of_zero_rejected() {
        let _ = CounterMachine::new(2, 1).on(
            0,
            true,
            true,
            Transition {
                next: 1,
                d1: -1,
                d2: 0,
            },
        );
    }

    #[test]
    fn jammed_machine_reports_running() {
        let m = CounterMachine::new(2, 1); // no transitions at all
        assert_eq!(m.simulate(5), MachineOutcome::Running);
    }
}
