//! Atomic default theories and tie-breaking as extension finding.
//!
//! The paper (§1, §3) notes that *"a version of the tie-breaking
//! semantics was proposed in \[PS\] as an extension-finding mechanism in
//! the context of default logic"*, and cites \[BF1\] for the correspondence
//! between default logic and stable models. This module makes that
//! connection executable for **atomic** default theories (facts and
//! default conclusions are propositional atoms):
//!
//! * a default `(p₁ ∧ … ∧ p_k : ¬j₁, …, ¬j_m / c)` corresponds to the
//!   rule `c ← p₁, …, p_k, not j₁, …, not j_m`;
//! * a set E of atoms is a Reiter **extension** iff E = Γ(E), where Γ(E)
//!   is the deductive closure of the facts W under the defaults whose
//!   justifications are consistent with E — exactly the Gelfond–Lifschitz
//!   construction, so extensions = stable models of the corresponding
//!   program with Δ = W;
//! * running the well-founded tie-breaking interpreter on that program is
//!   precisely the \[PS\] extension-finding procedure: on *even* theories
//!   (odd-cycle-free dependency graph) it always finds an extension.

use std::collections::BTreeSet;

use datalog_ast::{Atom, Database, GroundAtom, Literal, PredSym, Program, Rule};

/// One atomic default: `(prerequisites : ¬justifications / conclusion)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Default {
    /// Atoms that must already be derived for the default to apply.
    pub prerequisites: Vec<PredSym>,
    /// Atoms whose *absence from the extension* the default assumes
    /// (the justification of `¬j` is consistent iff `j ∉ E`).
    pub justifications_not: Vec<PredSym>,
    /// The concluded atom.
    pub conclusion: PredSym,
}

impl Default {
    /// Builder from names.
    pub fn new(prereqs: &[&str], not: &[&str], conclusion: &str) -> Self {
        Default {
            prerequisites: prereqs.iter().map(|p| PredSym::new(p)).collect(),
            justifications_not: not.iter().map(|p| PredSym::new(p)).collect(),
            conclusion: PredSym::new(conclusion),
        }
    }
}

/// An atomic default theory (W, D).
#[derive(Clone, Debug, Default)]
pub struct DefaultTheory {
    /// The facts W.
    pub facts: Vec<PredSym>,
    /// The defaults D.
    pub defaults: Vec<Default>,
}

impl DefaultTheory {
    /// Adds a fact.
    #[must_use]
    pub fn fact(mut self, name: &str) -> Self {
        self.facts.push(PredSym::new(name));
        self
    }

    /// Adds a default.
    #[must_use]
    pub fn default_rule(mut self, d: Default) -> Self {
        self.defaults.push(d);
        self
    }

    /// The corresponding logic program and database: one rule per
    /// default, Δ = W.
    pub fn to_program(&self) -> (Program, Database) {
        let rules: Vec<Rule> = self
            .defaults
            .iter()
            .map(|d| {
                let body = d
                    .prerequisites
                    .iter()
                    .map(|&p| Literal::pos(Atom::new(p, std::iter::empty())))
                    .chain(
                        d.justifications_not
                            .iter()
                            .map(|&j| Literal::neg(Atom::new(j, std::iter::empty()))),
                    )
                    .collect::<Vec<_>>();
                Rule::new(Atom::new(d.conclusion, std::iter::empty()), body)
            })
            .collect();
        let program = Program::new(rules).expect("propositional rules are consistent");
        let mut db = Database::new();
        for &f in &self.facts {
            db.insert(GroundAtom {
                pred: f,
                args: Box::new([]),
            })
            .expect("nullary facts");
        }
        (program, db)
    }

    /// Reiter's Γ operator for atomic theories: the closure of W under
    /// the defaults whose justifications are consistent with `candidate`
    /// and whose prerequisites are (recursively) derived.
    pub fn gamma(&self, candidate: &BTreeSet<PredSym>) -> BTreeSet<PredSym> {
        let mut derived: BTreeSet<PredSym> = self.facts.iter().copied().collect();
        loop {
            let mut changed = false;
            for d in &self.defaults {
                if derived.contains(&d.conclusion) {
                    continue;
                }
                let prereqs_ok = d.prerequisites.iter().all(|p| derived.contains(p));
                let justs_ok = d.justifications_not.iter().all(|j| !candidate.contains(j));
                if prereqs_ok && justs_ok {
                    derived.insert(d.conclusion);
                    changed = true;
                }
            }
            if !changed {
                return derived;
            }
        }
    }

    /// `true` iff `candidate` is an extension: Γ(E) = E.
    pub fn is_extension(&self, candidate: &BTreeSet<PredSym>) -> bool {
        self.gamma(candidate) == *candidate
    }

    /// All extensions, by brute force over the atoms mentioned by the
    /// theory (exponential; for validation on small theories).
    ///
    /// # Panics
    ///
    /// If the theory mentions more than 20 distinct atoms.
    pub fn extensions(&self) -> Vec<BTreeSet<PredSym>> {
        let mut atoms: Vec<PredSym> = Vec::new();
        let mut seen = BTreeSet::new();
        let mut note = |p: PredSym| {
            if seen.insert(p) {
                atoms.push(p);
            }
        };
        for &f in &self.facts {
            note(f);
        }
        for d in &self.defaults {
            for &p in &d.prerequisites {
                note(p);
            }
            for &j in &d.justifications_not {
                note(j);
            }
            note(d.conclusion);
        }
        assert!(atoms.len() <= 20, "brute-force extension search capped");
        let mut out = Vec::new();
        for mask in 0u32..(1 << atoms.len()) {
            let candidate: BTreeSet<PredSym> = atoms
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &p)| p)
                .collect();
            if self.is_extension(&candidate) {
                out.push(candidate);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ground::{ground, GroundConfig, TruthValue};
    use tiebreak_core::analysis::structural_totality;
    use tiebreak_core::semantics::enumerate::{enumerate_stable, EnumerateConfig};
    use tiebreak_core::semantics::tie_breaking::{well_founded_tie_breaking, RootTruePolicy};

    /// Extensions of the theory = stable models of the program (BF1/GL).
    fn cross_check(theory: &DefaultTheory) {
        let (program, db) = theory.to_program();
        let graph = ground(&program, &db, &GroundConfig::default()).unwrap();
        let stables = enumerate_stable(
            &graph,
            &program,
            &db,
            &EnumerateConfig {
                limit: 0,
                max_branch_atoms: 20,
            },
        )
        .unwrap();
        let stable_sets: Vec<BTreeSet<PredSym>> = stables
            .iter()
            .map(|m| {
                m.true_atoms(graph.atoms())
                    .into_iter()
                    .map(|a| a.pred)
                    .collect()
            })
            .collect();
        let mut extensions = theory.extensions();
        extensions.sort();
        let mut stable_sorted = stable_sets;
        stable_sorted.sort();
        assert_eq!(extensions, stable_sorted);
    }

    #[test]
    fn two_competing_defaults_two_extensions() {
        // ( : ¬b / a) and ( : ¬a / b): extensions {a} and {b}.
        let theory = DefaultTheory::default()
            .default_rule(Default::new(&[], &["b"], "a"))
            .default_rule(Default::new(&[], &["a"], "b"));
        let exts = theory.extensions();
        assert_eq!(exts.len(), 2);
        cross_check(&theory);
    }

    #[test]
    fn self_defeating_default_has_no_extension() {
        // ( : ¬a / a) — the default-logic odd loop.
        let theory = DefaultTheory::default().default_rule(Default::new(&[], &["a"], "a"));
        assert!(theory.extensions().is_empty());
        cross_check(&theory);
    }

    #[test]
    fn prerequisites_gate_application() {
        // W = {q}; (q : ¬r / s); (p : ¬r / t) — only the first applies.
        let theory = DefaultTheory::default()
            .fact("q")
            .default_rule(Default::new(&["q"], &["r"], "s"))
            .default_rule(Default::new(&["p"], &["r"], "t"));
        let exts = theory.extensions();
        assert_eq!(exts.len(), 1);
        let e = &exts[0];
        assert!(e.contains(&PredSym::new("q")));
        assert!(e.contains(&PredSym::new("s")));
        assert!(!e.contains(&PredSym::new("t")));
        cross_check(&theory);
    }

    #[test]
    fn tie_breaking_finds_extensions_of_even_theories() {
        // The [PS] mechanism: an even theory (no odd cycle among the
        // default dependencies) — WF-TB always lands on an extension.
        let theory = DefaultTheory::default()
            .fact("w")
            .default_rule(Default::new(&[], &["b"], "a"))
            .default_rule(Default::new(&[], &["a"], "b"))
            .default_rule(Default::new(&["w"], &["a"], "c"));
        let (program, db) = theory.to_program();
        assert!(structural_totality(&program).total, "even theory");
        let graph = ground(&program, &db, &GroundConfig::default()).unwrap();
        let mut policy = RootTruePolicy;
        let run = well_founded_tie_breaking(&graph, &program, &db, &mut policy).unwrap();
        assert!(run.total);
        let e: BTreeSet<PredSym> = graph
            .atoms()
            .ids()
            .filter(|&id| run.model.get(id) == TruthValue::True)
            .map(|id| graph.atoms().pred_of(id))
            .collect();
        assert!(theory.is_extension(&e), "WF-TB output is an extension");
    }

    #[test]
    fn gamma_is_monotone_in_derivation_but_antitone_in_candidate() {
        let theory = DefaultTheory::default()
            .fact("w")
            .default_rule(Default::new(&["w"], &["x"], "y"));
        let empty = BTreeSet::new();
        let with_x: BTreeSet<PredSym> = [PredSym::new("x")].into_iter().collect();
        let g_empty = theory.gamma(&empty);
        let g_with_x = theory.gamma(&with_x);
        assert!(g_empty.contains(&PredSym::new("y")));
        assert!(!g_with_x.contains(&PredSym::new("y")));
        assert!(g_with_x.is_subset(&g_empty));
    }
}
