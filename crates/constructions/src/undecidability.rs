//! The Theorem 6 reduction: halting of 2-counter machines → totality.
//!
//! Given a machine M, [`machine_to_program`] builds the paper's program
//! with IDB predicates `state(T, S)`, `count1(T, C)`, `count2(T, C)`, the
//! proposition `p`, and EDB predicates `zero`, `succ`, `less`:
//!
//! * initialization rules put M in state 0 with zero counters at time 0;
//! * each machine transition contributes three rules (one per IDB
//!   predicate) guarded by the zero-status literals and the `[S = s]`
//!   chain abbreviation `zero(A₀), succ(A₀, A₁), …, succ(A_{s-1}, S)`;
//! * the **troublesome rule** `p ← ¬p, state(T, S), [S = h]`;
//! * repair rules that derive `p` outright on databases where `zero` /
//!   `succ` / `less` do not have their natural meaning.
//!
//! M halts ⟺ the program is **not** nonuniformly total: on the natural
//! database of a halting run the troublesome rule reduces to `p ← ¬p`; on
//! every database, a non-halting M admits a fixpoint. [`uniformize`]
//! applies the proof's `q`-transformation for the uniform case.

use datalog_ast::{Atom, Database, GroundAtom, Literal, Program, Rule, Term};

use crate::counter_machine::CounterMachine;

/// Fresh-variable factory for one rule under construction.
struct RuleVars {
    counter: usize,
}

impl RuleVars {
    fn new() -> Self {
        RuleVars { counter: 0 }
    }

    fn fresh(&mut self, prefix: &str) -> Term {
        self.counter += 1;
        Term::var(&format!("{}{}", prefix, self.counter))
    }
}

/// Appends the `[var = n]` chain: `zero(A0), succ(A0, A1), …,
/// succ(A_{n-1}, var)`; for n = 0 this is just `zero(var)`.
fn eq_chain(body: &mut Vec<Literal>, vars: &mut RuleVars, var: Term, n: usize) {
    if n == 0 {
        body.push(Literal::pos(Atom::new("zero", [var])));
        return;
    }
    let mut prev = vars.fresh("A");
    body.push(Literal::pos(Atom::new("zero", [prev])));
    for _ in 0..n - 1 {
        let next = vars.fresh("A");
        body.push(Literal::pos(Atom::new("succ", [prev, next])));
        prev = next;
    }
    body.push(Literal::pos(Atom::new("succ", [prev, var])));
}

/// Builds the Theorem 6 program for machine `m`.
pub fn machine_to_program(m: &CounterMachine) -> Program {
    let mut rules: Vec<Rule> = Vec::new();
    let t = Term::var("T");
    let s = Term::var("S");
    let c1 = Term::var("C1");
    let c2 = Term::var("C2");
    let t2 = Term::var("T2");

    // Initialization.
    rules.push(Rule::new(
        Atom::new("state", [t, s]),
        vec![
            Literal::pos(Atom::new("zero", [t])),
            Literal::pos(Atom::new("zero", [s])),
        ],
    ));
    rules.push(Rule::new(
        Atom::new("count1", [t, c1]),
        vec![
            Literal::pos(Atom::new("zero", [t])),
            Literal::pos(Atom::new("zero", [c1])),
        ],
    ));
    rules.push(Rule::new(
        Atom::new("count2", [t, c2]),
        vec![
            Literal::pos(Atom::new("zero", [t])),
            Literal::pos(Atom::new("zero", [c2])),
        ],
    ));

    // Transition rules.
    for (state, by_z1) in m.rules.iter().enumerate() {
        for (z1, by_z2) in by_z1.iter().enumerate() {
            for (z2, transition) in by_z2.iter().enumerate() {
                let Some(tr) = transition else { continue };
                let z1 = z1 == 1;
                let z2 = z2 == 1;

                // The common body shared by the three rules.
                let common = |vars: &mut RuleVars| -> Vec<Literal> {
                    let mut body = vec![
                        Literal::pos(Atom::new("state", [t, s])),
                        Literal::pos(Atom::new("count1", [t, c1])),
                        Literal::pos(Atom::new("count2", [t, c2])),
                        Literal::pos(Atom::new("succ", [t, t2])),
                    ];
                    let zero_lit = |v: Term, is_zero: bool| {
                        let atom = Atom::new("zero", [v]);
                        if is_zero {
                            Literal::pos(atom)
                        } else {
                            Literal::neg(atom)
                        }
                    };
                    body.push(zero_lit(c1, z1));
                    body.push(zero_lit(c2, z2));
                    eq_chain(&mut body, vars, s, state);
                    body
                };

                // STATE rule: state(T2, S2) with [S2 = next].
                {
                    let mut vars = RuleVars::new();
                    let mut body = common(&mut vars);
                    let s2 = Term::var("SN");
                    eq_chain(&mut body, &mut vars, s2, tr.next);
                    rules.push(Rule::new(Atom::new("state", [t2, s2]), body));
                }
                // COUNT1 rule.
                {
                    let mut vars = RuleVars::new();
                    let mut body = common(&mut vars);
                    let head_arg = match tr.d1 {
                        0 => c1,
                        1 => {
                            let d = Term::var("D1");
                            body.push(Literal::pos(Atom::new("succ", [c1, d])));
                            d
                        }
                        -1 => {
                            let d = Term::var("D1");
                            body.push(Literal::pos(Atom::new("succ", [d, c1])));
                            d
                        }
                        _ => unreachable!("validated delta"),
                    };
                    rules.push(Rule::new(Atom::new("count1", [t2, head_arg]), body));
                }
                // COUNT2 rule.
                {
                    let mut vars = RuleVars::new();
                    let mut body = common(&mut vars);
                    let head_arg = match tr.d2 {
                        0 => c2,
                        1 => {
                            let d = Term::var("D2");
                            body.push(Literal::pos(Atom::new("succ", [c2, d])));
                            d
                        }
                        -1 => {
                            let d = Term::var("D2");
                            body.push(Literal::pos(Atom::new("succ", [d, c2])));
                            d
                        }
                        _ => unreachable!("validated delta"),
                    };
                    rules.push(Rule::new(Atom::new("count2", [t2, head_arg]), body));
                }
            }
        }
    }

    // The troublesome rule: p ← ¬p, state(T, S), [S = h].
    {
        let mut vars = RuleVars::new();
        let mut body = vec![
            Literal::neg(Atom::new("p", [])),
            Literal::pos(Atom::new("state", [t, s])),
        ];
        eq_chain(&mut body, &mut vars, s, m.halt);
        rules.push(Rule::new(Atom::new("p", []), body));
    }

    // Repair rules for unnatural databases.
    let x = Term::var("X");
    let y = Term::var("Y");
    let z = Term::var("Z");
    // (1a) p ← succ(X, Y), ¬less(X, Y).
    rules.push(Rule::new(
        Atom::new("p", []),
        vec![
            Literal::pos(Atom::new("succ", [x, y])),
            Literal::neg(Atom::new("less", [x, y])),
        ],
    ));
    // (1b) p ← succ(X, Y), less(Y, Z), ¬less(X, Z).
    rules.push(Rule::new(
        Atom::new("p", []),
        vec![
            Literal::pos(Atom::new("succ", [x, y])),
            Literal::pos(Atom::new("less", [y, z])),
            Literal::neg(Atom::new("less", [x, z])),
        ],
    ));
    // (2) p ← state(T, S), state(T, S2), [S2 = h], less(S, S2).
    {
        let mut vars = RuleVars::new();
        let s2 = Term::var("SH");
        let mut body = vec![
            Literal::pos(Atom::new("state", [t, s])),
            Literal::pos(Atom::new("state", [t, s2])),
        ];
        eq_chain(&mut body, &mut vars, s2, m.halt);
        body.push(Literal::pos(Atom::new("less", [s, s2])));
        rules.push(Rule::new(Atom::new("p", []), body));
    }

    Program::new(rules).expect("reduction is arity-consistent")
}

/// The natural database over constants `0..=t_max`: `zero(0)`,
/// `succ(i, i+1)`, and `less(i, j)` for i < j. IDB relations empty.
pub fn natural_database(t_max: usize) -> Database {
    let mut db = Database::new();
    let name = |i: usize| i.to_string();
    db.insert(GroundAtom::from_texts("zero", &[&name(0)]))
        .expect("facts");
    for i in 0..t_max {
        db.insert(GroundAtom::from_texts("succ", &[&name(i), &name(i + 1)]))
            .expect("facts");
    }
    for i in 0..=t_max {
        for j in i + 1..=t_max {
            db.insert(GroundAtom::from_texts("less", &[&name(i), &name(j)]))
                .expect("facts");
        }
    }
    db
}

/// The proof's uniform-case transformation: every rule gets the extra
/// body literal `¬q`, and for every IDB predicate Q of the input a rule
/// `q ← Q(Z₁, …, Z_k), q` is added.
pub fn uniformize(program: &Program) -> Program {
    let q = Atom::new("q", []);
    let mut rules: Vec<Rule> = program
        .rules()
        .iter()
        .map(|r| {
            let mut body = r.body.clone();
            body.push(Literal::neg(q.clone()));
            Rule::new(r.head.clone(), body)
        })
        .collect();
    for pred in program.idb_predicates() {
        let arity = program.arity(pred).expect("known predicate");
        let args: Vec<Term> = (0..arity)
            .map(|i| Term::var(&format!("Z{}", i + 1)))
            .collect();
        rules.push(Rule::new(
            q.clone(),
            vec![Literal::pos(Atom::new(pred, args)), Literal::pos(q.clone())],
        ));
    }
    Program::new(rules).expect("uniformization is arity-consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter_machine::{CounterMachine, MachineOutcome};
    use datalog_ground::{ground, GroundConfig, TruthValue};
    use tiebreak_core::semantics::enumerate::{enumerate_fixpoints, EnumerateConfig};
    use tiebreak_core::semantics::well_founded::well_founded;

    fn has_fixpoint(program: &Program, db: &Database) -> bool {
        let g = ground(program, db, &GroundConfig::default()).unwrap();
        !enumerate_fixpoints(
            &g,
            program,
            db,
            &EnumerateConfig {
                limit: 1,
                max_branch_atoms: 25,
            },
        )
        .unwrap()
        .is_empty()
    }

    #[test]
    fn simulation_rules_reproduce_the_trace() {
        // Pump-and-drain exercises increments, decrements, zero tests.
        let m = CounterMachine::pump_and_drain(1);
        let MachineOutcome::Halted(steps) = m.simulate(100) else {
            panic!("halts")
        };
        let program = machine_to_program(&m);
        let db = natural_database(steps);
        let g = ground(&program, &db, &GroundConfig::default()).unwrap();
        let run = well_founded(&g, &program, &db).unwrap();
        // The machine reaches the halt state, so the troublesome rule
        // reduces to p ← ¬p and the WF model cannot be total — but all
        // state/count atoms are decided. Check the trace is reproduced.
        for (time, cfg) in m.trace(steps).iter().enumerate() {
            let atom =
                GroundAtom::from_texts("state", &[&time.to_string(), &cfg.state.to_string()]);
            let id = g.atoms().id_of(&atom).unwrap();
            assert_eq!(run.model.get(id), TruthValue::True, "missing {atom}");
            let c1 = GroundAtom::from_texts("count1", &[&time.to_string(), &cfg.c1.to_string()]);
            assert_eq!(
                run.model.get(g.atoms().id_of(&c1).unwrap()),
                TruthValue::True,
                "missing {c1}"
            );
        }
    }

    #[test]
    fn halting_machine_has_no_fixpoint_on_the_natural_database() {
        let m = CounterMachine::count_up_and_halt(1); // halts in 2 steps
        let MachineOutcome::Halted(steps) = m.simulate(10) else {
            panic!("halts")
        };
        let program = machine_to_program(&m);
        let db = natural_database(steps);
        assert!(!has_fixpoint(&program, &db));
    }

    #[test]
    fn nonhalting_machine_has_fixpoints() {
        let m = CounterMachine::run_forever();
        let program = machine_to_program(&m);
        for t in 1..=3 {
            let db = natural_database(t);
            assert!(has_fixpoint(&program, &db), "t_max = {t}");
        }
    }

    #[test]
    fn repair_rules_fire_on_unnatural_databases() {
        // succ present but less empty: rule (1a) derives p, so the
        // troublesome rule is disabled and a fixpoint exists.
        let m = CounterMachine::count_up_and_halt(1);
        let program = machine_to_program(&m);
        let mut db = Database::new();
        db.insert_texts("zero", &["0"]);
        db.insert_texts("succ", &["0", "1"]);
        db.insert_texts("succ", &["1", "2"]);
        // no less facts at all
        let g = ground(&program, &db, &GroundConfig::default()).unwrap();
        let run = well_founded(&g, &program, &db).unwrap();
        assert!(run.total, "repair rule must fire and settle everything");
        let p = g.atoms().atom_id("p".into(), &[]).unwrap();
        assert_eq!(run.model.get(p), TruthValue::True);
        assert!(has_fixpoint(&program, &db));
    }

    #[test]
    fn uniformized_program_mirrors_nonuniform_behaviour() {
        let m = CounterMachine::count_up_and_halt(0); // halts in 1 step
        let MachineOutcome::Halted(steps) = m.simulate(10) else {
            panic!("halts")
        };
        let base = machine_to_program(&m);
        let uni = uniformize(&base);

        // (a) IDB-empty Δ: still no fixpoint (q must be false).
        let db = natural_database(steps);
        assert!(!has_fixpoint(&uni, &db));

        // (b) Δ ∋ q: fixpoint exists (q true disables every rule).
        let mut db_q = natural_database(steps);
        db_q.insert_texts("q", &[]);
        assert!(has_fixpoint(&uni, &db_q));

        // (c) Δ contains an IDB fact: fixpoint exists (q supported via
        // the new q ← Q(z), q rule).
        let mut db_idb = natural_database(steps);
        db_idb.insert_texts("state", &["0", "0"]);
        assert!(has_fixpoint(&uni, &db_idb));
    }

    #[test]
    fn natural_database_shape() {
        let db = natural_database(3);
        assert!(db.contains(&GroundAtom::from_texts("zero", &["0"])));
        assert!(db.contains(&GroundAtom::from_texts("succ", &["2", "3"])));
        assert!(db.contains(&GroundAtom::from_texts("less", &["0", "3"])));
        assert!(!db.contains(&GroundAtom::from_texts("less", &["3", "0"])));
        // 1 zero + 3 succ + 6 less.
        assert_eq!(db.len(), 10);
    }
}
