//! The alphabetic-variant constructions of Theorems 2, 3, and 5.
//!
//! Given a program whose (possibly reduced) program graph contains a cycle
//! with an odd number of negative edges, the proofs construct a program
//! with the **same skeleton** and a database for which *no fixpoint
//! exists*. Four constructions are implemented:
//!
//! * [`theorem2_unary_variant`] — all predicates unary, constants a, b, c;
//!   Δ = {Q(b) : every predicate Q} (uniform case);
//! * [`theorem2_ternary_variant`] — constant-free, all predicates ternary,
//!   equality patterns simulate the constants; Δ = {Q(d,d,d) : d ∈ {1,2}};
//! * [`theorem3_binary_variant`] — all predicates binary, constants a, b;
//!   EDB relations = {(a, b)}, IDBs empty (nonuniform case);
//! * [`theorem3_quaternary_variant`] — constant-free nonuniform variant
//!   with 4-ary predicates; EDB relations = {(1, 2, 2, 2)}.
//!
//! The same machinery drives Theorem 5 (structural well-founded totality):
//! starting from a cycle that merely *contains* a negative edge, the
//! constructed variant has no total well-founded model.
//!
//! A technical preliminary handled here: the odd-cycle witnesses produced
//! by the analyses may be non-simple walks; [`extract_simple_odd_cycle`]
//! excises even sub-cycles until a *simple* odd cycle remains, so that
//! each arc can be realized by a distinct rule of the program.

use datalog_ast::{
    Atom, Database, FxHashMap, GroundAtom, Literal, PredSym, Program, Rule, Sign, Term,
};
use tiebreak_core::analysis::{PredCycle, UselessAnalysis};

/// One arc of the cycle, realized by a concrete rule and body literal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArcRealization {
    /// Source predicate of the arc.
    pub from: PredSym,
    /// Target predicate (the head of the realizing rule).
    pub to: PredSym,
    /// `true` iff the arc is negative.
    pub negative: bool,
    /// Index of the realizing rule in the source program.
    pub rule_index: usize,
    /// Index of the body literal `(¬)from` within that rule.
    pub literal_index: usize,
}

/// A simple odd cycle with every arc realized by a distinct rule.
#[derive(Clone, Debug)]
pub struct CycleRealization {
    /// The arcs in cycle order: `arcs[i].to == arcs[(i+1) % n].from`.
    pub arcs: Vec<ArcRealization>,
}

impl CycleRealization {
    /// The arc realized by rule `rule_index`, if any.
    pub fn arc_for_rule(&self, rule_index: usize) -> Option<&ArcRealization> {
        self.arcs.iter().find(|a| a.rule_index == rule_index)
    }

    /// Number of negative arcs (always odd for Theorem 2/3 realizations).
    pub fn negative_count(&self) -> usize {
        self.arcs.iter().filter(|a| a.negative).count()
    }
}

/// Excises even sub-cycles from a closed walk until a **simple** cycle of
/// the same parity remains. For an odd input walk the result is a simple
/// odd cycle; for a walk with ≥1 negative edge but even parity (Theorem 5
/// witnesses), pass `require_odd = false` to instead obtain a simple cycle
/// containing a negative edge.
pub fn extract_simple_odd_cycle(cycle: &PredCycle, require_odd: bool) -> PredCycle {
    let n = cycle.preds.len();
    assert!(n > 0, "empty cycle");

    if require_odd {
        assert_eq!(cycle.negative_count % 2, 1, "input walk must be odd");
    }

    // Stack of visited nodes; entering[i] = sign of the edge arriving at
    // stack[i] from stack[i-1] (entering[0] unused).
    let mut stack: Vec<PredSym> = vec![cycle.preds[0]];
    let mut entering: Vec<bool> = vec![false];
    let mut pos: FxHashMap<PredSym, usize> = FxHashMap::default();
    pos.insert(cycle.preds[0], 0);

    for i in 0..n {
        let next = cycle.preds[(i + 1) % n];
        let sign = cycle.negative_steps[i];
        if let Some(&j) = pos.get(&next) {
            // Closing a sub-cycle stack[j..] + this edge.
            let mut negs: Vec<bool> = entering[j + 1..].to_vec();
            negs.push(sign);
            let parity = negs.iter().filter(|&&b| b).count() % 2 == 1;
            let keep = if require_odd {
                parity
            } else {
                negs.iter().any(|&b| b)
            };
            if keep {
                let preds: Vec<PredSym> = stack[j..].to_vec();
                let negative_count = negs.iter().filter(|&&b| b).count();
                return PredCycle {
                    preds,
                    negative_steps: negs,
                    negative_count,
                };
            }
            // Excise the even (or negative-free) sub-cycle.
            for node in &stack[j + 1..] {
                pos.remove(node);
            }
            stack.truncate(j + 1);
            entering.truncate(j + 1);
        } else {
            pos.insert(next, stack.len());
            stack.push(next);
            entering.push(sign);
        }
    }
    unreachable!("a closed walk of the requested parity must contain a matching simple cycle");
}

/// Realizes every arc of (a simple odd sub-cycle of) `cycle` by a distinct
/// rule of `program`. Returns `None` if some arc has no realizing rule —
/// impossible for witnesses produced from `program`'s own graph.
pub fn realize_cycle(program: &Program, cycle: &PredCycle) -> Option<CycleRealization> {
    realize(program, cycle, true, None)
}

/// Like [`realize_cycle`] but for cycles of the **reduced** graph G(Π′)
/// (Theorem 3): realizing rules must survive reduction (no positive
/// useless body occurrence), and negative arcs must not come from
/// stripped useless literals.
pub fn realize_cycle_nonuniform(
    program: &Program,
    analysis: &UselessAnalysis,
    cycle: &PredCycle,
) -> Option<CycleRealization> {
    realize(program, cycle, true, Some(analysis))
}

/// Realizes a cycle that merely contains a negative edge (Theorem 5).
pub fn realize_negative_cycle(program: &Program, cycle: &PredCycle) -> Option<CycleRealization> {
    realize(program, cycle, false, None)
}

fn realize(
    program: &Program,
    cycle: &PredCycle,
    require_odd: bool,
    reduced: Option<&UselessAnalysis>,
) -> Option<CycleRealization> {
    let simple = extract_simple_odd_cycle(cycle, require_odd);
    let n = simple.preds.len();
    let mut arcs = Vec::with_capacity(n);
    for i in 0..n {
        let from = simple.preds[i];
        let to = simple.preds[(i + 1) % n];
        let negative = simple.negative_steps[i];
        let want = if negative { Sign::Neg } else { Sign::Pos };
        let found = program.rules().iter().enumerate().find_map(|(ri, rule)| {
            if rule.head.pred != to {
                return None;
            }
            if let Some(analysis) = reduced {
                // The rule must survive reduction.
                if rule
                    .body
                    .iter()
                    .any(|l| l.is_pos() && analysis.is_useless(l.atom.pred))
                {
                    return None;
                }
                // A stripped literal cannot realize the arc.
                if negative && analysis.is_useless(from) {
                    return None;
                }
            }
            rule.body
                .iter()
                .position(|l| l.sign == want && l.atom.pred == from)
                .map(|li| ArcRealization {
                    from,
                    to,
                    negative,
                    rule_index: ri,
                    literal_index: li,
                })
        })?;
        arcs.push(found);
    }
    Some(CycleRealization { arcs })
}

/// Argument patterns used by the four constructions.
struct Patterns {
    /// Pattern for the distinguished cycle positions (`a` in the proofs).
    cycle_head: Vec<Term>,
    /// Pattern for the cycle body literal; for the nonuniform variants the
    /// negative case differs from the positive case.
    cycle_body_pos: Vec<Term>,
    cycle_body_neg: Vec<Term>,
    /// Pattern for every other positive occurrence (`b`).
    other_pos: Vec<Term>,
    /// Pattern for every other negative occurrence (`c`).
    other_neg: Vec<Term>,
}

/// Rewrites `program` along `realization` using `patterns`, preserving the
/// skeleton (same rules, same predicate signs, new arguments).
fn rewrite(program: &Program, realization: &CycleRealization, patterns: &Patterns) -> Program {
    let rules: Vec<Rule> = program
        .rules()
        .iter()
        .enumerate()
        .map(|(ri, rule)| {
            let arc = realization.arc_for_rule(ri);
            let head = match arc {
                Some(a) if rule.head.pred == a.to => Atom {
                    pred: rule.head.pred,
                    args: patterns.cycle_head.clone(),
                },
                _ => Atom {
                    pred: rule.head.pred,
                    args: patterns.other_pos.clone(),
                },
            };
            let body: Vec<Literal> = rule
                .body
                .iter()
                .enumerate()
                .map(|(li, lit)| {
                    let is_cycle_literal = arc.is_some_and(|a| a.literal_index == li);
                    let args = if is_cycle_literal {
                        if lit.is_neg() {
                            patterns.cycle_body_neg.clone()
                        } else {
                            patterns.cycle_body_pos.clone()
                        }
                    } else if lit.is_pos() {
                        patterns.other_pos.clone()
                    } else {
                        patterns.other_neg.clone()
                    };
                    Literal {
                        sign: lit.sign,
                        atom: Atom {
                            pred: lit.atom.pred,
                            args,
                        },
                    }
                })
                .collect();
            Rule::new(head, body)
        })
        .collect();
    Program::new(rules).expect("rewrite preserves arity consistency")
}

fn consts(names: &[&str]) -> Vec<Term> {
    names.iter().map(|n| Term::constant(n)).collect()
}

fn vars(names: &[&str]) -> Vec<Term> {
    names.iter().map(|n| Term::var(n)).collect()
}

/// Theorem 2's unary construction: an alphabetic variant with no fixpoint
/// for Δ = {Q(b) : all predicates Q} (uniform case).
pub fn theorem2_unary_variant(
    program: &Program,
    realization: &CycleRealization,
) -> (Program, Database) {
    let patterns = Patterns {
        cycle_head: consts(&["a"]),
        cycle_body_pos: consts(&["a"]),
        cycle_body_neg: consts(&["a"]),
        other_pos: consts(&["b"]),
        other_neg: consts(&["c"]),
    };
    let variant = rewrite(program, realization, &patterns);
    let mut delta = Database::new();
    for &pred in program.predicates() {
        delta
            .insert(GroundAtom::from_texts(pred.as_str(), &["b"]))
            .expect("unary facts");
    }
    (variant, delta)
}

/// Theorem 2's constant-free construction: ternary predicates, equality
/// patterns (x, y, y) / (y, y, y) / (x, x, y) in place of a / b / c;
/// Δ = {Q(d, d, d) : d ∈ {1, 2}, all predicates Q}.
pub fn theorem2_ternary_variant(
    program: &Program,
    realization: &CycleRealization,
) -> (Program, Database) {
    let patterns = Patterns {
        cycle_head: vars(&["X", "Y", "Y"]),
        cycle_body_pos: vars(&["X", "Y", "Y"]),
        cycle_body_neg: vars(&["X", "Y", "Y"]),
        other_pos: vars(&["Y", "Y", "Y"]),
        other_neg: vars(&["X", "X", "Y"]),
    };
    let variant = rewrite(program, realization, &patterns);
    let mut delta = Database::new();
    for &pred in program.predicates() {
        for d in ["1", "2"] {
            delta
                .insert(GroundAtom::from_texts(pred.as_str(), &[d, d, d]))
                .expect("ternary facts");
        }
    }
    (variant, delta)
}

/// Theorem 3's binary construction (nonuniform case): positive arcs become
/// `P_{i+1}(a, x) ← P_i(a, x), …`, negative arcs
/// `P_{i+1}(a, x) ← ¬P_i(x, a), …`; other positives Q(a, b), other
/// negatives ¬Q(b, a). EDB relations = {(a, b)}, IDBs empty.
pub fn theorem3_binary_variant(
    program: &Program,
    realization: &CycleRealization,
) -> (Program, Database) {
    let patterns = Patterns {
        cycle_head: vec![Term::constant("a"), Term::var("X")],
        cycle_body_pos: vec![Term::constant("a"), Term::var("X")],
        cycle_body_neg: vec![Term::var("X"), Term::constant("a")],
        other_pos: consts(&["a", "b"]),
        other_neg: consts(&["b", "a"]),
    };
    let variant = rewrite(program, realization, &patterns);
    let mut delta = Database::new();
    for pred in program.edb_predicates() {
        delta
            .insert(GroundAtom::from_texts(pred.as_str(), &["a", "b"]))
            .expect("binary facts");
    }
    (variant, delta)
}

/// Theorem 3's constant-free construction: 4-ary predicates; positive arcs
/// `P_{i+1}(x, y, y, z) ← P_i(x, y, y, z)`, negative arcs
/// `P_{i+1}(x, y, y, z) ← ¬P_i(y, x, y, z)`; other positives
/// Q(x, z, z, z), other negatives ¬Q(z, x, z, z). EDB relations =
/// {(1, 2, 2, 2)}, IDBs empty.
pub fn theorem3_quaternary_variant(
    program: &Program,
    realization: &CycleRealization,
) -> (Program, Database) {
    let patterns = Patterns {
        cycle_head: vars(&["X", "Y", "Y", "Z"]),
        cycle_body_pos: vars(&["X", "Y", "Y", "Z"]),
        cycle_body_neg: vars(&["Y", "X", "Y", "Z"]),
        other_pos: vars(&["X", "Z", "Z", "Z"]),
        other_neg: vars(&["Z", "X", "Z", "Z"]),
    };
    let variant = rewrite(program, realization, &patterns);
    let mut delta = Database::new();
    for pred in program.edb_predicates() {
        delta
            .insert(GroundAtom::from_texts(pred.as_str(), &["1", "2", "2", "2"]))
            .expect("quaternary facts");
    }
    (variant, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::parse_program;
    use datalog_ground::{ground, GroundConfig};
    use tiebreak_core::analysis::{stratify, structural_totality, useless_predicates};
    use tiebreak_core::semantics::enumerate::{enumerate_fixpoints, EnumerateConfig};
    use tiebreak_core::semantics::well_founded::well_founded;

    fn no_fixpoint(program: &Program, delta: &Database) -> bool {
        let g = ground(program, delta, &GroundConfig::default()).unwrap();
        enumerate_fixpoints(
            &g,
            program,
            delta,
            &EnumerateConfig {
                limit: 1,
                max_branch_atoms: 30,
            },
        )
        .unwrap()
        .is_empty()
    }

    #[test]
    fn simple_odd_extraction_from_nonsimple_walk() {
        // Walk p -¬-> q -+-> p -¬-> r -¬-> p : parity 3 (odd), but node p
        // repeats. The extractor must find a simple odd sub-cycle.
        let walk = PredCycle {
            preds: vec!["p".into(), "q".into(), "p".into(), "r".into()],
            negative_steps: vec![true, false, true, true],
            negative_count: 3,
        };
        let simple = extract_simple_odd_cycle(&walk, true);
        assert_eq!(simple.negative_count % 2, 1);
        // Simple: no repeated predicates.
        let mut sorted: Vec<_> = simple.preds.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), simple.preds.len());
    }

    #[test]
    fn program_1_unary_variant_has_no_fixpoint() {
        // Paper's program (1): total, but not structurally total. The
        // construction produces a same-skeleton program with no fixpoint.
        let p = parse_program("p(a) :- not p(X), e(b).").unwrap();
        let st = structural_totality(&p);
        assert!(!st.total);
        let real = realize_cycle(&p, &st.witness.unwrap()).unwrap();
        let (variant, delta) = theorem2_unary_variant(&p, &real);
        assert!(p.is_alphabetic_variant_of(&variant));
        assert!(no_fixpoint(&variant, &delta));
    }

    #[test]
    fn odd_three_cycle_unary_variant() {
        let p = parse_program("p :- not q.\nq :- not r.\nr :- not p.").unwrap();
        let st = structural_totality(&p);
        let real = realize_cycle(&p, &st.witness.unwrap()).unwrap();
        assert_eq!(real.negative_count(), 3);
        let (variant, delta) = theorem2_unary_variant(&p, &real);
        assert!(p.is_alphabetic_variant_of(&variant));
        assert!(no_fixpoint(&variant, &delta));
    }

    #[test]
    fn ternary_constant_free_variant_has_no_fixpoint() {
        let p = parse_program("p(a) :- not p(X), e(b).").unwrap();
        let st = structural_totality(&p);
        let real = realize_cycle(&p, &st.witness.unwrap()).unwrap();
        let (variant, delta) = theorem2_ternary_variant(&p, &real);
        assert!(p.is_alphabetic_variant_of(&variant));
        // Constant-free: the variant's rules mention no constants.
        assert!(variant.constants().is_empty());
        assert!(no_fixpoint(&variant, &delta));
    }

    #[test]
    fn theorem3_binary_variant_kills_nonuniform_totality() {
        // Odd cycle on *useful* predicates: g is useful via e.
        let p = parse_program("g :- e.\np :- not p, g.").unwrap();
        let analysis = useless_predicates(&p);
        assert!(analysis.useless.is_empty());
        let st = structural_totality(&p);
        let real = realize_cycle_nonuniform(&p, &analysis, &st.witness.unwrap()).unwrap();
        let (variant, delta) = theorem3_binary_variant(&p, &real);
        assert!(p.is_alphabetic_variant_of(&variant));
        assert!(delta.idb_is_empty(&variant));
        assert!(no_fixpoint(&variant, &delta));
    }

    #[test]
    fn theorem3_quaternary_variant_kills_nonuniform_totality() {
        let p = parse_program("g :- e.\np :- not p, g.").unwrap();
        let analysis = useless_predicates(&p);
        let st = structural_totality(&p);
        let real = realize_cycle_nonuniform(&p, &analysis, &st.witness.unwrap()).unwrap();
        let (variant, delta) = theorem3_quaternary_variant(&p, &real);
        assert!(p.is_alphabetic_variant_of(&variant));
        assert!(variant.constants().is_empty());
        assert!(delta.idb_is_empty(&variant));
        assert!(no_fixpoint(&variant, &delta));
    }

    #[test]
    fn theorem5_variant_defeats_well_founded() {
        // p ← ¬q ; q ← ¬p: structurally total (even cycle) but NOT
        // stratified. Theorem 5: some variant has no total WF model — for
        // this program every variant does, e.g. the unary rewrite.
        let p = parse_program("p(X) :- not q(X).\nq(X) :- not p(X).").unwrap();
        let strat = stratify(&p);
        assert!(!strat.stratified);
        let real = realize_negative_cycle(&p, &strat.witness.unwrap()).unwrap();
        let (variant, delta) = theorem2_unary_variant(&p, &real);
        assert!(p.is_alphabetic_variant_of(&variant));
        let g = ground(&variant, &delta, &GroundConfig::default()).unwrap();
        let run = well_founded(&g, &variant, &delta).unwrap();
        assert!(!run.total, "well-founded must get stuck on the variant");
        // ... while a fixpoint still exists (the cycle is even).
        assert!(!no_fixpoint(&variant, &delta));
    }

    #[test]
    fn realization_uses_distinct_rules() {
        let p = parse_program("p :- not q.\nq :- not r.\nr :- not p.").unwrap();
        let st = structural_totality(&p);
        let real = realize_cycle(&p, &st.witness.unwrap()).unwrap();
        let mut rules: Vec<usize> = real.arcs.iter().map(|a| a.rule_index).collect();
        rules.sort_unstable();
        rules.dedup();
        assert_eq!(rules.len(), real.arcs.len());
    }

    #[test]
    fn win_move_unary_variant() {
        // The classic rule also yields a Theorem 2 witness.
        let p = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        let st = structural_totality(&p);
        let real = realize_cycle(&p, &st.witness.unwrap()).unwrap();
        let (variant, delta) = theorem2_unary_variant(&p, &real);
        assert!(no_fixpoint(&variant, &delta));
    }
}
