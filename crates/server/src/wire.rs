//! Length-prefixed framing for the session wire protocol.
//!
//! A frame is a 4-byte big-endian payload length followed by that many
//! payload bytes. Requests and responses use the same framing; payloads
//! are UTF-8 text (the server validates and answers `error …` on
//! anything else, without trusting the bytes).
//!
//! The length prefix is the only thing read before validation, so the
//! parser's failure modes are exactly three and all are cheap:
//!
//! * clean EOF between frames — the peer closed, [`read_frame`] returns
//!   `Ok(None)`;
//! * a truncated frame (EOF inside the header or payload) — an
//!   [`WireError::Io`] with `UnexpectedEof`;
//! * an oversized length — [`WireError::Oversized`] *before* any
//!   allocation or payload read. The stream is desynchronized at that
//!   point (the payload was never consumed), so the connection must be
//!   closed; a malicious 4 GiB length costs four bytes of reading and
//!   no memory.

use std::io::{self, Read, Write};

/// Default cap on a single frame's payload (4 MiB) — generous for
/// program + database sources, small enough that a hostile length
/// prefix cannot balloon server memory.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 4 << 20;

/// Errors reading a frame off the wire.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed (including truncated frames).
    Io(io::Error),
    /// The peer announced a payload larger than the configured cap. The
    /// payload was not consumed: the stream is desynchronized and the
    /// connection should be closed after reporting the error.
    Oversized {
        /// The announced payload length.
        len: u32,
        /// The configured cap.
        max: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte frame cap")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one frame (length prefix + payload) and flushes.
///
/// # Errors
///
/// Transport errors; payloads over `u32::MAX` bytes are a caller bug
/// and reported as `InvalidInput` rather than silently truncated.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload over u32::MAX"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean EOF **between** frames (the
/// peer hung up); EOF inside a frame is an error.
///
/// # Errors
///
/// [`WireError::Oversized`] when the announced length exceeds `max`
/// (nothing beyond the 4-byte header has been consumed);
/// [`WireError::Io`] on transport failures and truncation.
pub fn read_frame(r: &mut impl Read, max: u32) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; 4];
    // Distinguish "no more frames" from "frame cut off": only a zero-byte
    // read at the first header byte is a clean close.
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header);
    if len > max {
        return Err(WireError::Oversized { len, max });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Incremental frame parser for nonblocking transports (the reactor).
///
/// [`read_frame`] blocks until a whole frame arrives; a nonblocking
/// connection instead hands the decoder whatever bytes `read(2)`
/// produced and collects however many complete frames those bytes
/// finish. The decoder carries partial state across calls, so a frame
/// split across TCP segments reassembles and several frames coalesced
/// into one segment all come out — byte-for-byte the same frames the
/// blocking reader would have produced.
#[derive(Debug)]
pub struct FrameDecoder {
    max: u32,
    header: [u8; 4],
    header_got: usize,
    /// `Some` once the header is complete; drained when full.
    payload: Option<Vec<u8>>,
    payload_got: usize,
}

impl FrameDecoder {
    /// A decoder enforcing the given per-frame payload cap.
    pub fn new(max: u32) -> Self {
        FrameDecoder {
            max,
            header: [0; 4],
            header_got: 0,
            payload: None,
            payload_got: 0,
        }
    }

    /// Whether the decoder is mid-frame — EOF now would truncate. The
    /// caller uses this to tell a clean hangup from a cut-off frame.
    pub fn mid_frame(&self) -> bool {
        self.header_got > 0 || self.payload.is_some()
    }

    /// Feeds bytes, appending every frame they complete to `frames`.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversized`] when a header announces a payload over
    /// the cap. As with [`read_frame`], nothing past that header has
    /// been interpreted: the stream is desynchronized and the connection
    /// must be closed (the decoder is poisoned against further use only
    /// in the sense that its remaining input is meaningless).
    pub fn feed(&mut self, mut bytes: &[u8], frames: &mut Vec<Vec<u8>>) -> Result<(), WireError> {
        while !bytes.is_empty() {
            if let Some(payload) = self.payload.as_mut() {
                let want = payload.len() - self.payload_got;
                let take = want.min(bytes.len());
                payload[self.payload_got..self.payload_got + take].copy_from_slice(&bytes[..take]);
                self.payload_got += take;
                bytes = &bytes[take..];
                if self.payload_got == payload.len() {
                    frames.push(self.payload.take().expect("payload present"));
                    self.payload_got = 0;
                }
            } else {
                let want = self.header.len() - self.header_got;
                let take = want.min(bytes.len());
                self.header[self.header_got..self.header_got + take]
                    .copy_from_slice(&bytes[..take]);
                self.header_got += take;
                bytes = &bytes[take..];
                if self.header_got == self.header.len() {
                    self.header_got = 0;
                    let len = u32::from_be_bytes(self.header);
                    if len > self.max {
                        return Err(WireError::Oversized { len, max: self.max });
                    }
                    if len == 0 {
                        frames.push(Vec::new());
                    } else {
                        self.payload = Some(vec![0u8; len as usize]);
                        self.payload_got = 0;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES)
                .unwrap()
                .unwrap(),
            b"hello"
        );
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES)
                .unwrap()
                .unwrap(),
            b""
        );
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .is_none());
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"junk");
        let mut r = io::Cursor::new(buf);
        match read_frame(&mut r, 16) {
            Err(WireError::Oversized { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, 16);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_an_error_not_a_clean_eof() {
        // Header promises 10 bytes, stream has 3.
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        let mut r = io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(WireError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof
        ));

        // Header itself cut off.
        let mut r = io::Cursor::new(vec![0u8, 0]);
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(WireError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof
        ));
    }

    #[test]
    fn decoder_matches_blocking_reader_at_every_split_boundary() {
        // Three frames (one empty, one 1-byte, one multi-byte) encoded
        // into a single byte stream, then fed to the decoder split at
        // EVERY possible boundary — including mid-header — and compared
        // against the blocking reader's parse of the same stream.
        let payloads: [&[u8]; 3] = [b"", b"x", b"hello, frames"];
        let mut stream = Vec::new();
        for p in payloads {
            write_frame(&mut stream, p).unwrap();
        }
        for split in 0..=stream.len() {
            let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_BYTES);
            let mut frames = Vec::new();
            dec.feed(&stream[..split], &mut frames).unwrap();
            dec.feed(&stream[split..], &mut frames).unwrap();
            assert_eq!(frames.len(), payloads.len(), "split at {split}");
            for (frame, payload) in frames.iter().zip(payloads) {
                assert_eq!(frame.as_slice(), payload, "split at {split}");
            }
            assert!(!dec.mid_frame(), "split at {split}");
        }
    }

    #[test]
    fn decoder_reassembles_randomized_chunkings() {
        // Deterministic xorshift so the fuzz is reproducible.
        let mut seed: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..200 {
            let nframes = (rng() % 6) as usize;
            let payloads: Vec<Vec<u8>> = (0..nframes)
                .map(|_| {
                    let len = (rng() % 300) as usize;
                    (0..len).map(|_| (rng() & 0xff) as u8).collect()
                })
                .collect();
            let mut stream = Vec::new();
            for p in &payloads {
                write_frame(&mut stream, p).unwrap();
            }
            // Chunk sizes from 0 (empty feed) to coalescing everything.
            let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_BYTES);
            let mut frames = Vec::new();
            let mut off = 0;
            while off < stream.len() {
                let chunk = ((rng() % 17) as usize).min(stream.len() - off);
                dec.feed(&stream[off..off + chunk], &mut frames).unwrap();
                off += chunk;
            }
            assert_eq!(frames, payloads, "round {round}");
            assert!(!dec.mid_frame(), "round {round}");
        }
    }

    #[test]
    fn decoder_rejects_oversized_headers_before_allocation() {
        let mut dec = FrameDecoder::new(16);
        let mut frames = Vec::new();
        // Header arrives one byte at a time; the error fires exactly
        // when the fourth byte lands.
        let header = u32::MAX.to_be_bytes();
        for (i, b) in header.iter().enumerate() {
            let r = dec.feed(std::slice::from_ref(b), &mut frames);
            if i < 3 {
                r.unwrap();
            } else {
                assert!(matches!(
                    r,
                    Err(WireError::Oversized { len, max }) if len == u32::MAX && max == 16
                ));
            }
        }
        assert!(frames.is_empty());
    }
}
