//! Length-prefixed framing for the session wire protocol.
//!
//! A frame is a 4-byte big-endian payload length followed by that many
//! payload bytes. Requests and responses use the same framing; payloads
//! are UTF-8 text (the server validates and answers `error …` on
//! anything else, without trusting the bytes).
//!
//! The length prefix is the only thing read before validation, so the
//! parser's failure modes are exactly three and all are cheap:
//!
//! * clean EOF between frames — the peer closed, [`read_frame`] returns
//!   `Ok(None)`;
//! * a truncated frame (EOF inside the header or payload) — an
//!   [`WireError::Io`] with `UnexpectedEof`;
//! * an oversized length — [`WireError::Oversized`] *before* any
//!   allocation or payload read. The stream is desynchronized at that
//!   point (the payload was never consumed), so the connection must be
//!   closed; a malicious 4 GiB length costs four bytes of reading and
//!   no memory.

use std::io::{self, Read, Write};

/// Default cap on a single frame's payload (4 MiB) — generous for
/// program + database sources, small enough that a hostile length
/// prefix cannot balloon server memory.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 4 << 20;

/// Errors reading a frame off the wire.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed (including truncated frames).
    Io(io::Error),
    /// The peer announced a payload larger than the configured cap. The
    /// payload was not consumed: the stream is desynchronized and the
    /// connection should be closed after reporting the error.
    Oversized {
        /// The announced payload length.
        len: u32,
        /// The configured cap.
        max: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte frame cap")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one frame (length prefix + payload) and flushes.
///
/// # Errors
///
/// Transport errors; payloads over `u32::MAX` bytes are a caller bug
/// and reported as `InvalidInput` rather than silently truncated.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload over u32::MAX"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean EOF **between** frames (the
/// peer hung up); EOF inside a frame is an error.
///
/// # Errors
///
/// [`WireError::Oversized`] when the announced length exceeds `max`
/// (nothing beyond the 4-byte header has been consumed);
/// [`WireError::Io`] on transport failures and truncation.
pub fn read_frame(r: &mut impl Read, max: u32) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; 4];
    // Distinguish "no more frames" from "frame cut off": only a zero-byte
    // read at the first header byte is a clean close.
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header);
    if len > max {
        return Err(WireError::Oversized { len, max });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES)
                .unwrap()
                .unwrap(),
            b"hello"
        );
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES)
                .unwrap()
                .unwrap(),
            b""
        );
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .is_none());
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"junk");
        let mut r = io::Cursor::new(buf);
        match read_frame(&mut r, 16) {
            Err(WireError::Oversized { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, 16);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_an_error_not_a_clean_eof() {
        // Header promises 10 bytes, stream has 3.
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        let mut r = io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(WireError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof
        ));

        // Header itself cut off.
        let mut r = io::Cursor::new(vec![0u8, 0]);
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(WireError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof
        ));
    }
}
