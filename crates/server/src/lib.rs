//! Serving tier for the tie-breaking Datalog workspace: a multi-session
//! network server over the prepared-session runtime.
//!
//! The PR 4/5 runtime made a session cheap to *keep* (incremental
//! apply, cone re-close) but every CLI invocation still paid the full
//! prepare (ground → close → condense) on startup. This crate amortizes
//! preparation across requests and clients:
//!
//! * [`wire`] — length-prefixed framing (4-byte big-endian length +
//!   UTF-8 payload) with an oversized-frame guard that rejects hostile
//!   lengths before allocating;
//! * [`script`] — the session-script interpreter (`+fact.` / `-fact.` /
//!   `? wf` / `? outcomes N` / `? stats`) shared by the CLI `session`
//!   command and the server, hardened so malformed lines are reported
//!   with their line number and survived;
//! * [`registry`] — an LRU of prepared sessions keyed by program +
//!   database source, with admission control denominated in ground
//!   atoms (the grounder's own budget unit) and eviction as graceful
//!   degradation;
//! * [`server`] / [`client`] — the TCP server and a blocking client.
//!   The server's default transport is a poll-based reactor with a
//!   bounded worker pool and **cross-connection query batching**:
//!   read-only `script` frames from many clients against the same
//!   session coalesce into one wave-parallel evaluation with
//!   byte-identical per-client answers, and mutating frames act as
//!   epoch barriers. The pre-reactor thread-per-connection transport
//!   remains available as [`ServerMode::LegacyThreads`].
//!
//! # Example
//!
//! ```no_run
//! use tiebreak_server::{Client, Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
//! let addr = server.local_addr()?;
//! let handle = std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr)?;
//! client.open("win(X) :- move(X, Y), not win(Y).", "move(a, b).")?;
//! let response = client.script("? win(a)\n")?;
//! assert!(response.body.contains("win(a): true"));
//! client.shutdown()?;
//! handle.join().unwrap()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod client;
#[cfg(unix)]
mod dispatch;
#[cfg(unix)]
mod reactor;
pub mod registry;
pub mod script;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, Response};
pub use registry::{
    OpenError, OpenOutcome, RegistryConfig, RegistryStats, SessionRegistry, SessionStat,
};
pub use script::{LineOutcome, ScriptSession};
pub use server::{Server, ServerConfig, ServerMode, DEFAULT_MAX_IDLE_SECS};
pub use wire::{read_frame, write_frame, FrameDecoder, WireError, DEFAULT_MAX_FRAME_BYTES};
