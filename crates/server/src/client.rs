//! A blocking client for the serving-tier wire protocol.
//!
//! One request frame out, one response frame back. Responses whose
//! first line starts with `error` surface as
//! [`ClientError::Server`]; everything after the `ok …` status line is
//! returned as the response body.

use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use crate::wire::{read_frame, write_frame, WireError, DEFAULT_MAX_FRAME_BYTES};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Wire(WireError),
    /// The server closed the connection instead of answering.
    Disconnected,
    /// The server answered with an in-band `error …` line.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

/// A successful exchange: the `ok …` status line and the body after it.
#[derive(Clone, Debug)]
pub struct Response {
    /// The status line, without the leading `ok ` (e.g.
    /// `opened key=… reused=true …`).
    pub status: String,
    /// Everything after the status line (script output, warnings).
    pub body: String,
}

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame: u32,
}

impl Client {
    /// Connects with the default frame cap.
    ///
    /// # Errors
    ///
    /// Socket connect failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request/response round trips are latency-bound: never let
        // Nagle delay a small frame.
        let _ = stream.set_nodelay(true);
        let write_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            max_frame: DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Opens (or reuses) the server-side session for a program +
    /// database pair.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] on parse/prepare/admission refusal;
    /// transport errors otherwise.
    pub fn open(&mut self, program: &str, database: &str) -> Result<Response, ClientError> {
        let mut payload = format!("open {}\n", program.len()).into_bytes();
        payload.extend_from_slice(program.as_bytes());
        payload.extend_from_slice(database.as_bytes());
        self.call(&payload)
    }

    /// Runs session-script lines against the open session. The body of
    /// the response carries the interpreter's output, including any
    /// `! line N: …` diagnostics; the status line reports
    /// `errors=<count>`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when no session is open; transport
    /// errors otherwise.
    pub fn script(&mut self, lines: &str) -> Result<Response, ClientError> {
        let mut payload = b"script\n".to_vec();
        payload.extend_from_slice(lines.as_bytes());
        self.call(&payload)
    }

    /// Fetches registry counters plus the per-session breakdown (the
    /// body carries one `% session key=… epoch=… atoms=… last_used=…`
    /// line per resident session).
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        self.call(b"stats")
    }

    /// Fetches the Prometheus text exposition of the server's metrics
    /// registry (the response body).
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn metrics(&mut self) -> Result<Response, ClientError> {
        self.call(b"metrics")
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn ping(&mut self) -> Result<Response, ClientError> {
        self.call(b"ping")
    }

    /// Says goodbye; the server closes the connection afterwards.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn bye(&mut self) -> Result<Response, ClientError> {
        self.call(b"bye")
    }

    /// Asks the server process to stop accepting and exit its run loop.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        self.call(b"shutdown")
    }

    /// Sends one raw frame and decodes the `ok`/`error` status line.
    /// Public so fuzz/compat tests can speak the protocol directly.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn call(&mut self, payload: &[u8]) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, payload)?;
        let Some(raw) = read_frame(&mut self.reader, self.max_frame)? else {
            return Err(ClientError::Disconnected);
        };
        let text = String::from_utf8_lossy(&raw).into_owned();
        let (status_line, body) = match text.split_once('\n') {
            Some((s, b)) => (s.to_owned(), b.to_owned()),
            None => (text, String::new()),
        };
        if let Some(msg) = status_line.strip_prefix("error") {
            return Err(ClientError::Server(msg.trim_start().to_owned()));
        }
        let status = status_line
            .strip_prefix("ok")
            .map(|s| s.trim_start().to_owned())
            .unwrap_or(status_line);
        Ok(Response { status, body })
    }
}
