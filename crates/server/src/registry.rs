//! LRU registry of prepared sessions, keyed by program + database
//! source text.
//!
//! Preparing a session (ground → close → condense) is the expensive
//! part of serving; the registry makes it a shared, reusable artifact.
//! Two clients opening the same program+db pair get the *same*
//! [`ScriptSession`] (serialized by its mutex), so the second open is a
//! registry hit that skips preparation entirely.
//!
//! Memory discipline has two knobs, both tied to the existing grounding
//! budgets rather than a new accounting scheme:
//!
//! * **capacity** — at most [`RegistryConfig::max_sessions`] resident
//!   sessions; opening past that evicts the least-recently-used entry;
//! * **admission** — the sum of resident ground-graph footprints (in
//!   atoms, the same unit as [`GroundConfig::max_atoms`]) must stay
//!   under [`RegistryConfig::max_resident_atoms`]. An open that would
//!   exceed it evicts LRU entries first; if the new session *alone*
//!   busts the budget it is refused outright
//!   ([`OpenError::AdmissionDenied`]).
//!
//! Eviction is graceful degradation, not failure: an evicted key's next
//! open simply falls back to a full re-prepare. Entries checked out by
//! a connection when evicted stay alive (the connection holds an `Arc`)
//! and are dropped when the last user finishes.
//!
//! Preparation runs **outside** the registry lock — a slow ground of
//! one program must not block hits on other keys. The cost is a benign
//! race: two connections may prepare the same key concurrently; the
//! loser discards its solver and adopts the winner's entry.
//!
//! [`GroundConfig::max_atoms`]: tiebreak_core::GroundConfig

use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use tiebreak_core::EngineConfig;
use tiebreak_runtime::Solver;

use crate::script::ScriptSession;

/// Registry sizing and the engine configuration shared by every session
/// it prepares.
#[derive(Clone, Copy, Debug)]
pub struct RegistryConfig {
    /// Engine configuration applied to every prepared session.
    pub engine: EngineConfig,
    /// Strict admission: run the static analyzer on every miss before
    /// paying for preparation. Error-severity lints reject the open
    /// (cheaply, pre-lock); a stratification-grade certificate arms the
    /// session's evaluation fast path; the analysis summary is cached
    /// on the entry and echoed in the open response.
    pub strict: bool,
    /// `? outcomes` semantics for prepared sessions (`pure-tb` vs
    /// wf-tb).
    pub pure: bool,
    /// Maximum resident sessions before LRU eviction.
    pub max_sessions: usize,
    /// Total resident ground-atom budget across all sessions — same
    /// unit as the grounder's per-session `max_atoms` budget.
    pub max_resident_atoms: u64,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        let engine = EngineConfig::default();
        RegistryConfig {
            engine,
            strict: false,
            pure: false,
            max_sessions: 64,
            // Default pool: four sessions' worth of the per-session
            // grounding budget.
            max_resident_atoms: engine.ground.max_atoms.saturating_mul(4),
        }
    }
}

/// One resident prepared session.
pub struct SessionEntry {
    key: u64,
    /// The interpreter; connections serialize on this mutex.
    session: Mutex<ScriptSession>,
    /// Ground-graph atom count, refreshed by [`SessionEntry::sync_footprint`]
    /// after mutations. Read lock-free by the admission check.
    resident_atoms: AtomicUsize,
    /// Mutation epoch mirror of the solver's, refreshed alongside
    /// `resident_atoms` so `stats` can report it without taking the
    /// session lock.
    epoch: AtomicU64,
    /// LRU stamp from the registry's logical clock.
    last_used: AtomicU64,
    /// One-line analysis summary (strict mode only), echoed to every
    /// connection that opens this session.
    analysis: Option<String>,
}

impl SessionEntry {
    /// The registry key (FxHash of program + database source).
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The cached analysis summary, when the registry ran in strict
    /// mode when this entry was prepared.
    pub fn analysis_summary(&self) -> Option<&str> {
        self.analysis.as_deref()
    }

    /// Locks the interpreter. Poisoning is survivable: the solver
    /// rolls back failed batches itself, so a panicking connection
    /// leaves the session consistent.
    pub fn lock(&self) -> MutexGuard<'_, ScriptSession> {
        self.session.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Re-reads the ground-graph footprint (and mutation epoch) into the
    /// lock-free mirrors. Call after running script batches: incremental
    /// grounding can grow the graph, and admission control should see
    /// that growth.
    pub fn sync_footprint(&self, session: &ScriptSession) {
        self.resident_atoms
            .store(session.solver().footprint().atoms, Ordering::Relaxed);
        self.epoch
            .store(session.solver().epoch(), Ordering::Relaxed);
    }

    /// Resident ground atoms (lock-free mirror; see
    /// [`SessionEntry::sync_footprint`]).
    pub fn atoms(&self) -> usize {
        self.resident_atoms.load(Ordering::Relaxed)
    }
}

/// Why an open was refused.
#[derive(Debug)]
pub enum OpenError {
    /// The program/database failed to parse or prepare.
    Prepare(String),
    /// Strict mode: the static analyzer found error-severity lints, so
    /// the open was refused before preparation was paid for.
    Rejected(String),
    /// The prepared session alone exceeds the resident-atom budget;
    /// admitting it could not be fixed by evicting others.
    AdmissionDenied {
        /// Ground atoms the new session would pin.
        atoms: u64,
        /// The configured pool budget.
        budget: u64,
    },
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::Prepare(msg) => write!(f, "prepare failed: {msg}"),
            OpenError::Rejected(msg) => write!(f, "rejected by analysis: {msg}"),
            OpenError::AdmissionDenied { atoms, budget } => write!(
                f,
                "admission denied: session needs {atoms} resident ground atoms, pool budget is \
                 {budget}"
            ),
        }
    }
}

impl std::error::Error for OpenError {}

/// A successful open: the (possibly shared) entry plus what it cost.
pub struct OpenOutcome {
    /// The resident session; clone-shared with every other connection
    /// on the same key.
    pub entry: Arc<SessionEntry>,
    /// Registry hit — preparation was skipped.
    pub reused: bool,
    /// Sessions evicted to admit this one.
    pub evicted: usize,
}

/// Point-in-time registry counters (the server's `stats` verb).
#[derive(Clone, Debug, Default)]
pub struct RegistryStats {
    /// Resident sessions.
    pub sessions: usize,
    /// Sum of resident ground-graph atom counts.
    pub resident_atoms: u64,
    /// Opens served from the registry.
    pub hits: u64,
    /// Opens that prepared a new session.
    pub misses: u64,
    /// Sessions evicted (capacity or admission pressure).
    pub evictions: u64,
    /// Opens refused by admission control.
    pub rejected: u64,
    /// Per-session breakdown, most-recently-used first.
    pub per_session: Vec<SessionStat>,
}

/// One resident session's line in the `stats` breakdown.
#[derive(Clone, Copy, Debug)]
pub struct SessionStat {
    /// Registry key (FxHash of program + database source).
    pub key: u64,
    /// Mutation epoch the session has reached.
    pub epoch: u64,
    /// Resident ground atoms pinned by this session.
    pub resident_atoms: u64,
    /// LRU stamp from the registry's logical clock (higher = more
    /// recently used).
    pub last_used: u64,
}

#[derive(Default)]
struct Counters {
    hits: u64,
    misses: u64,
    evictions: u64,
    rejected: u64,
}

/// The shared LRU session registry.
pub struct SessionRegistry {
    config: RegistryConfig,
    inner: Mutex<Inner>,
    /// Logical clock for LRU stamps.
    clock: AtomicU64,
}

struct Inner {
    entries: HashMap<u64, Arc<SessionEntry>>,
    counters: Counters,
}

impl SessionRegistry {
    /// An empty registry.
    pub fn new(config: RegistryConfig) -> Self {
        SessionRegistry {
            config,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                counters: Counters::default(),
            }),
            clock: AtomicU64::new(0),
        }
    }

    /// The configuration the registry was built with.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    /// The registry key for a program + database source pair.
    pub fn key_of(program: &str, database: &str) -> u64 {
        let mut h = datalog_ast::fxhash::FxHasher::default();
        h.write(program.as_bytes());
        // Disambiguate the boundary so ("ab","c") != ("a","bc").
        h.write_u8(0xff);
        h.write(database.as_bytes());
        h.finish()
    }

    /// Opens (or reuses) the session for a program + database pair.
    ///
    /// Preparation happens outside the registry lock; see the module
    /// docs for the hit/miss/eviction protocol.
    ///
    /// # Errors
    ///
    /// [`OpenError::Prepare`] when the sources don't prepare;
    /// [`OpenError::AdmissionDenied`] when the session alone exceeds
    /// the resident-atom budget.
    pub fn open(&self, program: &str, database: &str) -> Result<OpenOutcome, OpenError> {
        // Parents the prepare spans Solver::with_config opens below, so
        // a traced open shows request → registry_open → prepare.
        let mut span = tiebreak_trace::span("server", "registry_open", &[]);
        let key = Self::key_of(program, database);

        if let Some(entry) = self.lookup(key) {
            span.arg("hit", 1);
            return Ok(OpenOutcome {
                entry,
                reused: true,
                evicted: 0,
            });
        }

        // Miss: parse, (optionally) analyze, then prepare — all outside
        // the lock. In strict mode the analyzer runs before preparation
        // so a certain blowup costs a predicate-level pass, not a
        // grounding attempt.
        let ast_program =
            datalog_ast::parse_program(program).map_err(|e| OpenError::Prepare(e.to_string()))?;
        let ast_database =
            datalog_ast::parse_database(database).map_err(|e| OpenError::Prepare(e.to_string()))?;
        let mut engine = self.config.engine;
        let mut summary = None;
        if self.config.strict {
            let report = datalog_analyze::analyze(
                &ast_program,
                Some(&ast_database),
                &datalog_analyze::AnalyzeConfig::for_ground(engine.ground),
            );
            if report.has_errors() {
                let mut inner = self.lock_inner();
                inner.counters.rejected += 1;
                tiebreak_trace::metrics().registry_rejected.inc();
                return Err(OpenError::Rejected(report.error_messages().join("; ")));
            }
            if report.certificate.is_some_and(|c| c.arms_fast_path()) {
                engine.eval.certified_total = true;
            }
            summary = Some(report.summary());
        }
        let solver = Solver::with_config(ast_program, ast_database, engine)
            .map_err(|e| OpenError::Prepare(e.to_string()))?;
        let atoms = solver.footprint().atoms;

        if atoms as u64 > self.config.max_resident_atoms {
            let mut inner = self.lock_inner();
            inner.counters.rejected += 1;
            tiebreak_trace::metrics().registry_rejected.inc();
            return Err(OpenError::AdmissionDenied {
                atoms: atoms as u64,
                budget: self.config.max_resident_atoms,
            });
        }

        let epoch = solver.epoch();
        let entry = Arc::new(SessionEntry {
            key,
            session: Mutex::new(ScriptSession::new(solver, self.config.pure)),
            resident_atoms: AtomicUsize::new(atoms),
            epoch: AtomicU64::new(epoch),
            last_used: AtomicU64::new(self.tick()),
            analysis: summary,
        });

        let mut inner = self.lock_inner();
        // Benign race: someone may have registered this key while we
        // were preparing. Their entry wins; our solver is dropped.
        if let Some(existing) = inner.entries.get(&key) {
            let existing = Arc::clone(existing);
            existing.last_used.store(self.tick(), Ordering::Relaxed);
            inner.counters.hits += 1;
            tiebreak_trace::metrics().registry_hits.inc();
            return Ok(OpenOutcome {
                entry: existing,
                reused: true,
                evicted: 0,
            });
        }

        let evicted = self.make_room(&mut inner, atoms as u64);
        inner.counters.misses += 1;
        inner.counters.evictions += evicted as u64;
        let m = tiebreak_trace::metrics();
        m.registry_misses.inc();
        m.registry_evictions.add(evicted as u64);
        inner.entries.insert(key, Arc::clone(&entry));
        Ok(OpenOutcome {
            entry,
            reused: false,
            evicted,
        })
    }

    /// Drops the entry for a key (used by tests and explicit client
    /// resets). Connections holding the `Arc` keep using it; the next
    /// open re-prepares.
    pub fn evict(&self, key: u64) -> bool {
        let mut inner = self.lock_inner();
        let removed = inner.entries.remove(&key).is_some();
        if removed {
            inner.counters.evictions += 1;
            tiebreak_trace::metrics().registry_evictions.inc();
        }
        removed
    }

    /// Current registry counters plus the per-session breakdown.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.lock_inner();
        let mut per_session: Vec<SessionStat> = inner
            .entries
            .values()
            .map(|e| SessionStat {
                key: e.key,
                epoch: e.epoch.load(Ordering::Relaxed),
                resident_atoms: e.atoms() as u64,
                last_used: e.last_used.load(Ordering::Relaxed),
            })
            .collect();
        per_session.sort_by_key(|s| std::cmp::Reverse(s.last_used));
        RegistryStats {
            sessions: inner.entries.len(),
            resident_atoms: per_session.iter().map(|s| s.resident_atoms).sum(),
            hits: inner.counters.hits,
            misses: inner.counters.misses,
            evictions: inner.counters.evictions,
            rejected: inner.counters.rejected,
            per_session,
        }
    }

    fn lookup(&self, key: u64) -> Option<Arc<SessionEntry>> {
        let mut inner = self.lock_inner();
        if let Some(entry) = inner.entries.get(&key) {
            let entry = Arc::clone(entry);
            entry.last_used.store(self.tick(), Ordering::Relaxed);
            inner.counters.hits += 1;
            tiebreak_trace::metrics().registry_hits.inc();
            return Some(entry);
        }
        None
    }

    /// Evicts LRU entries until both the capacity and the resident-atom
    /// budget can absorb a new `incoming_atoms`-sized session. Returns
    /// how many entries were evicted.
    fn make_room(&self, inner: &mut Inner, incoming_atoms: u64) -> usize {
        let mut evicted = 0;
        loop {
            let resident: u64 = inner.entries.values().map(|e| e.atoms() as u64).sum();
            let over_capacity = inner.entries.len() >= self.config.max_sessions;
            let over_budget = resident + incoming_atoms > self.config.max_resident_atoms;
            if (!over_capacity && !over_budget) || inner.entries.is_empty() {
                return evicted;
            }
            let lru_key = inner
                .entries
                .values()
                .min_by_key(|e| e.last_used.load(Ordering::Relaxed))
                .map(|e| e.key)
                .expect("non-empty");
            inner.entries.remove(&lru_key);
            evicted += 1;
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn lock_inner(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROG: &str = "win(X) :- move(X, Y), not win(Y).";

    fn registry(max_sessions: usize, max_resident_atoms: u64) -> SessionRegistry {
        SessionRegistry::new(RegistryConfig {
            max_sessions,
            max_resident_atoms,
            ..RegistryConfig::default()
        })
    }

    #[test]
    fn second_open_is_a_hit_sharing_the_entry() {
        let reg = registry(8, u64::MAX >> 1);
        let a = reg.open(PROG, "move(a, b).").unwrap();
        assert!(!a.reused);
        let b = reg.open(PROG, "move(a, b).").unwrap();
        assert!(b.reused);
        assert!(Arc::ptr_eq(&a.entry, &b.entry));
        let stats = reg.stats();
        assert_eq!((stats.hits, stats.misses, stats.sessions), (1, 1, 1));
    }

    #[test]
    fn distinct_databases_get_distinct_sessions() {
        let reg = registry(8, u64::MAX >> 1);
        let a = reg.open(PROG, "move(a, b).").unwrap();
        let b = reg.open(PROG, "move(b, a).").unwrap();
        assert!(!Arc::ptr_eq(&a.entry, &b.entry));
        assert_eq!(reg.stats().sessions, 2);
    }

    #[test]
    fn capacity_pressure_evicts_lru() {
        let reg = registry(2, u64::MAX >> 1);
        let first = reg.open(PROG, "move(a, b).").unwrap();
        reg.open(PROG, "move(b, c).").unwrap();
        // Touch the first so the second is LRU.
        reg.open(PROG, "move(a, b).").unwrap();
        let third = reg.open(PROG, "move(c, d).").unwrap();
        assert_eq!(third.evicted, 1);
        // The first key survived; its next open is still a hit.
        let again = reg.open(PROG, "move(a, b).").unwrap();
        assert!(again.reused);
        assert!(Arc::ptr_eq(&first.entry, &again.entry));
        // The evicted key re-prepares: a miss, not a failure.
        let evicted_again = reg.open(PROG, "move(b, c).").unwrap();
        assert!(!evicted_again.reused);
    }

    #[test]
    fn admission_denies_sessions_bigger_than_the_pool() {
        let reg = registry(8, 1);
        match reg.open(PROG, "move(a, b).") {
            Err(OpenError::AdmissionDenied { atoms, budget }) => {
                assert!(atoms > 1);
                assert_eq!(budget, 1);
            }
            other => panic!("expected AdmissionDenied, got {:?}", other.map(|_| ())),
        }
        assert_eq!(reg.stats().rejected, 1);
    }

    #[test]
    fn budget_pressure_evicts_before_admitting() {
        let reg = registry(64, u64::MAX >> 1);
        let probe = reg.open(PROG, "move(a, b).").unwrap();
        let per_session = probe.entry.atoms() as u64;
        drop(probe);

        // Pool fits two sessions of this shape, not three.
        let reg = registry(64, per_session * 2);
        reg.open(PROG, "move(a, b).").unwrap();
        reg.open(PROG, "move(b, c).").unwrap();
        let third = reg.open(PROG, "move(c, d).").unwrap();
        assert_eq!(third.evicted, 1);
        let stats = reg.stats();
        assert_eq!(stats.sessions, 2);
        assert!(stats.resident_atoms <= per_session * 2);
    }

    #[test]
    fn key_disambiguates_program_database_boundary() {
        assert_ne!(
            SessionRegistry::key_of("ab", "c"),
            SessionRegistry::key_of("a", "bc")
        );
    }
}
