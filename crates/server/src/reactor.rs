//! The poll-based reactor: one thread multiplexing every connection.
//!
//! The legacy transport spends a thread (and its stack) per connection,
//! parked in a blocking `read`. The reactor replaces that with a single
//! event loop over nonblocking sockets: each connection is a small
//! state machine
//!
//! ```text
//! reading header → reading payload → dispatched → writing response ⟲
//! ```
//!
//! and an idle connection costs one `pollfd` entry instead of a stack.
//! Frame reassembly is [`FrameDecoder`]'s job (a frame split across TCP
//! segments, or several frames coalesced into one segment, parse
//! identically to the blocking reader). Complete frames are handed to
//! the [`dispatch`](crate::dispatch) worker pool; at most one request
//! per connection is in flight, which both preserves the wire
//! protocol's strict request→response ordering and gives natural
//! backpressure (the reactor stops reading a connection while its
//! request is dispatched, so a flooding client backs up into its own
//! TCP window, not into server memory).
//!
//! Responses come back over a completion queue plus a loopback *waker*
//! connection (a std-only stand-in for `socketpair(2)`): a worker
//! writes one byte to make `poll` return, the reactor drains the
//! completions into per-connection write buffers and flushes them as
//! `POLLOUT` allows.
//!
//! Connections with no frame activity for `max_idle_secs` are reaped
//! (counted by `tiebreak_conns_reaped`); the open-connection count is
//! exported as the `tiebreak_conns_open` gauge.
//!
//! The `poll(2)` call itself goes through a thin syscall shim in
//! [`sys`] — no `libc` crate, consistent with the workspace's
//! no-external-deps rule — with a portable sleep-and-assume-ready
//! fallback for platforms without the shim.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::dispatch::{ConnState, Dispatcher};
use crate::server::{Next, Server};
use crate::wire::FrameDecoder;

/// The raw `poll(2)` shim.
pub(crate) mod sys {
    use std::io;

    /// `struct pollfd` — layout fixed by the kernel ABI.
    #[repr(C)]
    #[derive(Clone, Copy, Debug)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    /// Readiness events that mean "this fd needs attention even though
    /// we may not have asked": errors and hangups are always reported.
    pub const POLLBAD: i16 = POLLERR | POLLHUP | POLLNVAL;

    /// Polls `fds` for readiness. `timeout_ms < 0` blocks indefinitely.
    /// `EINTR` is reported as `Ok(0)` — callers loop anyway.
    ///
    /// # Errors
    ///
    /// The syscall's errno, as an [`io::Error`].
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // x86_64 keeps poll(2); aarch64 only wires up ppoll(2), so use
        // ppoll on both with a null sigmask (identical semantics).
        #[repr(C)]
        struct Timespec {
            sec: i64,
            nsec: i64,
        }
        let ts = Timespec {
            sec: i64::from(timeout_ms) / 1000,
            nsec: (i64::from(timeout_ms) % 1000) * 1_000_000,
        };
        let ts_ptr: usize = if timeout_ms < 0 {
            0
        } else {
            std::ptr::from_ref(&ts) as usize
        };
        #[cfg(target_arch = "x86_64")]
        const PPOLL: usize = 271;
        #[cfg(target_arch = "aarch64")]
        const PPOLL: usize = 73;
        let ret: isize;
        unsafe {
            #[cfg(target_arch = "x86_64")]
            std::arch::asm!(
                "syscall",
                inlateout("rax") PPOLL as isize => ret,
                in("rdi") fds.as_mut_ptr(),
                in("rsi") fds.len(),
                in("rdx") ts_ptr,
                in("r10") 0usize,
                in("r8") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
            #[cfg(target_arch = "aarch64")]
            std::arch::asm!(
                "svc 0",
                inlateout("x0") fds.as_mut_ptr() as isize => ret,
                in("x1") fds.len(),
                in("x2") ts_ptr,
                in("x3") 0usize,
                in("x4") 0usize,
                in("x8") PPOLL,
                options(nostack)
            );
        }
        const EINTR: isize = 4;
        match ret {
            n if n >= 0 => Ok(usize::try_from(n).unwrap_or(0)),
            e if e == -EINTR => Ok(0),
            e => Err(io::Error::from_raw_os_error(
                i32::try_from(-e).unwrap_or(i32::MAX),
            )),
        }
    }

    /// Portable fallback: sleep briefly and report every fd ready for
    /// what it asked. All reactor I/O is nonblocking, so "assume ready
    /// and let `read`/`write` say `WouldBlock`" is correct — it merely
    /// degrades the event loop to ~100 Hz polling on platforms without
    /// the syscall shim.
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        let nap = if timeout_ms < 0 {
            10
        } else {
            timeout_ms.min(10)
        };
        if nap > 0 {
            std::thread::sleep(std::time::Duration::from_millis(nap as u64));
        }
        for fd in fds.iter_mut() {
            fd.revents = fd.events;
        }
        Ok(fds.len())
    }
}

/// Wakes the reactor's `poll` from worker threads: one byte over a
/// loopback connection pair, deduplicated so a burst of completions
/// costs one write.
pub(crate) struct Notifier {
    tx: Mutex<TcpStream>,
    pending: AtomicBool,
}

impl Notifier {
    pub(crate) fn notify(&self) {
        if !self.pending.swap(true, Ordering::SeqCst) {
            let mut tx = self.tx.lock().unwrap_or_else(PoisonError::into_inner);
            let _ = tx.write(&[1]);
        }
    }
}

/// A std-only `socketpair(2)`: bind a throwaway loopback listener,
/// connect to it, accept, and verify the accepted peer is our own
/// connect (so a stranger racing the ephemeral port cannot hijack the
/// waker).
fn waker_pair() -> io::Result<(Notifier, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let ours = tx.local_addr()?;
    for _ in 0..16 {
        let (rx, peer) = listener.accept()?;
        if peer == ours {
            rx.set_nonblocking(true)?;
            tx.set_nodelay(true)?;
            return Ok((
                Notifier {
                    tx: Mutex::new(tx),
                    pending: AtomicBool::new(false),
                },
                rx,
            ));
        }
        // Not our connection: drop it and keep accepting.
    }
    Err(io::Error::other(
        "could not establish the reactor waker pair",
    ))
}

/// One connection's state machine.
struct Conn {
    id: u64,
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Complete frames not yet dispatched (a pipelining client can
    /// deliver several in one segment; they are served in order, one
    /// in flight at a time).
    pending: std::collections::VecDeque<Vec<u8>>,
    /// A request is dispatched and its response not yet queued: reading
    /// is paused (backpressure) and the connection must not be reaped.
    inflight: bool,
    /// Encoded response bytes not yet accepted by the socket.
    wbuf: Vec<u8>,
    wpos: usize,
    close_after_write: bool,
    /// Peer closed its sending half; finish writing, then drop.
    read_closed: bool,
    last_activity: Instant,
    /// Protocol state shared with the worker that executes this
    /// connection's requests (session entry + script line number).
    session: Arc<Mutex<ConnState>>,
}

impl Conn {
    fn wants_read(&self) -> bool {
        !self.inflight && !self.read_closed && !self.close_after_write && self.pending.is_empty()
    }

    fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Appends one response frame to the write buffer.
    fn queue_response(&mut self, payload: &[u8]) {
        let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
        self.wbuf.extend_from_slice(&len.to_be_bytes());
        self.wbuf.extend_from_slice(payload);
    }

    /// Pushes buffered bytes into the socket. `Ok(false)` means the
    /// connection died mid-write.
    fn flush_writes(&mut self) -> bool {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return false,
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        true
    }
}

/// Runs the reactor until a client sends `shutdown`. Consumes the
/// bound server (listener + registry).
pub(crate) fn run(server: Server) -> io::Result<()> {
    let (listener, registry, max_frame, max_idle_secs, workers) = server.into_reactor_parts();
    listener.set_nonblocking(true)?;
    let (notifier, waker_rx) = waker_pair()?;
    let notifier = Arc::new(notifier);
    let dispatcher = Dispatcher::start(Arc::clone(&registry), Arc::clone(&notifier), workers);
    let m = tiebreak_trace::metrics();

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 0;
    let mut stopping = false;
    let mut listener = Some(listener);
    // Reused across iterations; rebuilt each time (cheap at our scale,
    // and level-triggered poll needs fresh event masks anyway).
    let mut pollfds: Vec<sys::PollFd> = Vec::new();
    // pollfds[i] ↦ connection id, for i ≥ 2.
    let mut slot_ids: Vec<u64> = Vec::new();
    let mut rbuf = [0u8; 16 * 1024];

    loop {
        pollfds.clear();
        slot_ids.clear();
        pollfds.push(sys::PollFd {
            fd: waker_rx.as_raw_fd(),
            events: sys::POLLIN,
            revents: 0,
        });
        pollfds.push(sys::PollFd {
            fd: listener
                .as_ref()
                .map_or(-1, std::os::fd::AsRawFd::as_raw_fd),
            events: if listener.is_some() && !stopping {
                sys::POLLIN
            } else {
                0
            },
            revents: 0,
        });
        for (id, conn) in &conns {
            let mut events = 0;
            if conn.wants_read() {
                events |= sys::POLLIN;
            }
            if conn.wants_write() {
                events |= sys::POLLOUT;
            }
            pollfds.push(sys::PollFd {
                fd: conn.stream.as_raw_fd(),
                events,
                revents: 0,
            });
            slot_ids.push(*id);
        }

        let timeout_ms = poll_timeout(stopping, max_idle_secs, &conns);
        sys::poll(&mut pollfds, timeout_ms)?;
        let now = Instant::now();

        // Waker: drain the byte(s), then the completion queue.
        if pollfds[0].revents & (sys::POLLIN | sys::POLLBAD) != 0 {
            notifier.pending.store(false, Ordering::SeqCst);
            let mut waker_rx = &waker_rx;
            let mut scratch = [0u8; 64];
            while matches!(waker_rx.read(&mut scratch), Ok(n) if n > 0) {}
        }
        for completion in dispatcher.drain_completions() {
            let Some(conn) = conns.get_mut(&completion.conn) else {
                continue; // Connection died while its request ran.
            };
            conn.inflight = false;
            conn.last_activity = now;
            conn.queue_response(&completion.response);
            match completion.next {
                Next::Continue => {}
                Next::CloseConnection => conn.close_after_write = true,
                Next::ShutdownServer => {
                    conn.close_after_write = true;
                    stopping = true;
                    listener = None;
                }
            }
            if !conn.flush_writes() {
                drop_conn(&mut conns, completion.conn);
                continue;
            }
            if !stopping {
                dispatch_next(conns.get_mut(&completion.conn), &dispatcher, now);
            }
            maybe_finish(&mut conns, completion.conn);
        }

        // New connections.
        if pollfds[1].revents & (sys::POLLIN | sys::POLLBAD) != 0 {
            if let Some(l) = listener.as_ref() {
                loop {
                    match l.accept() {
                        Ok((stream, _)) => {
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let _ = stream.set_nodelay(true);
                            let id = next_id;
                            next_id += 1;
                            conns.insert(
                                id,
                                Conn {
                                    id,
                                    stream,
                                    decoder: FrameDecoder::new(max_frame),
                                    pending: std::collections::VecDeque::new(),
                                    inflight: false,
                                    wbuf: Vec::new(),
                                    wpos: 0,
                                    close_after_write: false,
                                    read_closed: false,
                                    last_activity: now,
                                    session: Arc::new(Mutex::new(ConnState::default())),
                                },
                            );
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => break,
                    }
                }
                m.conns_open.set(conns.len() as u64);
            }
        }

        // Per-connection readiness.
        for (slot, id) in slot_ids.iter().enumerate() {
            let revents = pollfds[slot + 2].revents;
            if revents == 0 {
                continue;
            }
            let Some(conn) = conns.get_mut(id) else {
                continue;
            };
            if revents & sys::POLLNVAL != 0 {
                drop_conn(&mut conns, *id);
                continue;
            }
            if revents & sys::POLLOUT != 0 && !conn.flush_writes() {
                drop_conn(&mut conns, *id);
                continue;
            }
            // POLLERR/POLLHUP fall through to the read path: read()
            // reports the actual condition (EOF or the socket error).
            if revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP) != 0 && conn.wants_read() {
                if !read_ready(conn, &mut rbuf, now) {
                    drop_conn(&mut conns, *id);
                    continue;
                }
                if !stopping {
                    dispatch_next(conns.get_mut(id), &dispatcher, now);
                }
            }
            maybe_finish(&mut conns, *id);
        }
        m.conns_open.set(conns.len() as u64);

        // Idle reaping.
        if max_idle_secs > 0 && !stopping {
            let deadline = Duration::from_secs(max_idle_secs);
            let reap: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| !c.inflight && now.duration_since(c.last_activity) >= deadline)
                .map(|(id, _)| *id)
                .collect();
            for id in reap {
                // Count before closing: a peer that observes the FIN
                // must already see the bumped counter.
                m.conns_reaped.inc();
                drop_conn(&mut conns, id);
            }
            m.conns_open.set(conns.len() as u64);
        }

        if stopping {
            // Grace period: let queued responses (the `ok shutting
            // down` frame above all) reach their sockets, then leave.
            let deadline = Instant::now() + Duration::from_secs(5);
            while conns.values().any(|c| c.inflight || c.wants_write()) {
                if Instant::now() >= deadline {
                    break;
                }
                pollfds.clear();
                pollfds.push(sys::PollFd {
                    fd: waker_rx.as_raw_fd(),
                    events: sys::POLLIN,
                    revents: 0,
                });
                slot_ids.clear();
                for (id, conn) in &conns {
                    pollfds.push(sys::PollFd {
                        fd: conn.stream.as_raw_fd(),
                        events: if conn.wants_write() { sys::POLLOUT } else { 0 },
                        revents: 0,
                    });
                    slot_ids.push(*id);
                }
                let _ = sys::poll(&mut pollfds, 50);
                if pollfds[0].revents & (sys::POLLIN | sys::POLLBAD) != 0 {
                    notifier.pending.store(false, Ordering::SeqCst);
                    let mut rx = &waker_rx;
                    let mut scratch = [0u8; 64];
                    while matches!(rx.read(&mut scratch), Ok(n) if n > 0) {}
                }
                for completion in dispatcher.drain_completions() {
                    if let Some(conn) = conns.get_mut(&completion.conn) {
                        conn.inflight = false;
                        conn.queue_response(&completion.response);
                    }
                }
                let finished: Vec<u64> = conns
                    .iter_mut()
                    .filter_map(|(id, c)| {
                        if !c.flush_writes() || (!c.inflight && !c.wants_write()) {
                            Some(*id)
                        } else {
                            None
                        }
                    })
                    .collect();
                for id in finished {
                    drop_conn(&mut conns, id);
                }
            }
            conns.clear();
            m.conns_open.set(0);
            dispatcher.shutdown();
            return Ok(());
        }
    }
}

/// Reads whatever the socket has, feeding the frame decoder. Returns
/// `false` when the connection should be dropped immediately.
fn read_ready(conn: &mut Conn, rbuf: &mut [u8], now: Instant) -> bool {
    let mut frames = Vec::new();
    loop {
        match conn.stream.read(rbuf) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                conn.last_activity = now;
                if let Err(e) = conn.decoder.feed(&rbuf[..n], &mut frames) {
                    // Oversized header: the stream is desynchronized.
                    // Report in-band (like the legacy transport) and
                    // close once the error frame is written.
                    conn.queue_response(format!("error {e}").as_bytes());
                    conn.close_after_write = true;
                    conn.flush_writes();
                    // Frames decoded before the bad header still count.
                    conn.pending.extend(frames);
                    return true;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    conn.pending.extend(frames);
    if conn.read_closed && conn.decoder.mid_frame() {
        // Truncated frame: nothing sensible to answer.
        return false;
    }
    true
}

/// Starts the next pending request if the connection is idle.
fn dispatch_next(conn: Option<&mut Conn>, dispatcher: &Dispatcher, now: Instant) {
    let Some(conn) = conn else { return };
    if conn.inflight || conn.close_after_write {
        return;
    }
    if let Some(payload) = conn.pending.pop_front() {
        conn.inflight = true;
        conn.last_activity = now;
        dispatcher.submit(conn.id, &conn.session, payload);
    }
}

/// Drops a finished connection: peer gone and nothing left to write.
fn maybe_finish(conns: &mut HashMap<u64, Conn>, id: u64) {
    let done = conns.get(&id).is_some_and(|c| {
        (c.close_after_write || c.read_closed)
            && !c.inflight
            && !c.wants_write()
            && c.pending.is_empty()
    });
    if done {
        drop_conn(conns, id);
    }
}

fn drop_conn(conns: &mut HashMap<u64, Conn>, id: u64) {
    conns.remove(&id);
}

/// How long `poll` may block: up to the nearest idle deadline (so the
/// reaper runs on time), a short tick while stopping, indefinitely when
/// nothing is scheduled — the waker interrupts any of these.
fn poll_timeout(stopping: bool, max_idle_secs: u64, conns: &HashMap<u64, Conn>) -> i32 {
    if stopping {
        return 50;
    }
    if max_idle_secs == 0 || conns.is_empty() {
        return -1;
    }
    let idle = Duration::from_secs(max_idle_secs);
    let now = Instant::now();
    let nearest = conns
        .values()
        .filter(|c| !c.inflight)
        .map(|c| {
            idle.saturating_sub(now.duration_since(c.last_activity))
                .as_millis()
        })
        .min();
    match nearest {
        // +1 so the deadline has passed when poll returns.
        Some(ms) => i32::try_from(ms.min(60_000)).unwrap_or(60_000) + 1,
        None => -1,
    }
}
