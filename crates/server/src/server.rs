//! The multi-session TCP server.
//!
//! One [`Server`] owns a [`SessionRegistry`] and serves many concurrent
//! connections over one of two transports, selected by
//! [`ServerConfig::mode`]:
//!
//! * [`ServerMode::Reactor`] (the default) — a poll-based event loop
//!   (the `reactor` module) with a bounded worker pool and
//!   cross-connection query batching (the `dispatch` module). Idle
//!   connections cost a `pollfd`, not a thread, and are reaped after
//!   [`ServerConfig::max_idle_secs`] without frame activity.
//! * [`ServerMode::LegacyThreads`] — the original thread-per-connection
//!   transport, kept as an escape hatch and as the byte-identical
//!   reference the batching fidelity tests compare against.
//!
//! Each request is one [wire](crate::wire) frame whose UTF-8 payload
//! starts with a verb line:
//!
//! ```text
//! open <prog_byte_len>\n<program bytes><database bytes>
//! script\n<session-script lines>
//! stats
//! metrics
//! ping
//! bye
//! shutdown
//! ```
//!
//! Every response frame starts with `ok …` or `error …`. A protocol
//! error (unknown verb, bad `open` header, admission denial, malformed
//! script lines) is reported in-band and the connection **keeps
//! serving** — only transport-level failures (truncated or oversized
//! frames, which desynchronize the stream) close it. One misbehaving
//! client never disturbs the others: its session lives in the shared
//! registry, but the script interpreter discards failed batches and the
//! solver rolls back failed applies, so the entry other connections
//! share stays consistent.
//!
//! `script` frames are transactional per frame: the frame's lines run
//! under the session lock and any trailing staged mutations are flushed
//! before the lock is released. Batches therefore cannot span frames —
//! necessary because the session may be shared with other connections,
//! which must never observe (or accidentally commit) another client's
//! half-staged batch.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::registry::{RegistryConfig, SessionEntry, SessionRegistry};
use crate::script::LineOutcome;
use crate::wire::{read_frame, write_frame, WireError, DEFAULT_MAX_FRAME_BYTES};

/// Default idle deadline: connections with no frame activity for this
/// many seconds are reaped (reactor mode).
pub const DEFAULT_MAX_IDLE_SECS: u64 = 300;

/// Which transport serves connections.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServerMode {
    /// Poll-based reactor + worker pool with cross-connection query
    /// batching (the default).
    #[default]
    Reactor,
    /// Thread-per-connection (the pre-reactor transport).
    LegacyThreads,
}

/// Server tuning.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Session registry sizing and engine configuration.
    pub registry: RegistryConfig,
    /// Per-frame payload cap (0 = [`DEFAULT_MAX_FRAME_BYTES`]).
    pub max_frame_bytes: u32,
    /// Transport selection.
    pub mode: ServerMode,
    /// Reactor-mode idle deadline in seconds (0 = never reap;
    /// ignored by the legacy transport).
    pub max_idle_secs: u64,
    /// Reactor-mode worker pool size (0 = auto: the machine's
    /// parallelism, clamped to [2, 8]).
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            registry: RegistryConfig::default(),
            max_frame_bytes: 0,
            mode: ServerMode::default(),
            max_idle_secs: DEFAULT_MAX_IDLE_SECS,
            workers: 0,
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    registry: Arc<SessionRegistry>,
    max_frame: u32,
    mode: ServerMode,
    max_idle_secs: u64,
    workers: usize,
    state: Arc<SharedState>,
}

/// State shared with connection threads: the stop flag plus one
/// `try_clone` of every live connection so shutdown can unblock their
/// readers.
struct SharedState {
    stopping: AtomicBool,
    next_conn: AtomicU64,
    conns: Mutex<Vec<(u64, TcpStream)>>,
}

impl SharedState {
    fn track(&self, stream: &TcpStream) -> Option<u64> {
        let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        let clone = stream.try_clone().ok()?;
        let mut conns = self.conns.lock().unwrap_or_else(PoisonError::into_inner);
        conns.push((id, clone));
        tiebreak_trace::metrics().conns_open.set(conns.len() as u64);
        Some(id)
    }

    fn untrack(&self, id: u64) {
        let mut conns = self.conns.lock().unwrap_or_else(PoisonError::into_inner);
        conns.retain(|(cid, _)| *cid != id);
        tiebreak_trace::metrics().conns_open.set(conns.len() as u64);
    }

    /// Half-closes every live connection so blocked `read_frame` calls
    /// return and their threads can join.
    fn disconnect_all(&self) {
        for (_, stream) in self
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
        {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

impl Server {
    /// Binds a listener. Use port 0 to let the OS pick (tests).
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let max_frame = if config.max_frame_bytes == 0 {
            DEFAULT_MAX_FRAME_BYTES
        } else {
            config.max_frame_bytes
        };
        Ok(Server {
            listener,
            registry: Arc::new(SessionRegistry::new(config.registry)),
            max_frame,
            mode: config.mode,
            max_idle_secs: config.max_idle_secs,
            workers: config.workers,
            state: Arc::new(SharedState {
                stopping: AtomicBool::new(false),
                next_conn: AtomicU64::new(0),
                conns: Mutex::new(Vec::new()),
            }),
        })
    }

    /// The bound address (read the OS-assigned port after `bind(…:0)`).
    ///
    /// # Errors
    ///
    /// Socket introspection failures.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The registry backing this server (tests and stats).
    pub fn registry(&self) -> &Arc<SessionRegistry> {
        &self.registry
    }

    /// Accepts and serves connections until a client sends `shutdown`.
    /// Blocks; run it on a dedicated thread if the caller needs to keep
    /// working. On shutdown every live connection is closed and every
    /// worker thread joined before this returns.
    ///
    /// # Errors
    ///
    /// Fatal event-loop failures (per-connection errors are contained).
    pub fn run(self) -> io::Result<()> {
        match self.mode {
            #[cfg(unix)]
            ServerMode::Reactor => crate::reactor::run(self),
            // The reactor's poll shim needs raw fds; elsewhere the
            // thread-per-connection transport serves both modes.
            #[cfg(not(unix))]
            ServerMode::Reactor => self.run_legacy(),
            ServerMode::LegacyThreads => self.run_legacy(),
        }
    }

    /// Tears the bound server into the pieces the reactor event loop
    /// owns: `(listener, registry, max_frame, max_idle_secs, workers)`
    /// with the worker count resolved.
    #[cfg(unix)]
    pub(crate) fn into_reactor_parts(self) -> (TcpListener, Arc<SessionRegistry>, u32, u64, usize) {
        let workers = if self.workers == 0 {
            std::thread::available_parallelism()
                .map_or(2, std::num::NonZeroUsize::get)
                .clamp(2, 8)
        } else {
            self.workers
        };
        (
            self.listener,
            self.registry,
            self.max_frame,
            self.max_idle_secs,
            workers,
        )
    }

    /// The thread-per-connection transport.
    fn run_legacy(self) -> io::Result<()> {
        let addr = self.listener.local_addr()?;
        let mut workers = Vec::new();
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if self.state.stopping.load(Ordering::SeqCst) => {
                    let _ = e;
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if self.state.stopping.load(Ordering::SeqCst) {
                // The wake-up connection (or a client racing shutdown).
                drop(stream);
                break;
            }
            let registry = Arc::clone(&self.registry);
            let state = Arc::clone(&self.state);
            let max_frame = self.max_frame;
            workers.push(std::thread::spawn(move || {
                let id = state.track(&stream);
                serve_connection(stream, &registry, &state, addr, max_frame);
                if let Some(id) = id {
                    state.untrack(id);
                }
            }));
        }
        self.state.disconnect_all();
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// What a request handler wants done with the connection afterwards.
/// Shared with the reactor's dispatch workers, which report it back to
/// the event loop through their completion queue.
pub(crate) enum Next {
    Continue,
    CloseConnection,
    ShutdownServer,
}

/// Per-connection loop: one frame in, one frame out, until the peer
/// hangs up, the stream desynchronizes, or the server stops.
fn serve_connection(
    stream: TcpStream,
    registry: &SessionRegistry,
    state: &SharedState,
    server_addr: std::net::SocketAddr,
    max_frame: u32,
) {
    // Same socket options as the reactor, so the transports are
    // comparable like for like in the batching benchmarks.
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    // Connection-scoped session state: which registry entry is open,
    // and the running script line number (counts across `script`
    // frames so diagnostics name the line in the connection's stream).
    let mut entry: Option<Arc<SessionEntry>> = None;
    let mut lineno: usize = 0;

    loop {
        let payload = match read_frame(&mut reader, max_frame) {
            Ok(Some(payload)) => payload,
            // Peer hung up cleanly (or shutdown disconnected us).
            Ok(None) => return,
            Err(WireError::Oversized { len, max }) => {
                // The payload was never consumed: the stream is
                // desynchronized, so report and close.
                let msg = format!("error frame of {len} bytes exceeds the {max}-byte cap");
                let _ = write_frame(&mut writer, msg.as_bytes());
                return;
            }
            Err(WireError::Io(_)) => return,
        };
        let mut response = Vec::new();
        let next = handle_request(&payload, registry, &mut entry, &mut lineno, &mut response);
        if write_frame(&mut writer, &response).is_err() {
            return;
        }
        match next {
            Next::Continue => {}
            Next::CloseConnection => return,
            Next::ShutdownServer => {
                state.stopping.store(true, Ordering::SeqCst);
                // Wake the blocking accept with a throwaway connection.
                let _ = TcpStream::connect(server_addr);
                return;
            }
        }
    }
}

/// Dispatches one request frame. Writes the response into `response`;
/// infallible from the transport's point of view (in-band errors).
/// Every request is counted, latency-bucketed per verb, and (when
/// tracing is on) wrapped in a `server` span that parents the prepare
/// and evaluation spans the handlers open further down the stack.
/// Both transports funnel through this function (the reactor's read
/// batches excepted — those share its formatting via the script
/// interpreter), so responses cannot differ between modes.
pub(crate) fn handle_request(
    payload: &[u8],
    registry: &SessionRegistry,
    entry: &mut Option<Arc<SessionEntry>>,
    lineno: &mut usize,
    response: &mut Vec<u8>,
) -> Next {
    let m = tiebreak_trace::metrics();
    m.requests.inc();
    let started = std::time::Instant::now();
    let Ok(text) = std::str::from_utf8(payload) else {
        let _ = write!(response, "error request frame is not valid UTF-8");
        m.request_errors.inc();
        return Next::Continue;
    };
    let (verb_line, body) = match text.split_once('\n') {
        Some((v, b)) => (v.trim_end_matches('\r'), b),
        None => (text, ""),
    };
    let verb = verb_line.split_whitespace().next().unwrap_or("");
    let vi = tiebreak_trace::metrics::verb_index(verb);
    // Span name is the canonical verb (a static string), so `bye`,
    // `shutdown`, and unknown verbs all show up as `control` requests.
    let span = tiebreak_trace::span("server", tiebreak_trace::metrics::VERBS[vi], &[]);
    let next = match verb {
        "open" => {
            handle_open(verb_line, body, registry, entry, lineno, response);
            Next::Continue
        }
        "script" => {
            handle_script(body, entry.as_deref(), lineno, response);
            Next::Continue
        }
        "stats" => {
            handle_stats(registry, entry.as_deref(), response);
            Next::Continue
        }
        "metrics" => {
            // Gauges are point-in-time: refresh them from the registry
            // right before rendering so the exposition is coherent.
            let s = registry.stats();
            m.sessions_resident.set(s.sessions as u64);
            m.resident_atoms.set(s.resident_atoms);
            let _ = write!(response, "ok\n{}", m.snapshot().render_prometheus());
            Next::Continue
        }
        "ping" => {
            let _ = write!(response, "ok pong");
            Next::Continue
        }
        "bye" => {
            let _ = write!(response, "ok bye");
            Next::CloseConnection
        }
        "shutdown" => {
            let _ = write!(response, "ok shutting down");
            Next::ShutdownServer
        }
        other => {
            let _ = write!(
                response,
                "error unknown verb {other:?} (expected open, script, stats, metrics, ping, bye, \
                 or shutdown)"
            );
            Next::Continue
        }
    };
    drop(span);
    // Connection threads are long-lived: flush the thread-local ring at
    // this request boundary so a `--trace-out` drain sees every event.
    tiebreak_trace::flush();
    if response.starts_with(b"error") {
        m.request_errors.inc();
    }
    let elapsed_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    m.request_latency_us[vi].record(elapsed_us);
    next
}

/// The `stats` verb: registry-wide counters, the per-session breakdown,
/// and — when this connection has a session open — its thread-pool
/// state, reported through the same [`Solver`] accessors as the script
/// language's `? stats` so the two views cannot disagree.
///
/// [`Solver`]: tiebreak_runtime::Solver
fn handle_stats(registry: &SessionRegistry, entry: Option<&SessionEntry>, response: &mut Vec<u8>) {
    let s = registry.stats();
    let _ = write!(
        response,
        "ok sessions={} resident_atoms={} hits={} misses={} evictions={} rejected={}",
        s.sessions, s.resident_atoms, s.hits, s.misses, s.evictions, s.rejected
    );
    for per in &s.per_session {
        let _ = write!(
            response,
            "\n% session key={:016x} epoch={} atoms={} last_used={}",
            per.key, per.epoch, per.resident_atoms, per.last_used
        );
    }
    if let Some(entry) = entry {
        let session = entry.lock();
        let _ = write!(
            response,
            "\n% threads={} wave_dispatch={}",
            session.solver().effective_threads(),
            session.solver().wave_dispatch_eligible(),
        );
    }
}

/// `open <prog_byte_len>\n<program><database>` — the byte length avoids
/// any in-band separator the sources themselves could contain.
fn handle_open(
    verb_line: &str,
    body: &str,
    registry: &SessionRegistry,
    entry: &mut Option<Arc<SessionEntry>>,
    lineno: &mut usize,
    response: &mut Vec<u8>,
) {
    let mut parts = verb_line.split_whitespace();
    let _verb = parts.next();
    let Some(len) = parts.next().and_then(|s| s.parse::<usize>().ok()) else {
        let _ = write!(
            response,
            "error open needs a program byte length: open <prog_byte_len>\\n<program><database>"
        );
        return;
    };
    let Some(program) = body.get(..len) else {
        let _ = write!(
            response,
            "error program byte length {len} exceeds the {} body bytes (or splits a UTF-8 \
             character)",
            body.len()
        );
        return;
    };
    let database = &body[len..];
    let opened_at = std::time::Instant::now();
    match registry.open(program, database) {
        Ok(outcome) => {
            let prepare_ms = opened_at.elapsed().as_secs_f64() * 1e3;
            let session = outcome.entry.lock();
            let threads = session.solver().effective_threads();
            let diagnostic = session.solver().thread_diagnostic();
            let _ = write!(
                response,
                "ok opened key={:016x} reused={} evicted={} atoms={} threads={}",
                outcome.entry.key(),
                outcome.reused,
                outcome.evicted,
                session.solver().footprint().atoms,
                threads,
            );
            // Surface the TIEBREAK_THREADS fallback diagnostic to every
            // connection that opens a session — not just whichever one
            // happened to arrive first in the process's lifetime.
            if let Some(diag) = diagnostic {
                let _ = write!(response, "\n% {diag}");
            }
            if let Some(summary) = outcome.entry.analysis_summary() {
                let _ = write!(response, "\n% analysis: {summary}");
            }
            // Timing annotations ride along only when tracing is on, so
            // the default wire format stays byte-stable.
            if tiebreak_trace::enabled() {
                let _ = write!(response, "\n% timing: prepare={prepare_ms:.3}ms");
            }
            drop(session);
            *entry = Some(outcome.entry);
            *lineno = 0;
        }
        Err(e) => {
            let _ = write!(response, "error {e}");
        }
    }
}

/// `script\n<lines>` — runs the frame's lines under the session lock,
/// flushing trailing staged mutations before releasing it.
fn handle_script(
    body: &str,
    entry: Option<&SessionEntry>,
    lineno: &mut usize,
    response: &mut Vec<u8>,
) {
    let Some(entry) = entry else {
        let _ = write!(response, "error no session open (send an open frame first)");
        return;
    };
    let mut out = Vec::new();
    let mut errors: usize = 0;
    let mut session = entry.lock();
    for line in body.lines() {
        *lineno += 1;
        match session.process_line(*lineno, line, &mut out) {
            Ok(LineOutcome::Ok) => {}
            Ok(LineOutcome::Error) => errors += 1,
            // Writes to a Vec cannot fail; treat defensively anyway.
            Err(_) => errors += 1,
        }
    }
    if matches!(session.finish(&mut out), Ok(LineOutcome::Error) | Err(_)) {
        errors += 1;
    }
    entry.sync_footprint(&session);
    drop(session);
    let _ = writeln!(response, "ok errors={errors}");
    response.extend_from_slice(&out);
}
