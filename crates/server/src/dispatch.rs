//! The bounded worker pool behind the reactor, plus the per-session
//! cross-connection batching queue.
//!
//! Every complete request frame the reactor reads is submitted here.
//! Requests fall into two classes:
//!
//! * **Free** work — `open`, `stats`, `metrics`, `ping`, control verbs,
//!   and `script` frames on connections with no session open. Any
//!   worker runs them via the same `handle_request` the legacy
//!   transport uses, so the two transports cannot drift.
//! * **Session** work — `script` frames against an open session. These
//!   enter a FIFO queue keyed by the session entry; at most one worker
//!   drains a given session's queue at a time, which preserves the
//!   per-session serialization the legacy mutex gave while freeing the
//!   pool to serve other sessions concurrently.
//!
//! The batching rule: when the head of a session queue is a *read-only*
//! frame (every effective line a `?` query — see
//! [`ScriptSession::frame_is_read_only`]), the worker takes the longest
//! prefix of consecutive read-only frames as **one batch** and answers
//! them all from **one** shared wave-parallel evaluation
//! ([`ReadBatch`]): queries that arrived from N connections while an
//! evaluation was in flight coalesce instead of each re-running the
//! branch scheduler. A mutating frame at the head is taken alone — the
//! FIFO order makes it an *epoch barrier*: reads queued before it were
//! batched and answered first, reads queued after it wait for the new
//! epoch. Per-query answers are byte-identical to the sequential path
//! (the sequential path literally runs the batched formatter with a
//! batch of one).
//!
//! Batches are observable: each records the `tiebreak_batch_size`
//! histogram, bumps `tiebreak_batches_dispatched`, and opens a
//! `server/batch` span that parents the per-frame request spans.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

use tiebreak_runtime::ReadBatch;

use crate::reactor::Notifier;
use crate::registry::{SessionEntry, SessionRegistry};
use crate::script::ScriptSession;
use crate::server::{handle_request, Next};

/// Per-connection protocol state, shared between the reactor (which
/// owns the socket) and whichever worker executes the connection's
/// current request. Uncontended in practice: one request per connection
/// is in flight at a time.
#[derive(Default)]
pub(crate) struct ConnState {
    /// The session this connection has open, if any.
    pub entry: Option<Arc<SessionEntry>>,
    /// Running script line number (counts across `script` frames).
    pub lineno: usize,
}

/// A finished request on its way back to the reactor.
pub(crate) struct Completion {
    pub conn: u64,
    pub response: Vec<u8>,
    pub next: Next,
}

/// One queued `script` frame against an open session.
struct ScriptJob {
    conn: u64,
    session: Arc<Mutex<ConnState>>,
    payload: Vec<u8>,
    read_only: bool,
}

/// FIFO of a session's pending script frames. `running` guarantees a
/// single worker drains it (per-session serialization).
struct SessionQueue {
    entry: Arc<SessionEntry>,
    jobs: VecDeque<ScriptJob>,
    running: bool,
}

enum WorkItem {
    Free {
        conn: u64,
        session: Arc<Mutex<ConnState>>,
        payload: Vec<u8>,
    },
    /// The session queue under this key became runnable.
    Session(usize),
}

struct Shared {
    registry: Arc<SessionRegistry>,
    notifier: Arc<Notifier>,
    work: Mutex<VecDeque<WorkItem>>,
    available: Condvar,
    /// Session queues keyed by entry identity (`Arc` pointer), not
    /// registry key: two entries for the same program+database (one
    /// evicted, one re-prepared) must never share a queue.
    sessions: Mutex<HashMap<usize, SessionQueue>>,
    completions: Mutex<Vec<Completion>>,
    stopping: AtomicBool,
}

/// The worker pool handle owned by the reactor.
pub(crate) struct Dispatcher {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Dispatcher {
    /// Spawns `workers` threads (at least one).
    pub(crate) fn start(
        registry: Arc<SessionRegistry>,
        notifier: Arc<Notifier>,
        workers: usize,
    ) -> Dispatcher {
        let shared = Arc::new(Shared {
            registry,
            notifier,
            work: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            sessions: Mutex::new(HashMap::new()),
            completions: Mutex::new(Vec::new()),
            stopping: AtomicBool::new(false),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tiebreak-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn dispatch worker")
            })
            .collect();
        Dispatcher { shared, workers }
    }

    /// Routes one request frame (reactor thread).
    pub(crate) fn submit(&self, conn: u64, session: &Arc<Mutex<ConnState>>, payload: Vec<u8>) {
        // A `script` frame on a connection with an open session is
        // session work; everything else (including invalid UTF-8, which
        // `handle_request` reports in-band) is free work.
        let script_target = std::str::from_utf8(&payload).ok().and_then(|text| {
            let (verb_line, body) = text.split_once('\n').unwrap_or((text, ""));
            let verb = verb_line.trim_end_matches('\r').split_whitespace().next();
            if verb != Some("script") {
                return None;
            }
            let state = session.lock().unwrap_or_else(PoisonError::into_inner);
            state
                .entry
                .as_ref()
                .map(|entry| (Arc::clone(entry), ScriptSession::frame_is_read_only(body)))
        });
        match script_target {
            Some((entry, read_only)) => {
                let key = Arc::as_ptr(&entry) as usize;
                let job = ScriptJob {
                    conn,
                    session: Arc::clone(session),
                    payload,
                    read_only,
                };
                let runnable = {
                    let mut sessions = self
                        .shared
                        .sessions
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    let q = sessions.entry(key).or_insert_with(|| SessionQueue {
                        entry,
                        jobs: VecDeque::new(),
                        running: false,
                    });
                    q.jobs.push_back(job);
                    if q.running {
                        false
                    } else {
                        q.running = true;
                        true
                    }
                };
                if runnable {
                    self.push_work(WorkItem::Session(key));
                }
            }
            None => self.push_work(WorkItem::Free {
                conn,
                session: Arc::clone(session),
                payload,
            }),
        }
    }

    /// Takes every completion queued since the last drain.
    pub(crate) fn drain_completions(&self) -> Vec<Completion> {
        std::mem::take(
            &mut self
                .shared
                .completions
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    /// Stops the pool: in-flight work finishes, queued work is dropped,
    /// workers join.
    pub(crate) fn shutdown(self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for worker in self.workers {
            let _ = worker.join();
        }
    }

    fn push_work(&self, item: WorkItem) {
        self.shared
            .work
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(item);
        self.shared.available.notify_one();
    }
}

fn complete(shared: &Shared, completion: Completion) {
    shared
        .completions
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(completion);
    shared.notifier.notify();
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let item = {
            let mut work = shared.work.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(item) = work.pop_front() {
                    break item;
                }
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                work = shared
                    .available
                    .wait(work)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match item {
            WorkItem::Free {
                conn,
                session,
                payload,
            } => {
                let mut response = Vec::new();
                let next = {
                    let mut state = session.lock().unwrap_or_else(PoisonError::into_inner);
                    let ConnState { entry, lineno } = &mut *state;
                    handle_request(&payload, &shared.registry, entry, lineno, &mut response)
                };
                complete(
                    shared,
                    Completion {
                        conn,
                        response,
                        next,
                    },
                );
            }
            WorkItem::Session(key) => drain_session_queue(shared, key),
        }
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Drains one session's queue, batch by batch, until it is empty.
fn drain_session_queue(shared: &Arc<Shared>, key: usize) {
    loop {
        let (entry, batch) = {
            let mut sessions = shared
                .sessions
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let Some(q) = sessions.get_mut(&key) else {
                return;
            };
            if q.jobs.is_empty() || shared.stopping.load(Ordering::SeqCst) {
                // Done (or shutting down, dropping what's queued). The
                // queue object goes away; a later submit re-creates it.
                sessions.remove(&key);
                return;
            }
            let mut batch = Vec::new();
            if q.jobs.front().is_some_and(|j| j.read_only) {
                // The longest prefix of consecutive read-only frames
                // shares one evaluation. A mutating frame behind them
                // stays queued: it is the epoch barrier that the batch
                // drains ahead of.
                while q.jobs.front().is_some_and(|j| j.read_only) {
                    batch.push(q.jobs.pop_front().expect("checked front"));
                }
            } else {
                batch.push(q.jobs.pop_front().expect("checked non-empty"));
            }
            (Arc::clone(&q.entry), batch)
        };
        if batch[0].read_only {
            execute_read_batch(shared, &entry, batch);
        } else {
            // The barrier: one mutating frame, executed exactly like
            // the legacy transport would (same handler, same locking).
            let job = batch.into_iter().next().expect("batch of one");
            let mut response = Vec::new();
            let next = {
                let mut state = job.session.lock().unwrap_or_else(PoisonError::into_inner);
                let ConnState { entry, lineno } = &mut *state;
                handle_request(&job.payload, &shared.registry, entry, lineno, &mut response)
            };
            complete(
                shared,
                Completion {
                    conn: job.conn,
                    response,
                    next,
                },
            );
        }
    }
}

/// Answers a batch of read-only frames from one shared evaluation,
/// fanning per-frame responses back to their connections.
fn execute_read_batch(shared: &Shared, entry: &Arc<SessionEntry>, jobs: Vec<ScriptJob>) {
    let m = tiebreak_trace::metrics();
    m.batches_dispatched.inc();
    m.batch_size.record(jobs.len() as u64);
    let vi = tiebreak_trace::metrics::verb_index("script");
    let batch_span = tiebreak_trace::span("server", "batch", &[("frames", jobs.len() as u64)]);
    let session = entry.lock();
    let mut batch = ReadBatch::new();
    for job in jobs {
        m.requests.inc();
        let started = std::time::Instant::now();
        let span = tiebreak_trace::span("server", tiebreak_trace::metrics::VERBS[vi], &[]);
        let body = std::str::from_utf8(&job.payload)
            .ok()
            .and_then(|text| text.split_once('\n').map(|(_, b)| b))
            .unwrap_or("");
        let mut out = Vec::new();
        let errors = {
            let mut state = job.session.lock().unwrap_or_else(PoisonError::into_inner);
            session
                .process_read_frame(&mut state.lineno, body, &mut batch, &mut out)
                // Writes to a Vec cannot fail; count defensively.
                .unwrap_or(1)
        };
        let mut response = Vec::new();
        let _ = writeln!(response, "ok errors={errors}");
        response.extend_from_slice(&out);
        drop(span);
        let elapsed_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        m.request_latency_us[vi].record(elapsed_us);
        complete(
            shared,
            Completion {
                conn: job.conn,
                response,
                next: Next::Continue,
            },
        );
    }
    drop(session);
    drop(batch_span);
    tiebreak_trace::flush();
}
