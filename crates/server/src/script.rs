//! The session-script interpreter shared by the CLI `session` loop and
//! the network server.
//!
//! One [`ScriptSession`] holds one long-lived [`Solver`] and interprets
//! the mutation-script line language against it:
//!
//! ```text
//! +fact.          stage an insertion
//! -fact.          stage a retraction
//! ? wf            apply staged mutations, print the well-founded model
//! ?fact.          apply staged mutations, print one atom's truth value
//! ? outcomes [N]  apply staged mutations, enumerate tie outcomes
//! ? stats         apply staged mutations, report the session state
//! # …  /  % …     comment (blank lines are skipped too)
//! ```
//!
//! Consecutive mutations batch into one epoch; every applied batch
//! prints a `% epoch …` line describing the incremental work.
//!
//! **Robustness contract** (what makes the interpreter safe to drive
//! from a socket): a malformed line *never* poisons the session. The
//! error is reported on the output sink as `! line N: …` — with the
//! line number the driver supplied, so a streaming client can correlate
//! — and processing continues with the next line. Any mutations staged
//! by the batch the bad line belonged to are **discarded**, not leaked
//! into the next `apply`: a batch is all-or-nothing even when the
//! failure is a parse error on its last line. Evaluation and `apply`
//! errors (e.g. a grounding-budget overflow) are reported the same way;
//! the solver itself rolls failed batches back (see
//! [`Solver::apply`]), so the session keeps serving afterwards.

use std::io::{self, Write};

use datalog_ast::GroundAtom;
use tiebreak_core::semantics::outcomes::OutcomeSet;
use tiebreak_core::{Mutation, PrepareDelta};
use tiebreak_runtime::{ReadBatch, Solver};

/// Default cap on `? outcomes` enumeration when the script names none.
pub const DEFAULT_OUTCOME_RUNS: usize = 256;

/// What processing one line did — drivers use this to count per-session
/// diagnostics (the exit status of a file-driven CLI session, a
/// connection's error tally on the server).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineOutcome {
    /// The line was interpreted (or skipped as blank/comment).
    Ok,
    /// The line (or the batch it completed) failed; the error was
    /// reported on the sink and the session is ready for the next line.
    Error,
}

/// A long-lived script interpreter over one [`Solver`].
pub struct ScriptSession {
    solver: Solver,
    /// `? outcomes` enumerates pure tie-breaking instead of wf-tb.
    pure: bool,
    staged: Vec<Mutation>,
}

impl ScriptSession {
    /// Wraps a prepared solver. `pure` selects Pure Tie-Breaking for
    /// `? outcomes` (the CLI's `--semantics pure-tb`).
    pub fn new(solver: Solver, pure: bool) -> Self {
        ScriptSession {
            solver,
            pure,
            staged: Vec::new(),
        }
    }

    /// The underlying solver.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Mutations staged but not yet applied (batching in progress).
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Processes one script line against the session, writing every
    /// response line to `out`. `lineno` is 1-based and caller-supplied
    /// so the driver's numbering (file line, connection stream position)
    /// shows up verbatim in diagnostics.
    ///
    /// # Errors
    ///
    /// Only sink I/O errors. Malformed lines and failed
    /// applies/evaluations are reported *into the sink* and the session
    /// stays usable — see the module docs for the discard semantics.
    pub fn process_line(
        &mut self,
        lineno: usize,
        raw: &str,
        out: &mut dyn Write,
    ) -> io::Result<LineOutcome> {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            return Ok(LineOutcome::Ok);
        }
        match self.interpret(lineno, line, out) {
            Ok(()) => Ok(LineOutcome::Ok),
            Err(Failure::Io(e)) => Err(e),
            Err(Failure::Script(msg)) => {
                // The failed batch is discarded whole: staged-but-
                // unapplied mutations must not leak into the next apply.
                let dropped = self.staged.len();
                self.staged.clear();
                writeln!(out, "! line {lineno}: {msg}")?;
                if dropped > 0 {
                    writeln!(
                        out,
                        "! line {lineno}: discarded {dropped} staged mutation(s) from the failed \
                         batch"
                    )?;
                }
                Ok(LineOutcome::Error)
            }
        }
    }

    /// Applies any trailing staged mutations (end-of-script flush).
    ///
    /// # Errors
    ///
    /// Sink I/O errors only; apply failures are reported into the sink.
    pub fn finish(&mut self, out: &mut dyn Write) -> io::Result<LineOutcome> {
        match self.flush_staged(out) {
            Ok(()) => Ok(LineOutcome::Ok),
            Err(Failure::Io(e)) => Err(e),
            Err(Failure::Script(msg)) => {
                self.staged.clear();
                writeln!(out, "! end of script: {msg}")?;
                Ok(LineOutcome::Error)
            }
        }
    }

    /// Whether every effective line of a script frame is a `?` query —
    /// the frame cannot mutate the session, so the server may coalesce
    /// it with other read-only frames into one shared evaluation.
    ///
    /// This classification is frame-local and sound because `script`
    /// frames are transactional: staged mutations never survive a frame
    /// boundary (the server calls [`ScriptSession::finish`] per frame),
    /// so a frame of pure queries touches no mutable state.
    pub fn frame_is_read_only(body: &str) -> bool {
        body.lines().map(str::trim).all(|line| {
            line.is_empty()
                || line.starts_with('#')
                || line.starts_with('%')
                || line.starts_with('?')
        })
    }

    /// Runs one read-only frame (see
    /// [`frame_is_read_only`](ScriptSession::frame_is_read_only)) against
    /// a shared [`ReadBatch`], producing byte-for-byte the output
    /// [`process_line`](ScriptSession::process_line) +
    /// [`finish`](ScriptSession::finish) would have produced for the
    /// same lines — but every frame sharing `batch` reuses one
    /// wave-parallel evaluation instead of paying its own. `lineno`
    /// advances across the frame exactly like the sequential path, and
    /// the returned count is the frame's failed lines.
    ///
    /// # Errors
    ///
    /// Sink I/O errors only; malformed queries are reported in-band.
    pub fn process_read_frame(
        &self,
        lineno: &mut usize,
        body: &str,
        batch: &mut ReadBatch,
        out: &mut dyn Write,
    ) -> io::Result<usize> {
        debug_assert!(
            Self::frame_is_read_only(body),
            "process_read_frame on a frame with non-query lines"
        );
        let mut errors = 0;
        for raw in body.lines() {
            *lineno += 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
                continue;
            }
            let result = match line.strip_prefix('?') {
                Some(rest) => {
                    // Mirrors `interpret`: the prepare phase is the
                    // staged flush, a no-op on a read-only frame but
                    // still timed so the annotation shape matches.
                    let prepare_started = std::time::Instant::now();
                    let prepare_ms = prepare_started.elapsed().as_secs_f64() * 1e3;
                    let eval_started = std::time::Instant::now();
                    match self.read_query(rest.trim(), batch, out) {
                        Ok(()) => {
                            if tiebreak_trace::enabled() {
                                let eval_ms = eval_started.elapsed().as_secs_f64() * 1e3;
                                writeln!(
                                    out,
                                    "% timing: prepare={prepare_ms:.3}ms eval={eval_ms:.3}ms"
                                )?;
                            }
                            Ok(())
                        }
                        Err(e) => Err(e),
                    }
                }
                // Unreachable for correctly classified frames; report
                // with the sequential path's message so even a
                // misclassified frame degrades to an in-band error.
                None => Err(Failure::Script(format!(
                    "expected '+fact.', '-fact.', or '?query', got {line:?}"
                ))),
            };
            match result {
                Ok(()) => {}
                Err(Failure::Io(e)) => return Err(e),
                Err(Failure::Script(msg)) => {
                    // No staged mutations can exist here, so no discard
                    // report — identical to the sequential path's output
                    // for a read-only frame.
                    writeln!(out, "! line {lineno}: {msg}")?;
                    errors += 1;
                }
            }
        }
        Ok(errors)
    }

    /// The read-only subset of [`query`](ScriptSession::query), answered
    /// from the batch's shared run.
    fn read_query(
        &self,
        query: &str,
        batch: &mut ReadBatch,
        out: &mut dyn Write,
    ) -> Result<(), Failure> {
        if query == "wf" {
            let outcome = batch
                .model(&self.solver)
                .map_err(|e| Failure::Script(e.to_string()))?;
            for fact in &outcome.true_facts {
                writeln!(out, "{fact}.")?;
            }
            if !outcome.total {
                writeln!(
                    out,
                    "% partial model: {} atoms left undefined",
                    outcome.undefined.len()
                )?;
            }
        } else if query == "stats" {
            self.write_stats(out)?;
        } else if let Some(limit) = query.strip_prefix("outcomes") {
            let limit = limit.trim();
            let max_runs = if limit.is_empty() {
                DEFAULT_OUTCOME_RUNS
            } else {
                limit
                    .parse()
                    .map_err(|e| Failure::Script(format!("bad outcome limit: {e}")))?
            };
            let set = self
                .solver
                .all_outcomes(self.pure, max_runs)
                .map_err(|e| Failure::Script(e.to_string()))?;
            write_outcomes(out, &set, self.solver.graph().atoms())?;
        } else {
            let fact = parse_fact(query)?;
            match batch
                .truth(&self.solver, &fact)
                .map_err(|e| Failure::Script(e.to_string()))?
            {
                Some(value) => writeln!(out, "{fact}: {value}")?,
                None => writeln!(out, "{fact}: false (not in the ground atom space)")?,
            }
        }
        Ok(())
    }

    /// The `? stats` report (shared by the sequential and batched
    /// paths so the two cannot drift).
    fn write_stats(&self, out: &mut dyn Write) -> Result<(), Failure> {
        let fp = self.solver.footprint();
        writeln!(
            out,
            "% epoch {} | {} branches | {} components | {} residual atoms | db {} facts | \
             graph {} atoms / {} rules / ~{} KiB",
            self.solver.epoch(),
            self.solver.branch_count(),
            self.solver.component_count(),
            self.solver.residual_atom_count(),
            self.solver.database().len(),
            fp.atoms,
            fp.rules,
            fp.approx_bytes / 1024,
        )?;
        // Same accessors as the server's `stats` verb, so the two
        // views of the thread pool cannot disagree.
        writeln!(
            out,
            "% threads={} wave_dispatch={}",
            self.solver.effective_threads(),
            self.solver.wave_dispatch_eligible(),
        )?;
        if let Some(delta) = self.solver.last_delta() {
            writeln!(out, "{}", describe_delta(delta))?;
        }
        Ok(())
    }

    fn interpret(&mut self, lineno: usize, line: &str, out: &mut dyn Write) -> Result<(), Failure> {
        if let Some(rest) = line.strip_prefix('+') {
            let fact = parse_fact(rest)?;
            self.staged.push(Mutation::Insert(fact));
        } else if let Some(rest) = line.strip_prefix('-') {
            let fact = parse_fact(rest)?;
            self.staged.push(Mutation::Retract(fact));
        } else if let Some(rest) = line.strip_prefix('?') {
            let prepare_started = std::time::Instant::now();
            self.flush_staged(out)?;
            let prepare_ms = prepare_started.elapsed().as_secs_f64() * 1e3;
            let eval_started = std::time::Instant::now();
            self.query(rest.trim(), out)?;
            // Annotate only when tracing is on so the default reply
            // format stays byte-stable for existing drivers.
            if tiebreak_trace::enabled() {
                let eval_ms = eval_started.elapsed().as_secs_f64() * 1e3;
                writeln!(
                    out,
                    "% timing: prepare={prepare_ms:.3}ms eval={eval_ms:.3}ms"
                )?;
            }
        } else {
            return Err(Failure::Script(format!(
                "expected '+fact.', '-fact.', or '?query', got {line:?}"
            )));
        }
        let _ = lineno;
        Ok(())
    }

    fn flush_staged(&mut self, out: &mut dyn Write) -> Result<(), Failure> {
        if self.staged.is_empty() {
            return Ok(());
        }
        let delta = self
            .solver
            .apply(std::mem::take(&mut self.staged))
            .map_err(|e| Failure::Script(format!("apply failed: {e}")))?;
        writeln!(out, "{}", describe_delta(&delta))?;
        Ok(())
    }

    fn query(&mut self, query: &str, out: &mut dyn Write) -> Result<(), Failure> {
        // The sequential path is the batched path with a batch of one —
        // a private shared run per query, the same formatting code — so
        // the two paths are byte-identical by construction.
        let mut batch = ReadBatch::new();
        self.read_query(query, &mut batch, out)
    }
}

/// Interpreter failure plumbing: sink errors abort the driver, script
/// errors are reported and survived.
enum Failure {
    Io(io::Error),
    Script(String),
}

impl From<io::Error> for Failure {
    fn from(e: io::Error) -> Self {
        Failure::Io(e)
    }
}

/// Parses one `pred(c1, …).` session-script fact (trailing dot
/// optional).
fn parse_fact(src: &str) -> Result<GroundAtom, Failure> {
    let src = src.trim();
    let stripped = src.strip_suffix('.').unwrap_or(src).trim();
    let db = datalog_ast::parse_database(&format!("{stripped}."))
        .map_err(|e| Failure::Script(format!("bad fact {stripped:?}: {e}")))?;
    let mut facts: Vec<GroundAtom> = db.facts().collect();
    if facts.len() != 1 {
        return Err(Failure::Script("expected exactly one ground fact".into()));
    }
    Ok(facts.pop().expect("one fact"))
}

/// One line summarizing what a mutation batch did to the prepared state
/// (the `% epoch …` report shared by the CLI and the server).
pub fn describe_delta(delta: &PrepareDelta) -> String {
    if delta.rebuilt {
        format!(
            "% epoch {}: +{} -{} | re-prepared ({})",
            delta.epoch,
            delta.inserted,
            delta.retracted,
            delta.rebuild_reason.as_deref().unwrap_or("unspecified"),
        )
    } else {
        format!(
            "% epoch {}: +{} -{} | cone {} atoms / {} rules | grounded +{} atoms +{} rules | \
             branches {}/{} invalidated | residual {}",
            delta.epoch,
            delta.inserted,
            delta.retracted,
            delta.cone_atoms,
            delta.cone_rules,
            delta.new_atoms,
            delta.new_rules,
            delta.branches_invalidated,
            delta.branches_total,
            delta.residual_atoms,
        )
    }
}

/// Writes an outcome set in the shared `outcomes` format.
///
/// # Errors
///
/// Sink I/O errors.
pub fn write_outcomes(
    out: &mut dyn Write,
    set: &OutcomeSet,
    atoms: &datalog_ground::AtomTable,
) -> io::Result<()> {
    writeln!(
        out,
        "% {} distinct outcome(s) over {} run(s){}",
        set.models.len(),
        set.runs,
        if set.truncated { " (truncated)" } else { "" }
    )?;
    for (i, model) in set.models.iter().enumerate() {
        let facts: Vec<String> = model
            .true_atoms(atoms)
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        writeln!(
            out,
            "% outcome {} ({}): {{{}}}",
            i + 1,
            if model.is_total() { "total" } else { "partial" },
            facts.join(", ")
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(program: &str, db: &str) -> ScriptSession {
        ScriptSession::new(Solver::from_sources(program, db).unwrap(), false)
    }

    fn drive(s: &mut ScriptSession, lines: &[&str]) -> (String, usize) {
        let mut out = Vec::new();
        let mut errors = 0;
        for (i, line) in lines.iter().enumerate() {
            if s.process_line(i + 1, line, &mut out).unwrap() == LineOutcome::Error {
                errors += 1;
            }
        }
        if s.finish(&mut out).unwrap() == LineOutcome::Error {
            errors += 1;
        }
        (String::from_utf8(out).unwrap(), errors)
    }

    #[test]
    fn malformed_lines_are_reported_and_survived() {
        let mut s = session("win(X) :- move(X, Y), not win(Y).", "move(a, b).");
        let (out, errors) = drive(
            &mut s,
            &[
                "? win(a)",
                "this is not a command",
                "? win(a)",
                "+ bad fact here (",
                "? win(b)",
            ],
        );
        assert_eq!(errors, 2, "{out}");
        assert!(out.contains("! line 2: expected '+fact.'"), "{out}");
        assert!(out.contains("! line 4: bad fact"), "{out}");
        // Both queries around the failures answered.
        assert_eq!(out.matches("win(a): true").count(), 2, "{out}");
        assert!(out.contains("win(b): false"), "{out}");
    }

    #[test]
    fn failed_batch_discards_staged_mutations() {
        let mut s = session("win(X) :- move(X, Y), not win(Y).", "move(a, b).");
        // The staged insert precedes the malformed line: it must NOT be
        // applied by the later query's flush.
        let (out, errors) = drive(
            &mut s,
            &["+ move(b, a).", "garbage after staging", "? stats", "? wf"],
        );
        assert_eq!(errors, 1, "{out}");
        assert!(out.contains("discarded 1 staged mutation(s)"), "{out}");
        assert!(out.contains("% epoch 0 |"), "{out}");
        assert!(!out.contains("% epoch 1"), "{out}");
        assert!(
            !s.solver()
                .database()
                .contains(&GroundAtom::from_texts("move", &["b", "a"])),
            "staged mutation leaked into the database"
        );
    }

    #[test]
    fn trailing_staged_mutations_flush_at_finish() {
        let mut s = session("win(X) :- move(X, Y), not win(Y).", "move(a, b).");
        let (out, errors) = drive(&mut s, &["+ move(b, a)."]);
        assert_eq!(errors, 0, "{out}");
        assert!(out.contains("% epoch 1: +1 -0"), "{out}");
        assert_eq!(s.solver().epoch(), 1);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let mut s = session("p :- not q.\nq :- not p.", "");
        let (out, errors) = drive(
            &mut s,
            &["# comment", "% also a comment", "", "? outcomes 8"],
        );
        assert_eq!(errors, 0, "{out}");
        assert!(out.contains("% 2 distinct outcome(s)"), "{out}");
    }

    #[test]
    fn bad_outcome_limit_is_survivable() {
        let mut s = session("p :- not q.\nq :- not p.", "");
        let (out, errors) = drive(&mut s, &["? outcomes nope", "? outcomes 4"]);
        assert_eq!(errors, 1, "{out}");
        assert!(out.contains("! line 1: bad outcome limit"), "{out}");
        assert!(out.contains("% 2 distinct outcome(s)"), "{out}");
    }
}
