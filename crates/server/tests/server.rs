//! End-to-end tests of the serving tier: many concurrent connections,
//! result fidelity against fresh single-session solvers, and hostile
//! input on the wire.

use std::net::TcpStream;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tiebreak_runtime::Solver;
use tiebreak_server::{
    read_frame, write_frame, Client, ClientError, LineOutcome, RegistryConfig, ScriptSession,
    Server, ServerConfig, ServerMode, SessionRegistry, WireError, DEFAULT_MAX_FRAME_BYTES,
};

const PROG: &str = "win(X) :- move(X, Y), not win(Y).";

/// A default config with the transport pinned — the behavioral suites
/// run once per [`ServerMode`] so the reactor and the legacy
/// thread-per-connection transport stay observably interchangeable.
fn config_for(mode: ServerMode) -> ServerConfig {
    ServerConfig {
        mode,
        ..ServerConfig::default()
    }
}

/// Starts a server on an OS-assigned port; returns its address, its
/// registry (for stats assertions), and the run-loop thread handle.
fn start_server(
    config: ServerConfig,
) -> (
    std::net::SocketAddr,
    Arc<SessionRegistry>,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let registry = Arc::clone(server.registry());
    let handle = std::thread::spawn(move || server.run());
    (addr, registry, handle)
}

fn stop_server(addr: std::net::SocketAddr, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    client.shutdown().expect("shutdown");
    handle.join().expect("join").expect("clean run exit");
}

/// Drives the same script through a fresh single-session solver — the
/// fidelity oracle the served responses must match byte for byte.
fn fresh_solver_output(program: &str, database: &str, lines: &[&str]) -> String {
    let solver = Solver::from_sources(program, database).expect("prepare");
    let mut session = ScriptSession::new(solver, false);
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let outcome = session.process_line(i + 1, line, &mut out).expect("sink");
        assert_eq!(outcome, LineOutcome::Ok, "oracle script must be clean");
    }
    assert_eq!(session.finish(&mut out).expect("sink"), LineOutcome::Ok);
    String::from_utf8(out).expect("utf8")
}

#[test]
fn concurrent_clients_get_bit_identical_results_reactor() {
    concurrent_clients_case(ServerMode::Reactor);
}

#[test]
fn concurrent_clients_get_bit_identical_results_legacy() {
    concurrent_clients_case(ServerMode::LegacyThreads);
}

fn concurrent_clients_case(mode: ServerMode) {
    let (addr, registry, handle) = start_server(config_for(mode));

    // Five clients churn disjoint sessions (each mutates its own
    // chain); five more share one tie-pocket session, query-only so the
    // shared state stays deterministic. Ten concurrent connections in
    // flight at once.
    let disjoint: Vec<(String, Vec<String>)> = (0..5)
        .map(|i| {
            let db = format!("move(a{i}, b{i}).\nmove(b{i}, c{i}).");
            let script = vec![
                format!("? win(a{i})"),
                format!("+ move(c{i}, a{i})."),
                "? wf".to_owned(),
                "? stats".to_owned(),
            ];
            (db, script)
        })
        .collect();
    let shared_db = "move(p, q).\nmove(q, p).";
    let shared_script = ["? outcomes 4", "? win(p)", "? stats"];

    let mut expected = Vec::new();
    for (db, script) in &disjoint {
        let lines: Vec<&str> = script.iter().map(String::as_str).collect();
        expected.push(fresh_solver_output(PROG, db, &lines));
    }
    let shared_expected = fresh_solver_output(PROG, shared_db, &shared_script);

    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for (i, (db, script)) in disjoint.iter().enumerate() {
            let expected = &expected[i];
            workers.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let open = client.open(PROG, db).expect("open");
                assert!(open.status.contains("reused=false"), "{}", open.status);
                let response = client.script(&script.join("\n")).expect("script");
                assert_eq!(response.status, "errors=0");
                assert_eq!(&response.body, expected, "disjoint client {i}");
                client.bye().expect("bye");
            }));
        }
        for i in 0..5 {
            let shared_expected = &shared_expected;
            workers.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.open(PROG, shared_db).expect("open");
                let response = client.script(&shared_script.join("\n")).expect("script");
                assert_eq!(response.status, "errors=0");
                assert_eq!(&response.body, shared_expected, "shared client {i}");
                client.bye().expect("bye");
            }));
        }
        for worker in workers {
            worker.join().expect("client thread");
        }
    });

    // Six distinct keys were prepared exactly once each; the other four
    // opens of the shared key were registry hits (whether they raced
    // the preparation or arrived after it).
    let stats = registry.stats();
    assert_eq!(stats.sessions, 6, "{stats:?}");
    assert_eq!(stats.misses, 6, "{stats:?}");
    assert_eq!(stats.hits, 4, "{stats:?}");

    stop_server(addr, handle);
}

#[test]
fn malformed_connection_does_not_disturb_others_reactor() {
    malformed_connection_case(ServerMode::Reactor);
}

#[test]
fn malformed_connection_does_not_disturb_others_legacy() {
    malformed_connection_case(ServerMode::LegacyThreads);
}

fn malformed_connection_case(mode: ServerMode) {
    let (addr, _registry, handle) = start_server(config_for(mode));
    let db = "move(a, b).\nmove(b, c).";

    // Client B holds a healthy connection to the same session for the
    // whole test.
    let mut healthy = Client::connect(addr).expect("connect");
    healthy.open(PROG, db).expect("open");

    // Client A misbehaves at every protocol layer.
    let mut hostile = Client::connect(addr).expect("connect");
    hostile.open(PROG, db).expect("open");
    // Unknown verb: in-band error, connection stays up.
    match hostile.call(b"frobnicate") {
        Err(ClientError::Server(msg)) => assert!(msg.contains("unknown verb"), "{msg}"),
        other => panic!("expected server error, got {other:?}"),
    }
    // Bad open header.
    match hostile.call(b"open 999999\ntoo short") {
        Err(ClientError::Server(msg)) => assert!(msg.contains("byte length"), "{msg}"),
        other => panic!("expected server error, got {other:?}"),
    }
    // Non-UTF-8 request frame.
    match hostile.call(&[0xff, 0xfe, 0x00, 0x80]) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("UTF-8"), "{msg}"),
        other => panic!("expected server error, got {other:?}"),
    }
    // Malformed script lines: reported per line, session survives, and
    // the staged-but-unapplied mutation is discarded.
    let response = hostile
        .script("+ move(c, a).\nutter garbage\n? stats")
        .expect("script");
    assert_eq!(response.status, "errors=1");
    assert!(response.body.contains("! line 2:"), "{}", response.body);
    assert!(
        response.body.contains("discarded 1 staged mutation(s)"),
        "{}",
        response.body
    );
    assert!(response.body.contains("% epoch 0 |"), "{}", response.body);

    // Oversized frame: rejected before allocation, connection closed.
    {
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        let mut header = Vec::new();
        header.extend_from_slice(&u32::MAX.to_be_bytes());
        header.extend_from_slice(b"junk");
        std::io::Write::write_all(&mut raw, &header).expect("write");
        let reply = read_frame(&mut raw, DEFAULT_MAX_FRAME_BYTES)
            .expect("error frame")
            .expect("some frame");
        let text = String::from_utf8_lossy(&reply);
        assert!(text.starts_with("error"), "{text}");
        assert!(text.contains("exceeds"), "{text}");
        assert!(
            read_frame(&mut raw, DEFAULT_MAX_FRAME_BYTES)
                .expect("clean close")
                .is_none(),
            "server must close a desynchronized connection"
        );
    }
    // Truncated frame: header promises more than the peer sends before
    // hanging up. The server just drops the connection.
    {
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        std::io::Write::write_all(&mut raw, &100u32.to_be_bytes()).expect("write");
        std::io::Write::write_all(&mut raw, b"only a little").expect("write");
        drop(raw);
    }

    // Through all of it, the healthy connection answers correctly — and
    // sees none of the hostile client's discarded mutations.
    let expected = fresh_solver_output(PROG, db, &["? win(a)", "? wf"]);
    let response = healthy.script("? win(a)\n? wf").expect("script");
    assert_eq!(response.status, "errors=0");
    assert_eq!(response.body, expected);

    stop_server(addr, handle);
}

#[test]
fn evicted_sessions_reprepare_transparently() {
    let config = ServerConfig {
        registry: RegistryConfig {
            max_sessions: 1,
            ..RegistryConfig::default()
        },
        ..ServerConfig::default()
    };
    let (addr, registry, handle) = start_server(config);

    let mut client = Client::connect(addr).expect("connect");
    client.open(PROG, "move(a, b).").expect("open a");
    // Opening a second key evicts the first (capacity 1)…
    let open = client.open(PROG, "move(x, y).").expect("open b");
    assert!(open.status.contains("evicted=1"), "{}", open.status);
    // …and the first key's next open transparently re-prepares.
    let open = client.open(PROG, "move(a, b).").expect("reopen a");
    assert!(open.status.contains("reused=false"), "{}", open.status);
    let response = client.script("? win(a)").expect("script");
    assert!(response.body.contains("win(a): true"), "{}", response.body);
    assert!(registry.stats().evictions >= 2, "{:?}", registry.stats());

    stop_server(addr, handle);
}

#[test]
fn fuzzed_frames_never_kill_the_server_reactor() {
    fuzzed_frames_case(ServerMode::Reactor);
}

#[test]
fn fuzzed_frames_never_kill_the_server_legacy() {
    fuzzed_frames_case(ServerMode::LegacyThreads);
}

fn fuzzed_frames_case(mode: ServerMode) {
    let (addr, _registry, handle) = start_server(config_for(mode));
    let mut rng = SmallRng::seed_from_u64(0x5eed_f00d);

    let mut client = Client::connect(addr).expect("connect");
    for round in 0..200 {
        let len = rng.gen_range(0..96usize);
        let payload: Vec<u8> = (0..len)
            .map(|_| {
                if rng.gen_bool(0.8) {
                    // Mostly printable ASCII with newlines: exercises the
                    // verb parser, not just the UTF-8 check.
                    let c = rng.gen_range(0..64u32);
                    match c {
                        0..=2 => b'\n',
                        3 => b' ',
                        c => b' ' + (c as u8 % 94),
                    }
                } else {
                    (rng.gen::<u32>() & 0xff) as u8
                }
            })
            .collect();
        // Every well-framed request gets exactly one response — ok or
        // in-band error. Disconnections or transport errors fail.
        match client.call(&payload) {
            Ok(_) | Err(ClientError::Server(_)) => {}
            other => panic!("round {round}: server dropped the connection: {other:?}"),
        }
    }
    // The connection (and server) are still healthy.
    let pong = client.ping().expect("ping");
    assert_eq!(pong.status, "pong");

    stop_server(addr, handle);
}

#[test]
fn fuzzed_byte_streams_never_panic_the_frame_parser() {
    let mut rng = SmallRng::seed_from_u64(0xfeed_beef);
    for _ in 0..500 {
        let len = rng.gen_range(0..256usize);
        let bytes: Vec<u8> = (0..len).map(|_| (rng.gen::<u32>() & 0xff) as u8).collect();
        let mut cursor = std::io::Cursor::new(bytes);
        // Drain the stream through the parser with a small cap: every
        // outcome (frames, oversized, truncation, clean EOF) is fine —
        // the property under test is "no panic, no infinite loop".
        for _ in 0..64 {
            match read_frame(&mut cursor, 64) {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(WireError::Oversized { .. } | WireError::Io(_)) => break,
            }
        }
    }
    // Round-trip sanity under the same cap.
    let mut buf = Vec::new();
    write_frame(&mut buf, b"ok").expect("write");
    let mut cursor = std::io::Cursor::new(buf);
    assert_eq!(read_frame(&mut cursor, 64).unwrap().unwrap(), b"ok");
}

/// Drives `frames` through a fresh single-session solver **with the
/// server's per-frame structure** (process each line, then `finish`,
/// with a line counter that persists across frames) — the oracle for
/// per-response fidelity under batching. Returns one output string per
/// frame.
fn fresh_session_frames(program: &str, database: &str, frames: &[&str]) -> Vec<String> {
    let solver = Solver::from_sources(program, database).expect("prepare");
    let mut session = ScriptSession::new(solver, false);
    let mut lineno = 0usize;
    frames
        .iter()
        .map(|frame| {
            let mut out = Vec::new();
            for line in frame.lines() {
                lineno += 1;
                let outcome = session
                    .process_line(lineno, line, &mut out)
                    .expect("vec sink");
                assert_eq!(outcome, LineOutcome::Ok, "oracle frame must be clean");
            }
            assert_eq!(session.finish(&mut out).expect("vec sink"), LineOutcome::Ok);
            String::from_utf8(out).expect("utf8")
        })
        .collect()
}

/// The tentpole fidelity suite: 32 concurrent clients hammer **one**
/// hot session. Thirty-one stream read-only frames (eligible for
/// cross-connection batching); one interleaves mutating frames, which
/// must act as epoch barriers. Every single response must be
/// bit-identical to what a fresh solver would say — batching may never
/// be observable in the bytes. Runs at 1 and 8 evaluation threads so
/// the batched wave-parallel path is covered both ways.
#[cfg(unix)]
fn batching_fidelity_case(threads: usize) {
    use tiebreak_core::{EngineConfig, RuntimeConfig};

    let config = ServerConfig {
        registry: RegistryConfig {
            engine: EngineConfig::default().with_runtime(RuntimeConfig::with_threads(threads)),
            ..RegistryConfig::default()
        },
        mode: ServerMode::Reactor,
        ..ServerConfig::default()
    };
    let (addr, _registry, handle) = start_server(config);

    // A 2-cycle: win(p) and win(q) are undefined, and stay undefined
    // while the mutator toggles a disconnected edge move(x9, y9) — so
    // the readers' expected bytes are invariant across epochs.
    let db = "move(p, q).\nmove(q, p).";
    let read_frame_body = "? win(p)\n? win(q)";
    let expected_read = fresh_solver_output(PROG, db, &["? win(p)", "? win(q)"]);

    // The sole mutator's frames are deterministic too: it alone
    // advances the epoch counter, so its `% epoch N | …` lines replay
    // exactly in a fresh session.
    let mutator_frames: Vec<String> = (0..6)
        .map(|i| {
            if i % 2 == 0 {
                "+ move(x9, y9).\n? win(x9)".to_owned()
            } else {
                "- move(x9, y9).\n? win(p)".to_owned()
            }
        })
        .collect();
    let mutator_refs: Vec<&str> = mutator_frames.iter().map(String::as_str).collect();
    let expected_mutator = fresh_session_frames(PROG, db, &mutator_refs);

    let m = tiebreak_trace::metrics();
    let batches_before = m.batches_dispatched.get();
    let batch_frames_before = m.batch_size.sum();

    const READERS: usize = 31;
    const REPEATS: usize = 8;
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for reader in 0..READERS {
            let expected_read = &expected_read;
            workers.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.open(PROG, db).expect("open");
                for round in 0..REPEATS {
                    let response = client.script(read_frame_body).expect("script");
                    assert_eq!(response.status, "errors=0");
                    assert_eq!(
                        &response.body, expected_read,
                        "reader {reader} round {round} (threads={threads})"
                    );
                }
                client.bye().expect("bye");
            }));
        }
        let expected_mutator = &expected_mutator;
        let mutator_refs = &mutator_refs;
        workers.push(scope.spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            client.open(PROG, db).expect("open");
            for (i, frame) in mutator_refs.iter().enumerate() {
                let response = client.script(frame).expect("script");
                assert_eq!(response.status, "errors=0");
                assert_eq!(
                    &response.body, &expected_mutator[i],
                    "mutator frame {i} (threads={threads})"
                );
            }
            client.bye().expect("bye");
        }));
        for worker in workers {
            worker.join().expect("client thread");
        }
    });

    // Every read-only frame went through the batched dispatch path
    // (batch sizes of one still count); the metrics are global to the
    // test process, so assert growth, not absolute values.
    assert!(
        m.batches_dispatched.get() > batches_before,
        "read frames must flow through the batch dispatcher"
    );
    assert!(
        m.batch_size.sum() >= batch_frames_before + (READERS * REPEATS) as u64,
        "all {} read frames must be accounted to batches",
        READERS * REPEATS
    );

    stop_server(addr, handle);
}

#[test]
#[cfg(unix)]
fn batching_fidelity_under_concurrent_load_threads_1() {
    batching_fidelity_case(1);
}

#[test]
#[cfg(unix)]
fn batching_fidelity_under_concurrent_load_threads_8() {
    batching_fidelity_case(8);
}

/// Frames split and coalesced at arbitrary TCP segment boundaries must
/// round-trip: the reactor reads whatever the kernel hands it and the
/// incremental decoder reassembles frames across reads.
#[test]
#[cfg(unix)]
fn split_and_coalesced_frames_round_trip_over_tcp() {
    use std::io::Write as _;

    let (addr, _registry, handle) = start_server(config_for(ServerMode::Reactor));
    let mut rng = SmallRng::seed_from_u64(0xc0a1e5ce);

    for round in 0..20 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        // Disable Nagle so each chunk really goes out as its own
        // segment instead of being re-coalesced by the client kernel.
        stream.set_nodelay(true).expect("nodelay");

        // One conversation, three frames: open, a read script, ping.
        let mut wire = Vec::new();
        let mut open = format!("open {}\n", PROG.len()).into_bytes();
        open.extend_from_slice(PROG.as_bytes());
        open.extend_from_slice(b"move(a, b).");
        write_frame(&mut wire, &open).expect("vec");
        write_frame(&mut wire, b"script\n? win(a)").expect("vec");
        write_frame(&mut wire, b"ping").expect("vec");

        // Random chunking: sometimes a byte at a time (frames split
        // mid-header and mid-payload), sometimes everything at once
        // (three frames coalesced into one segment).
        let mut sent = 0usize;
        while sent < wire.len() {
            let n = if rng.gen_bool(0.2) {
                wire.len() - sent
            } else {
                rng.gen_range(1..=7usize).min(wire.len() - sent)
            };
            stream.write_all(&wire[sent..sent + n]).expect("write");
            stream.flush().expect("flush");
            sent += n;
            if rng.gen_bool(0.3) {
                // Give the reactor a chance to observe a partial frame.
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }

        let open_reply = read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES)
            .expect("read")
            .expect("open reply");
        assert!(
            open_reply.starts_with(b"ok opened"),
            "round {round}: {}",
            String::from_utf8_lossy(&open_reply)
        );
        let script_reply = read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES)
            .expect("read")
            .expect("script reply");
        let text = String::from_utf8_lossy(&script_reply);
        assert!(text.starts_with("ok errors=0"), "round {round}: {text}");
        assert!(text.contains("win(a): true"), "round {round}: {text}");
        let pong = read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES)
            .expect("read")
            .expect("pong");
        assert_eq!(&pong[..], b"ok pong", "round {round}");
    }

    stop_server(addr, handle);
}

/// `max_idle_secs` reaps connections that sit idle with no request in
/// flight; the reap is observable as a clean EOF and a counter bump,
/// and the server keeps serving new connections afterwards.
#[test]
#[cfg(unix)]
fn idle_connections_are_reaped() {
    use std::time::Duration;

    let config = ServerConfig {
        mode: ServerMode::Reactor,
        max_idle_secs: 1,
        ..ServerConfig::default()
    };
    let (addr, _registry, handle) = start_server(config);
    let reaped_before = tiebreak_trace::metrics().conns_reaped.get();

    let mut idle = TcpStream::connect(addr).expect("connect");
    write_frame(&mut idle, b"ping").expect("write");
    let pong = read_frame(&mut idle, DEFAULT_MAX_FRAME_BYTES)
        .expect("read")
        .expect("pong");
    assert_eq!(&pong[..], b"ok pong");

    // Now go quiet. Within the deadline (plus scheduling slack) the
    // server must close the connection from its side: a clean EOF.
    idle.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let eof = read_frame(&mut idle, DEFAULT_MAX_FRAME_BYTES).expect("clean close");
    assert!(eof.is_none(), "expected EOF from the reaper, got a frame");
    assert!(
        tiebreak_trace::metrics().conns_reaped.get() > reaped_before,
        "reap counter must grow"
    );

    // The server is still healthy for new arrivals.
    let mut fresh = Client::connect(addr).expect("connect");
    assert_eq!(fresh.ping().expect("ping").status, "pong");

    stop_server(addr, handle);
}

#[test]
fn strict_mode_rejects_certain_blowups_before_prepare() {
    use tiebreak_core::EngineConfig;

    let config = ServerConfig {
        registry: RegistryConfig {
            engine: EngineConfig::default().with_ground_mode(datalog_ground::GroundMode::Full),
            strict: true,
            ..RegistryConfig::default()
        },
        ..ServerConfig::default()
    };
    let (addr, registry, handle) = start_server(config);
    let mut client = Client::connect(addr).expect("connect");

    // 7-step chained join over a path: 9^8 ≈ 43M exact full-mode rule
    // instances, so the analyzer's error lint must refuse the open
    // without attempting the grounding.
    let blowup = "big(A, H) :- e(A, B), e(B, C), e(C, D), e(D, E), e(E, F), e(F, G), e(G, H).";
    let mut db = String::new();
    for i in 0..8 {
        db.push_str(&format!("e(c{}, c{}).\n", i, i + 1));
    }
    let err = client.open(blowup, &db).expect_err("must reject");
    match err {
        ClientError::Server(msg) => {
            assert!(msg.contains("rejected by analysis"), "{msg}");
            assert!(msg.contains("ground-cost"), "{msg}");
        }
        other => panic!("expected server rejection, got {other:?}"),
    }
    let stats = registry.stats();
    assert_eq!(stats.sessions, 0, "nothing was prepared or admitted");
    assert_eq!(stats.rejected, 1);

    // A benign stratified program on the same connection still opens,
    // and the response carries the analysis summary comment.
    let resp = client
        .open("reach(X) :- edge(X).", "edge(a).")
        .expect("clean open");
    assert!(
        resp.body.contains("% analysis: certificate=stratified"),
        "{}",
        resp.body
    );

    stop_server(addr, handle);
}
