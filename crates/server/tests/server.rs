//! End-to-end tests of the serving tier: many concurrent connections,
//! result fidelity against fresh single-session solvers, and hostile
//! input on the wire.

use std::net::TcpStream;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tiebreak_runtime::Solver;
use tiebreak_server::{
    read_frame, write_frame, Client, ClientError, LineOutcome, RegistryConfig, ScriptSession,
    Server, ServerConfig, SessionRegistry, WireError, DEFAULT_MAX_FRAME_BYTES,
};

const PROG: &str = "win(X) :- move(X, Y), not win(Y).";

/// Starts a server on an OS-assigned port; returns its address, its
/// registry (for stats assertions), and the run-loop thread handle.
fn start_server(
    config: ServerConfig,
) -> (
    std::net::SocketAddr,
    Arc<SessionRegistry>,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let registry = Arc::clone(server.registry());
    let handle = std::thread::spawn(move || server.run());
    (addr, registry, handle)
}

fn stop_server(addr: std::net::SocketAddr, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    client.shutdown().expect("shutdown");
    handle.join().expect("join").expect("clean run exit");
}

/// Drives the same script through a fresh single-session solver — the
/// fidelity oracle the served responses must match byte for byte.
fn fresh_solver_output(program: &str, database: &str, lines: &[&str]) -> String {
    let solver = Solver::from_sources(program, database).expect("prepare");
    let mut session = ScriptSession::new(solver, false);
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let outcome = session.process_line(i + 1, line, &mut out).expect("sink");
        assert_eq!(outcome, LineOutcome::Ok, "oracle script must be clean");
    }
    assert_eq!(session.finish(&mut out).expect("sink"), LineOutcome::Ok);
    String::from_utf8(out).expect("utf8")
}

#[test]
fn concurrent_clients_get_bit_identical_results() {
    let (addr, registry, handle) = start_server(ServerConfig::default());

    // Five clients churn disjoint sessions (each mutates its own
    // chain); five more share one tie-pocket session, query-only so the
    // shared state stays deterministic. Ten concurrent connections in
    // flight at once.
    let disjoint: Vec<(String, Vec<String>)> = (0..5)
        .map(|i| {
            let db = format!("move(a{i}, b{i}).\nmove(b{i}, c{i}).");
            let script = vec![
                format!("? win(a{i})"),
                format!("+ move(c{i}, a{i})."),
                "? wf".to_owned(),
                "? stats".to_owned(),
            ];
            (db, script)
        })
        .collect();
    let shared_db = "move(p, q).\nmove(q, p).";
    let shared_script = ["? outcomes 4", "? win(p)", "? stats"];

    let mut expected = Vec::new();
    for (db, script) in &disjoint {
        let lines: Vec<&str> = script.iter().map(String::as_str).collect();
        expected.push(fresh_solver_output(PROG, db, &lines));
    }
    let shared_expected = fresh_solver_output(PROG, shared_db, &shared_script);

    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for (i, (db, script)) in disjoint.iter().enumerate() {
            let expected = &expected[i];
            workers.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let open = client.open(PROG, db).expect("open");
                assert!(open.status.contains("reused=false"), "{}", open.status);
                let response = client.script(&script.join("\n")).expect("script");
                assert_eq!(response.status, "errors=0");
                assert_eq!(&response.body, expected, "disjoint client {i}");
                client.bye().expect("bye");
            }));
        }
        for i in 0..5 {
            let shared_expected = &shared_expected;
            workers.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.open(PROG, shared_db).expect("open");
                let response = client.script(&shared_script.join("\n")).expect("script");
                assert_eq!(response.status, "errors=0");
                assert_eq!(&response.body, shared_expected, "shared client {i}");
                client.bye().expect("bye");
            }));
        }
        for worker in workers {
            worker.join().expect("client thread");
        }
    });

    // Six distinct keys were prepared exactly once each; the other four
    // opens of the shared key were registry hits (whether they raced
    // the preparation or arrived after it).
    let stats = registry.stats();
    assert_eq!(stats.sessions, 6, "{stats:?}");
    assert_eq!(stats.misses, 6, "{stats:?}");
    assert_eq!(stats.hits, 4, "{stats:?}");

    stop_server(addr, handle);
}

#[test]
fn malformed_connection_does_not_disturb_others() {
    let (addr, _registry, handle) = start_server(ServerConfig::default());
    let db = "move(a, b).\nmove(b, c).";

    // Client B holds a healthy connection to the same session for the
    // whole test.
    let mut healthy = Client::connect(addr).expect("connect");
    healthy.open(PROG, db).expect("open");

    // Client A misbehaves at every protocol layer.
    let mut hostile = Client::connect(addr).expect("connect");
    hostile.open(PROG, db).expect("open");
    // Unknown verb: in-band error, connection stays up.
    match hostile.call(b"frobnicate") {
        Err(ClientError::Server(msg)) => assert!(msg.contains("unknown verb"), "{msg}"),
        other => panic!("expected server error, got {other:?}"),
    }
    // Bad open header.
    match hostile.call(b"open 999999\ntoo short") {
        Err(ClientError::Server(msg)) => assert!(msg.contains("byte length"), "{msg}"),
        other => panic!("expected server error, got {other:?}"),
    }
    // Non-UTF-8 request frame.
    match hostile.call(&[0xff, 0xfe, 0x00, 0x80]) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("UTF-8"), "{msg}"),
        other => panic!("expected server error, got {other:?}"),
    }
    // Malformed script lines: reported per line, session survives, and
    // the staged-but-unapplied mutation is discarded.
    let response = hostile
        .script("+ move(c, a).\nutter garbage\n? stats")
        .expect("script");
    assert_eq!(response.status, "errors=1");
    assert!(response.body.contains("! line 2:"), "{}", response.body);
    assert!(
        response.body.contains("discarded 1 staged mutation(s)"),
        "{}",
        response.body
    );
    assert!(response.body.contains("% epoch 0 |"), "{}", response.body);

    // Oversized frame: rejected before allocation, connection closed.
    {
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        let mut header = Vec::new();
        header.extend_from_slice(&u32::MAX.to_be_bytes());
        header.extend_from_slice(b"junk");
        std::io::Write::write_all(&mut raw, &header).expect("write");
        let reply = read_frame(&mut raw, DEFAULT_MAX_FRAME_BYTES)
            .expect("error frame")
            .expect("some frame");
        let text = String::from_utf8_lossy(&reply);
        assert!(text.starts_with("error"), "{text}");
        assert!(text.contains("exceeds"), "{text}");
        assert!(
            read_frame(&mut raw, DEFAULT_MAX_FRAME_BYTES)
                .expect("clean close")
                .is_none(),
            "server must close a desynchronized connection"
        );
    }
    // Truncated frame: header promises more than the peer sends before
    // hanging up. The server just drops the connection.
    {
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        std::io::Write::write_all(&mut raw, &100u32.to_be_bytes()).expect("write");
        std::io::Write::write_all(&mut raw, b"only a little").expect("write");
        drop(raw);
    }

    // Through all of it, the healthy connection answers correctly — and
    // sees none of the hostile client's discarded mutations.
    let expected = fresh_solver_output(PROG, db, &["? win(a)", "? wf"]);
    let response = healthy.script("? win(a)\n? wf").expect("script");
    assert_eq!(response.status, "errors=0");
    assert_eq!(response.body, expected);

    stop_server(addr, handle);
}

#[test]
fn evicted_sessions_reprepare_transparently() {
    let config = ServerConfig {
        registry: RegistryConfig {
            max_sessions: 1,
            ..RegistryConfig::default()
        },
        max_frame_bytes: 0,
    };
    let (addr, registry, handle) = start_server(config);

    let mut client = Client::connect(addr).expect("connect");
    client.open(PROG, "move(a, b).").expect("open a");
    // Opening a second key evicts the first (capacity 1)…
    let open = client.open(PROG, "move(x, y).").expect("open b");
    assert!(open.status.contains("evicted=1"), "{}", open.status);
    // …and the first key's next open transparently re-prepares.
    let open = client.open(PROG, "move(a, b).").expect("reopen a");
    assert!(open.status.contains("reused=false"), "{}", open.status);
    let response = client.script("? win(a)").expect("script");
    assert!(response.body.contains("win(a): true"), "{}", response.body);
    assert!(registry.stats().evictions >= 2, "{:?}", registry.stats());

    stop_server(addr, handle);
}

#[test]
fn fuzzed_frames_never_kill_the_server() {
    let (addr, _registry, handle) = start_server(ServerConfig::default());
    let mut rng = SmallRng::seed_from_u64(0x5eed_f00d);

    let mut client = Client::connect(addr).expect("connect");
    for round in 0..200 {
        let len = rng.gen_range(0..96usize);
        let payload: Vec<u8> = (0..len)
            .map(|_| {
                if rng.gen_bool(0.8) {
                    // Mostly printable ASCII with newlines: exercises the
                    // verb parser, not just the UTF-8 check.
                    let c = rng.gen_range(0..64u32);
                    match c {
                        0..=2 => b'\n',
                        3 => b' ',
                        c => b' ' + (c as u8 % 94),
                    }
                } else {
                    (rng.gen::<u32>() & 0xff) as u8
                }
            })
            .collect();
        // Every well-framed request gets exactly one response — ok or
        // in-band error. Disconnections or transport errors fail.
        match client.call(&payload) {
            Ok(_) | Err(ClientError::Server(_)) => {}
            other => panic!("round {round}: server dropped the connection: {other:?}"),
        }
    }
    // The connection (and server) are still healthy.
    let pong = client.ping().expect("ping");
    assert_eq!(pong.status, "pong");

    stop_server(addr, handle);
}

#[test]
fn fuzzed_byte_streams_never_panic_the_frame_parser() {
    let mut rng = SmallRng::seed_from_u64(0xfeed_beef);
    for _ in 0..500 {
        let len = rng.gen_range(0..256usize);
        let bytes: Vec<u8> = (0..len).map(|_| (rng.gen::<u32>() & 0xff) as u8).collect();
        let mut cursor = std::io::Cursor::new(bytes);
        // Drain the stream through the parser with a small cap: every
        // outcome (frames, oversized, truncation, clean EOF) is fine —
        // the property under test is "no panic, no infinite loop".
        for _ in 0..64 {
            match read_frame(&mut cursor, 64) {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(WireError::Oversized { .. } | WireError::Io(_)) => break,
            }
        }
    }
    // Round-trip sanity under the same cap.
    let mut buf = Vec::new();
    write_frame(&mut buf, b"ok").expect("write");
    let mut cursor = std::io::Cursor::new(buf);
    assert_eq!(read_frame(&mut cursor, 64).unwrap().unwrap(), b"ok");
}

#[test]
fn strict_mode_rejects_certain_blowups_before_prepare() {
    use tiebreak_core::EngineConfig;

    let config = ServerConfig {
        registry: RegistryConfig {
            engine: EngineConfig::default().with_ground_mode(datalog_ground::GroundMode::Full),
            strict: true,
            ..RegistryConfig::default()
        },
        ..ServerConfig::default()
    };
    let (addr, registry, handle) = start_server(config);
    let mut client = Client::connect(addr).expect("connect");

    // 7-step chained join over a path: 9^8 ≈ 43M exact full-mode rule
    // instances, so the analyzer's error lint must refuse the open
    // without attempting the grounding.
    let blowup = "big(A, H) :- e(A, B), e(B, C), e(C, D), e(D, E), e(E, F), e(F, G), e(G, H).";
    let mut db = String::new();
    for i in 0..8 {
        db.push_str(&format!("e(c{}, c{}).\n", i, i + 1));
    }
    let err = client.open(blowup, &db).expect_err("must reject");
    match err {
        ClientError::Server(msg) => {
            assert!(msg.contains("rejected by analysis"), "{msg}");
            assert!(msg.contains("ground-cost"), "{msg}");
        }
        other => panic!("expected server rejection, got {other:?}"),
    }
    let stats = registry.stats();
    assert_eq!(stats.sessions, 0, "nothing was prepared or admitted");
    assert_eq!(stats.rejected, 1);

    // A benign stratified program on the same connection still opens,
    // and the response carries the analysis summary comment.
    let resp = client
        .open("reach(X) :- edge(X).", "edge(a).")
        .expect("clean open");
    assert!(
        resp.body.contains("% analysis: certificate=stratified"),
        "{}",
        resp.body
    );

    stop_server(addr, handle);
}
