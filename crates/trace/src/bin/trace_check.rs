//! `trace_check FILE...` — validates Trace Event JSON files emitted by
//! `--trace-out` against the schema subset the workspace produces
//! (structure, required fields, span id uniqueness, parent linkage).
//! Exits nonzero on the first invalid file; CI runs it on the smoke
//! trace before uploading the artifact.

use std::process::ExitCode;

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: trace_check FILE...");
        return ExitCode::FAILURE;
    }
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("trace_check: {file}: {err}");
                return ExitCode::FAILURE;
            }
        };
        match tiebreak_trace::validate_trace_json(&text) {
            Ok(check) => println!(
                "{file}: ok ({} events: {} spans, {} instants)",
                check.events, check.spans, check.instants
            ),
            Err(err) => {
                eprintln!("trace_check: {file}: invalid trace: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
