//! The metrics registry: fixed-allocation named counters, gauges and
//! log-linear histograms over atomics.
//!
//! Unlike spans, metrics are **always on**: every cell is a plain
//! `AtomicU64` updated with relaxed ordering, and every instrumentation
//! point sits at a coarse phase boundary (per close run, per wave, per
//! server request — never per atom), so there is no hot-loop contention
//! to gate. [`Metrics::snapshot`] captures a point-in-time copy as plain
//! data; [`MetricsSnapshot::render_prometheus`] renders the Prometheus
//! text exposition served by the server's `metrics` verb.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone counter.
#[derive(Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins gauge.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Gauge {
    const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.set(0);
    }
}

/// Bucket count for [`Histogram`]: log-linear with 4 linear sub-buckets
/// per power of two covers the full `u64` range in 252 buckets; 256
/// keeps the array a round fixed allocation (2 KiB of atomics).
pub const HISTOGRAM_BUCKETS: usize = 256;

/// A log-linear histogram over `u64` samples (we record microseconds
/// for latencies and plain counts for widths/depths). Fixed allocation,
/// relaxed atomics, no locking.
///
/// Bucketing: values 0–3 get exact buckets; a value with most
/// significant bit `m ≥ 2` lands in one of 4 linear sub-buckets of
/// `[2^m, 2^(m+1))`, giving a worst-case relative error of 25%.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// The bucket index for a sample.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value < 4 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros() as usize;
        let sub = ((value >> (msb - 2)) & 0b11) as usize;
        (4 * (msb - 1) + sub).min(HISTOGRAM_BUCKETS - 1)
    }

    /// The inclusive upper bound of a bucket, for `le` labels and the
    /// summary table.
    #[must_use]
    pub fn bucket_upper(index: usize) -> u64 {
        if index < 4 {
            return index as u64;
        }
        let msb = (index / 4 + 1) as u32;
        let sub = (index % 4) as u128;
        let upper = (1u128 << msb) + (sub + 1) * (1u128 << (msb - 2)) - 1;
        u64::try_from(upper).unwrap_or(u64::MAX)
    }

    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n != 0 {
                buckets.push((Self::bucket_upper(i), n));
            }
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum(),
            count: self.count(),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of one histogram: only the non-empty buckets,
/// as `(inclusive upper bound, count)` pairs in increasing bound order.
#[derive(Clone, Debug, Default)]
pub struct HistogramSnapshot {
    pub buckets: Vec<(u64, u64)>,
    pub sum: u64,
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0 with no samples.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The request verbs the server tracks latency for, in wire order.
pub const VERBS: [&str; 6] = ["open", "script", "stats", "metrics", "ping", "control"];

/// Index into [`VERBS`] / the per-verb latency histograms for a wire
/// verb; `bye`/`shutdown`/unknown fold into `control`.
#[must_use]
pub fn verb_index(verb: &str) -> usize {
    VERBS
        .iter()
        .position(|v| *v == verb)
        .unwrap_or(VERBS.len() - 1)
}

/// The process-wide registry. Every field is a named instrument; the
/// whole struct is one static fixed allocation.
#[derive(Debug)]
pub struct Metrics {
    // Grounding.
    pub ground_runs: Counter,
    pub ground_instances: Counter,
    pub ground_atoms: Counter,
    // close(M₀, G).
    pub close_runs: Counter,
    pub close_events: Counter,
    pub cones_reopened: Counter,
    pub cones_patched: Counter,
    // Condensation + component pass.
    pub condense_runs: Counter,
    pub components_processed: Counter,
    // Session runtime.
    pub evaluations: Counter,
    pub branches_evaluated: Counter,
    pub branch_cache_hits: Counter,
    pub outcome_scripts: Counter,
    pub waves_dispatched: Counter,
    pub wave_width: Histogram,
    pub merge_queue_depth: Histogram,
    // Serving tier.
    pub registry_hits: Counter,
    pub registry_misses: Counter,
    pub registry_evictions: Counter,
    pub registry_rejected: Counter,
    pub sessions_resident: Gauge,
    pub resident_atoms: Gauge,
    pub requests: Counter,
    pub request_errors: Counter,
    /// Per-verb request latency in microseconds, indexed by
    /// [`verb_index`].
    pub request_latency_us: [Histogram; VERBS.len()],
    // Reactor + cross-connection batching.
    pub conns_open: Gauge,
    pub conns_reaped: Counter,
    pub batches_dispatched: Counter,
    pub batch_size: Histogram,
    // The recorder's own health.
    pub trace_events_dropped: Counter,
}

impl Metrics {
    const fn new() -> Self {
        Metrics {
            ground_runs: Counter::new(),
            ground_instances: Counter::new(),
            ground_atoms: Counter::new(),
            close_runs: Counter::new(),
            close_events: Counter::new(),
            cones_reopened: Counter::new(),
            cones_patched: Counter::new(),
            condense_runs: Counter::new(),
            components_processed: Counter::new(),
            evaluations: Counter::new(),
            branches_evaluated: Counter::new(),
            branch_cache_hits: Counter::new(),
            outcome_scripts: Counter::new(),
            waves_dispatched: Counter::new(),
            wave_width: Histogram::new(),
            merge_queue_depth: Histogram::new(),
            registry_hits: Counter::new(),
            registry_misses: Counter::new(),
            registry_evictions: Counter::new(),
            registry_rejected: Counter::new(),
            sessions_resident: Gauge::new(),
            resident_atoms: Gauge::new(),
            requests: Counter::new(),
            request_errors: Counter::new(),
            request_latency_us: [const { Histogram::new() }; VERBS.len()],
            conns_open: Gauge::new(),
            conns_reaped: Counter::new(),
            batches_dispatched: Counter::new(),
            batch_size: Histogram::new(),
            trace_events_dropped: Counter::new(),
        }
    }

    /// Captures every instrument as plain data.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters()
                .iter()
                .map(|(name, c)| (*name, c.get()))
                .collect(),
            gauges: self
                .gauges()
                .iter()
                .map(|(name, g)| (*name, g.get()))
                .collect(),
            histograms: self
                .histograms()
                .iter()
                .map(|(name, label, h)| (*name, *label, h.snapshot()))
                .collect(),
        }
    }

    /// Zeroes every instrument — for benches and tests that measure
    /// deltas from a clean slate.
    pub fn reset(&self) {
        for (_, c) in self.counters() {
            c.reset();
        }
        for (_, g) in self.gauges() {
            g.reset();
        }
        for (_, _, h) in self.histograms() {
            h.reset();
        }
    }

    fn counters(&self) -> Vec<(&'static str, &Counter)> {
        vec![
            ("ground_runs", &self.ground_runs),
            ("ground_instances", &self.ground_instances),
            ("ground_atoms", &self.ground_atoms),
            ("close_runs", &self.close_runs),
            ("close_events", &self.close_events),
            ("cones_reopened", &self.cones_reopened),
            ("cones_patched", &self.cones_patched),
            ("condense_runs", &self.condense_runs),
            ("components_processed", &self.components_processed),
            ("evaluations", &self.evaluations),
            ("branches_evaluated", &self.branches_evaluated),
            ("branch_cache_hits", &self.branch_cache_hits),
            ("outcome_scripts", &self.outcome_scripts),
            ("waves_dispatched", &self.waves_dispatched),
            ("registry_hits", &self.registry_hits),
            ("registry_misses", &self.registry_misses),
            ("registry_evictions", &self.registry_evictions),
            ("registry_rejected", &self.registry_rejected),
            ("requests", &self.requests),
            ("request_errors", &self.request_errors),
            ("conns_reaped", &self.conns_reaped),
            ("batches_dispatched", &self.batches_dispatched),
            ("trace_events_dropped", &self.trace_events_dropped),
        ]
    }

    fn gauges(&self) -> Vec<(&'static str, &Gauge)> {
        vec![
            ("sessions_resident", &self.sessions_resident),
            ("resident_atoms", &self.resident_atoms),
            ("conns_open", &self.conns_open),
        ]
    }

    /// `(metric name, optional label value, histogram)` — per-verb
    /// latency histograms share one metric name with a `verb` label.
    fn histograms(&self) -> Vec<(&'static str, Option<&'static str>, &Histogram)> {
        let mut all: Vec<(&'static str, Option<&'static str>, &Histogram)> = vec![
            ("wave_width", None, &self.wave_width),
            ("merge_queue_depth", None, &self.merge_queue_depth),
            ("batch_size", None, &self.batch_size),
        ];
        for (verb, h) in VERBS.iter().zip(&self.request_latency_us) {
            all.push(("request_latency_us", Some(verb), h));
        }
        all
    }
}

static METRICS: Metrics = Metrics::new();

/// The process-wide metrics registry.
#[must_use]
pub fn metrics() -> &'static Metrics {
    &METRICS
}

/// A point-in-time copy of the whole registry, as plain data.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(&'static str, u64)>,
    pub gauges: Vec<(&'static str, u64)>,
    pub histograms: Vec<(&'static str, Option<&'static str>, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Looks up one counter by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Prometheus text exposition: `# TYPE` headers, `tiebreak_`-prefixed
    /// families, counters with `_total`, histograms with cumulative
    /// `_bucket{le=...}` plus `_sum`/`_count`.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!(
                "# TYPE tiebreak_{name}_total counter\ntiebreak_{name}_total {value}\n"
            ));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!(
                "# TYPE tiebreak_{name} gauge\ntiebreak_{name} {value}\n"
            ));
        }
        let mut last_family = "";
        for (name, label, h) in &self.histograms {
            if *name != last_family {
                out.push_str(&format!("# TYPE tiebreak_{name} histogram\n"));
                last_family = name;
            }
            let tag = |le: &str| match label {
                Some(v) => format!("{{verb=\"{v}\",le=\"{le}\"}}"),
                None => format!("{{le=\"{le}\"}}"),
            };
            let mut cumulative = 0u64;
            for (upper, count) in &h.buckets {
                cumulative += count;
                let sel = tag(&upper.to_string());
                out.push_str(&format!("tiebreak_{name}_bucket{sel} {cumulative}\n"));
            }
            let sel = tag("+Inf");
            out.push_str(&format!("tiebreak_{name}_bucket{sel} {cumulative}\n"));
            let plain = match label {
                Some(v) => format!("{{verb=\"{v}\"}}"),
                None => String::new(),
            };
            out.push_str(&format!("tiebreak_{name}_sum{plain} {}\n", h.sum));
            out.push_str(&format!("tiebreak_{name}_count{plain} {}\n", h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_the_range() {
        // Every value maps into exactly the bucket whose bounds hold it.
        for v in (0u64..2048).chain([1 << 20, u64::MAX / 3, u64::MAX]) {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_upper(i), "v={v} i={i}");
            if i > 0 && i < HISTOGRAM_BUCKETS - 1 {
                assert!(v > Histogram::bucket_upper(i - 1), "v={v} i={i}");
            }
        }
        // Bounds are strictly increasing until they saturate at u64::MAX
        // (the top few of the 256 slots are unreachable padding).
        for i in 1..HISTOGRAM_BUCKETS {
            if Histogram::bucket_upper(i) < u64::MAX {
                assert!(Histogram::bucket_upper(i) > Histogram::bucket_upper(i - 1));
            }
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        for v in [0, 1, 5, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1011);
        let snap = h.snapshot();
        assert_eq!(snap.buckets.iter().map(|(_, n)| n).sum::<u64>(), 5);
        let five = snap
            .buckets
            .iter()
            .find(|(upper, _)| *upper == Histogram::bucket_upper(Histogram::bucket_index(5)));
        assert_eq!(five.map(|(_, n)| *n), Some(2));
        assert!((snap.mean() - 202.2).abs() < 1e-9);
    }

    #[test]
    fn verb_index_folds_unknowns_into_control() {
        assert_eq!(verb_index("open"), 0);
        assert_eq!(verb_index("metrics"), 3);
        assert_eq!(verb_index("bye"), VERBS.len() - 1);
        assert_eq!(verb_index("nonsense"), VERBS.len() - 1);
    }

    #[test]
    fn prometheus_rendering_is_parseable_shape() {
        let m = Metrics::new();
        m.ground_instances.add(42);
        m.sessions_resident.set(3);
        m.request_latency_us[verb_index("open")].record(1500);
        let text = m.snapshot().render_prometheus();
        assert!(text.contains("# TYPE tiebreak_ground_instances_total counter"));
        assert!(text.contains("tiebreak_ground_instances_total 42"));
        assert!(text.contains("tiebreak_sessions_resident 3"));
        assert!(text.contains("verb=\"open\""));
        assert!(text.contains("le=\"+Inf\""));
        // Every non-comment line is `name{labels}? value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("space-separated");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
    }

    #[test]
    fn snapshot_reads_registry_counters() {
        // The global registry is shared across tests; assert deltas.
        let before = metrics().snapshot().counter("close_runs");
        metrics().close_runs.add(2);
        let after = metrics().snapshot().counter("close_runs");
        assert!(after >= before + 2);
    }
}
