//! Trace exposition: Chrome Trace Event JSON, a human summary table,
//! structural well-formedness checks, and a standalone JSON validator.
//!
//! The JSON export follows the Trace Event Format (the `chrome://tracing`
//! / Perfetto interchange format): an object `{"traceEvents": [...]}`
//! whose elements are complete events (`"ph":"X"`, with `dur`) and
//! instant events (`"ph":"i"`). Span/parent ids travel in `args` —
//! `args.id` and `args.parent` — which the validator uses to re-check
//! linkage from the serialized form, so the CI smoke job exercises the
//! same invariants as the in-process determinism suite.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::span::{TraceEvent, TraceEventKind};

/// A drained trace, ready for export or inspection.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    pub events: Vec<TraceEvent>,
}

impl Trace {
    #[must_use]
    pub fn from_events(events: Vec<TraceEvent>) -> Self {
        Trace { events }
    }

    /// Structural invariants every drained trace must satisfy: span ids
    /// unique and allocated before their children (so parent links can
    /// never form a cycle), every parent resolving to a recorded span or
    /// the root sentinel 0, and sequence stamps unique.
    pub fn well_formed(&self) -> Result<(), String> {
        let mut ids = HashSet::new();
        let mut seqs = HashSet::new();
        for e in &self.events {
            if !seqs.insert(e.seq) {
                return Err(format!("duplicate sequence stamp {}", e.seq));
            }
            if e.kind == TraceEventKind::Span {
                if e.id == 0 {
                    return Err(format!("span {:?} has the null id", e.name));
                }
                if !ids.insert(e.id) {
                    return Err(format!("duplicate span id {}", e.id));
                }
                if e.parent >= e.id {
                    return Err(format!(
                        "span {} ({:?}) parented to later id {}",
                        e.id, e.name, e.parent
                    ));
                }
            }
        }
        for e in &self.events {
            if e.parent != 0 && !ids.contains(&e.parent) {
                return Err(format!(
                    "event {:?} references unknown parent {}",
                    e.name, e.parent
                ));
            }
        }
        Ok(())
    }

    /// Serializes to Trace Event JSON. Open the result in Perfetto
    /// (<https://ui.perfetto.dev>) or `chrome://tracing`.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 160);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (ph, dur) = match e.kind {
                TraceEventKind::Span => ("X", true),
                TraceEventKind::Instant => ("i", false),
            };
            write!(
                out,
                "{{\"name\":{},\"cat\":{},\"ph\":\"{ph}\",\"ts\":{},\"pid\":1,\"tid\":{}",
                json_string(e.name),
                json_string(e.cat),
                micros(e.ts_ns),
                e.tid
            )
            .expect("write to String");
            if dur {
                write!(out, ",\"dur\":{}", micros(e.dur_ns)).expect("write to String");
            } else {
                out.push_str(",\"s\":\"t\"");
            }
            write!(
                out,
                ",\"args\":{{\"id\":{},\"parent\":{},\"seq\":{}",
                e.id, e.parent, e.seq
            )
            .expect("write to String");
            for (k, v) in e.args() {
                write!(out, ",{}:{v}", json_string(k)).expect("write to String");
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// A fixed-width per-(category, name) aggregation, sorted by total
    /// time — the `--trace summary` table.
    #[must_use]
    pub fn summary(&self) -> String {
        struct Row {
            cat: &'static str,
            name: &'static str,
            count: u64,
            total_ns: u64,
            max_ns: u64,
        }
        let mut rows: Vec<Row> = Vec::new();
        for e in &self.events {
            match rows.iter_mut().find(|r| r.cat == e.cat && r.name == e.name) {
                Some(r) => {
                    r.count += 1;
                    r.total_ns += e.dur_ns;
                    r.max_ns = r.max_ns.max(e.dur_ns);
                }
                None => rows.push(Row {
                    cat: e.cat,
                    name: e.name,
                    count: 1,
                    total_ns: e.dur_ns,
                    max_ns: e.dur_ns,
                }),
            }
        }
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(b.name)));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:<22} {:>8} {:>12} {:>10} {:>10}",
            "cat", "name", "count", "total_ms", "mean_us", "max_us"
        );
        for r in &rows {
            let mean_us = r.total_ns as f64 / 1000.0 / r.count as f64;
            let _ = writeln!(
                out,
                "{:<10} {:<22} {:>8} {:>12.3} {:>10.1} {:>10.1}",
                r.cat,
                r.name,
                r.count,
                r.total_ns as f64 / 1e6,
                mean_us,
                r.max_ns as f64 / 1000.0
            );
        }
        let _ = writeln!(out, "{} events total", self.events.len());
        out
    }
}

/// Nanoseconds rendered as Trace-Event microseconds with three decimal
/// places (the format's `ts`/`dur` unit).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// What [`validate_trace_json`] verified about a serialized trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCheck {
    pub events: usize,
    pub spans: usize,
    pub instants: usize,
}

/// Validates serialized Trace Event JSON against the schema subset this
/// crate emits: a top-level object with a `traceEvents` array (a bare
/// array is also accepted, as the format allows), every event carrying
/// `name`/`cat`/`ph`/`ts`/`pid`/`tid`, `"X"` events carrying a
/// non-negative `dur`, and `args.parent` links resolving to recorded
/// `args.id` spans. This is the checker behind the `trace_check` bin.
pub fn validate_trace_json(text: &str) -> Result<TraceCheck, String> {
    let value = Parser::new(text).parse()?;
    let events = match &value {
        Value::Array(items) => items,
        Value::Object(fields) => match fields.iter().find(|(k, _)| k == "traceEvents") {
            Some((_, Value::Array(items))) => items,
            Some(_) => return Err("traceEvents is not an array".into()),
            None => return Err("top-level object has no traceEvents".into()),
        },
        _ => return Err("top level is neither object nor array".into()),
    };
    let mut check = TraceCheck::default();
    let mut span_ids = HashSet::new();
    let mut parents: Vec<(usize, u64)> = Vec::new();
    for (i, event) in events.iter().enumerate() {
        let Value::Object(fields) = event else {
            return Err(format!("event {i} is not an object"));
        };
        let field = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        let str_field = |k: &str| match field(k) {
            Some(Value::String(s)) => Ok(s.as_str()),
            _ => Err(format!("event {i} missing string field {k:?}")),
        };
        let num_field = |k: &str| match field(k) {
            Some(Value::Number(n)) => Ok(*n),
            _ => Err(format!("event {i} missing numeric field {k:?}")),
        };
        str_field("name")?;
        str_field("cat")?;
        num_field("ts")?;
        num_field("pid")?;
        num_field("tid")?;
        let ph = str_field("ph")?;
        match ph {
            "X" => {
                check.spans += 1;
                if num_field("dur")? < 0.0 {
                    return Err(format!("event {i} has negative dur"));
                }
            }
            "i" => check.instants += 1,
            "M" => {}
            other => return Err(format!("event {i} has unsupported ph {other:?}")),
        }
        if let Some(Value::Object(args)) = field("args") {
            let arg_num = |k: &str| {
                args.iter().find_map(|(n, v)| match v {
                    Value::Number(x) if n == k => Some(*x as u64),
                    _ => None,
                })
            };
            if ph == "X" {
                if let Some(id) = arg_num("id") {
                    if id == 0 || !span_ids.insert(id) {
                        return Err(format!("event {i} has invalid or duplicate span id {id}"));
                    }
                }
            }
            if let Some(parent) = arg_num("parent") {
                if parent != 0 {
                    parents.push((i, parent));
                }
            }
        }
        check.events += 1;
    }
    for (i, parent) in parents {
        if !span_ids.contains(&parent) {
            return Err(format!("event {i} references unknown parent span {parent}"));
        }
    }
    Ok(check)
}

/// The JSON values the validator needs — just enough of the grammar.
/// Booleans and nulls parse but fold into `Null`: validation never
/// inspects them.
enum Value {
    Null,
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// A minimal recursive-descent JSON parser (the workspace vendors no
/// serde). Accepts exactly RFC 8259 documents over the constructs the
/// Trace Event format uses.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Result<Value, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing bytes at offset {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}",
                char::from(b),
                self.pos
            ))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Null),
            Some(b'f') => self.literal("false", Value::Null),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through byte-wise; the
                    // input is a &str so it is already valid.
                    let len = match c {
                        _ if c < 0x80 => 1,
                        _ if c >= 0xf0 => 4,
                        _ if c >= 0xe0 => 3,
                        _ => 2,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or("truncated UTF-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_enabled;
    use crate::span::{child_span, drain, span};
    use std::sync::{Mutex, MutexGuard, PoisonError};

    fn exclusive() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        let guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        set_enabled(true);
        let _ = drain();
        guard
    }

    fn sample_trace() -> Trace {
        let root = span("test", "root", &[("size", 3)]);
        let root_id = root.id();
        {
            let _child = span("test", "child", &[]);
            crate::span::instant("test", "tick", &[("pos", 1)]);
        }
        drop(child_span("test", "sibling", root_id, &[]));
        drop(root);
        Trace::from_events(drain())
    }

    #[test]
    fn roundtrip_validates() {
        let _x = exclusive();
        let trace = sample_trace();
        trace.well_formed().expect("well-formed");
        let json = trace.to_chrome_json();
        let check = validate_trace_json(&json).expect("valid JSON");
        assert_eq!(check.events, trace.events.len());
        assert_eq!(check.spans, 3);
        assert_eq!(check.instants, 1);
    }

    #[test]
    fn validator_rejects_broken_traces() {
        assert!(validate_trace_json("not json").is_err());
        assert!(validate_trace_json("{\"traceEvents\":3}").is_err());
        // Missing dur on an X event.
        let bad = r#"{"traceEvents":[{"name":"a","cat":"t","ph":"X","ts":0,"pid":1,"tid":1}]}"#;
        assert!(validate_trace_json(bad).unwrap_err().contains("dur"));
        // Dangling parent reference.
        let dangling = r#"[{"name":"a","cat":"t","ph":"X","ts":0,"dur":1,"pid":1,"tid":1,
            "args":{"id":1,"parent":99}}]"#;
        assert!(validate_trace_json(dangling)
            .unwrap_err()
            .contains("unknown parent"));
    }

    #[test]
    fn well_formed_rejects_forward_parents() {
        let _x = exclusive();
        let mut trace = sample_trace();
        // Re-point the root at a later id to simulate corruption.
        let later = trace.events.iter().map(|e| e.id).max().unwrap_or(0) + 1;
        for event in &mut trace.events {
            if event.parent == 0 {
                event.parent = later;
            }
        }
        assert!(trace.well_formed().is_err());
    }

    #[test]
    fn summary_aggregates_by_name() {
        let _x = exclusive();
        let trace = sample_trace();
        let table = trace.summary();
        assert!(table.contains("root"));
        assert!(table.contains("child"));
        assert!(table.lines().next().expect("header").contains("total_ms"));
        assert!(table.contains("events total"));
    }

    #[test]
    fn json_strings_escape() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
