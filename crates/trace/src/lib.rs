//! Structured tracing and metrics for the tie-breaking Datalog engine.
//!
//! The workspace pipeline — parse → analyze → ground → close → condense →
//! component pass, wrapped by the session runtime and the serving tier —
//! is a staged dataflow, and this crate is its cross-cutting
//! observability layer. It is deliberately **zero-dependency** (the build
//! image has no registry access) and split into three pieces:
//!
//! - [`mod@span`]: a span recorder that is lock-free on the hot path.
//!   Every thread appends [`TraceEvent`]s to a **thread-local ring
//!   buffer**; buffers are drained into a global sink at phase barriers
//!   ([`flush`]) or automatically when the thread exits. Events carry a
//!   globally unique sequence stamp, a span id, and a parent id, so a
//!   drained trace reconstructs the full causal tree of a query across
//!   worker threads.
//! - [`mod@metrics`]: a fixed-allocation registry of named counters, gauges
//!   and log-linear histograms ([`Metrics`]), always on, updated only at
//!   coarse phase boundaries (per close run, per wave, per request —
//!   never per atom), snapshotted into plain data and rendered as
//!   Prometheus-style text exposition for the server's `metrics` verb.
//! - [`export`]: `chrome://tracing`-compatible Trace Event JSON
//!   ([`Trace::to_chrome_json`]), a human summary table, a
//!   well-formedness checker used by the determinism suite, and a
//!   hand-rolled validator ([`validate_trace_json`]) backing the
//!   `trace_check` CI binary.
//!
//! # Disabled-mode cost
//!
//! Tracing is off by default. [`span()`] and [`instant`] check a single
//! `AtomicU8` with a relaxed load and branch to a no-op guard when the
//! flag is clear — no thread-local touch, no clock read, no allocation.
//! `bench_trajectory` measures that cost directly (`trace_span_disabled`
//! entry) and gates the end-to-end overhead on the braided wave workload
//! at ≤ 2% against the rolling baseline.

pub mod export;
pub mod metrics;
pub mod span;

pub use export::{validate_trace_json, Trace, TraceCheck};
pub use metrics::{metrics, Counter, Gauge, Histogram, Metrics, MetricsSnapshot};
pub use span::{
    child_span, drain, flush, instant, instant_under, span, SpanGuard, TraceEvent, TraceEventKind,
};

use std::sync::atomic::{AtomicU8, Ordering};

/// The master switch. A single relaxed load of this atomic is the entire
/// disabled-mode cost of every instrumentation point.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Is span recording currently enabled?
#[inline(always)]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) != 0
}

/// Turns span recording on or off process-wide. Metrics counters are
/// unaffected — they are always on (and always cheap, being updated only
/// at phase boundaries).
pub fn set_enabled(on: bool) {
    ENABLED.store(u8::from(on), Ordering::SeqCst);
}
