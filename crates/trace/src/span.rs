//! The span recorder: thread-local ring buffers, sequence-stamped
//! events, RAII span guards with parent–child linkage.
//!
//! Recording is lock-free on the hot path: a thread only ever touches
//! its own ring buffer plus three global atomic counters (sequence
//! stamp, span id, thread ordinal). The sole lock is the global sink
//! mutex, taken at **phase barriers** — an explicit [`flush`] at the end
//! of a scheduler worker or a server request, or the implicit flush when
//! a thread's TLS is torn down (which covers `std::thread::scope`
//! workers). [`drain`] flushes the calling thread and takes the sink,
//! returning events sorted by sequence stamp.
//!
//! Parent linkage: each thread keeps a stack of open span ids; a new
//! span parents to the top of the stack. Work handed to another thread
//! crosses the TLS boundary with an explicit id — capture
//! [`SpanGuard::id`] and open the remote side with [`child_span`].

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::metrics::metrics;

/// Max key/value args carried per event, fixed so events stay `Copy`-ish
/// cheap and the ring buffer allocation is bounded.
pub const MAX_ARGS: usize = 4;

/// Per-thread ring capacity. A full ring drops the **oldest** events
/// (keeping the newest window) and counts the loss in
/// `trace_events_dropped`; flushing at phase barriers keeps rings far
/// from full in practice.
const RING_CAPACITY: usize = 1 << 16;

/// What a recorded event is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A closed span: `ts_ns..ts_ns + dur_ns`.
    Span,
    /// A point event (e.g. one condensation component finishing).
    Instant,
}

/// One recorded event. `id` is nonzero and unique for spans, zero for
/// instants; `parent` is zero for roots.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    pub kind: TraceEventKind,
    /// Subsystem category (`"ground"`, `"eval"`, `"server"`, ...).
    pub cat: &'static str,
    pub name: &'static str,
    pub id: u64,
    pub parent: u64,
    /// Global sequence stamp: a total order across threads.
    pub seq: u64,
    /// Start time, nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds; zero for instants.
    pub dur_ns: u64,
    /// Small dense thread ordinal (not the OS thread id).
    pub tid: u64,
    args_len: u8,
    args: [(&'static str, u64); MAX_ARGS],
}

impl TraceEvent {
    /// The key/value annotations attached to this event.
    #[must_use]
    pub fn args(&self) -> &[(&'static str, u64)] {
        &self.args[..usize::from(self.args_len)]
    }

    /// Looks up one annotation by key.
    #[must_use]
    pub fn arg(&self, key: &str) -> Option<u64> {
        self.args().iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }
}

/// Global monotone counters: event sequence stamps, span ids (0 is the
/// "no parent" sentinel, so ids start at 1), and thread ordinals.
static SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// All timestamps are relative to this lazily-anchored epoch, so traces
/// from different threads share one timeline.
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn now_ns() -> u64 {
    u64::try_from(EPOCH.get_or_init(Instant::now).elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The global sink thread buffers drain into at phase barriers.
static SINK: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

struct ThreadBuf {
    ring: VecDeque<TraceEvent>,
    /// Stack of open span ids on this thread — the implicit parent.
    stack: Vec<u64>,
    tid: u64,
}

impl ThreadBuf {
    fn new() -> Self {
        ThreadBuf {
            ring: VecDeque::new(),
            stack: Vec::new(),
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        }
    }

    fn push(&mut self, event: TraceEvent) {
        if self.ring.len() >= RING_CAPACITY {
            self.ring.pop_front();
            metrics().trace_events_dropped.inc();
        }
        self.ring.push_back(event);
    }

    fn flush_into_sink(&mut self) {
        if self.ring.is_empty() {
            return;
        }
        let mut sink = SINK.lock().expect("trace sink lock");
        sink.extend(self.ring.drain(..));
    }
}

impl Drop for ThreadBuf {
    // TLS teardown is the implicit phase barrier for scoped worker
    // threads: whatever they recorded lands in the sink on exit.
    fn drop(&mut self) {
        self.flush_into_sink();
    }
}

thread_local! {
    static BUF: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::new());
}

fn clamp_args(args: &[(&'static str, u64)]) -> (u8, [(&'static str, u64); MAX_ARGS]) {
    let mut fixed = [("", 0u64); MAX_ARGS];
    let len = args.len().min(MAX_ARGS);
    fixed[..len].copy_from_slice(&args[..len]);
    (len as u8, fixed)
}

/// An RAII guard for an open span; the span event is recorded (with its
/// measured duration) when the guard drops. A disabled-mode guard is a
/// no-op with id 0.
pub struct SpanGuard {
    id: u64,
    parent: u64,
    cat: &'static str,
    name: &'static str,
    start_ns: u64,
    tid: u64,
    args_len: u8,
    args: [(&'static str, u64); MAX_ARGS],
}

impl SpanGuard {
    const fn disabled() -> Self {
        SpanGuard {
            id: 0,
            parent: 0,
            cat: "",
            name: "",
            start_ns: 0,
            tid: 0,
            args_len: 0,
            args: [("", 0); MAX_ARGS],
        }
    }

    fn start(
        cat: &'static str,
        name: &'static str,
        explicit_parent: Option<u64>,
        args: &[(&'static str, u64)],
    ) -> Self {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let (args_len, args) = clamp_args(args);
        let (parent, tid) = BUF.with(|b| {
            let mut b = b.borrow_mut();
            let parent = explicit_parent.unwrap_or_else(|| b.stack.last().copied().unwrap_or(0));
            b.stack.push(id);
            (parent, b.tid)
        });
        SpanGuard {
            id,
            parent,
            cat,
            name,
            start_ns: now_ns(),
            tid,
            args_len,
            args,
        }
    }

    /// The span id, for parenting work handed to another thread via
    /// [`child_span`]. Zero when tracing is disabled.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attaches one more key/value annotation (silently dropped past
    /// [`MAX_ARGS`], or when the guard is disabled).
    pub fn arg(&mut self, key: &'static str, value: u64) {
        let len = usize::from(self.args_len);
        if self.id != 0 && len < MAX_ARGS {
            self.args[len] = (key, value);
            self.args_len += 1;
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        let event = TraceEvent {
            kind: TraceEventKind::Span,
            cat: self.cat,
            name: self.name,
            id: self.id,
            parent: self.parent,
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
            ts_ns: self.start_ns,
            dur_ns,
            tid: self.tid,
            args_len: self.args_len,
            args: self.args,
        };
        BUF.with(|b| {
            let mut b = b.borrow_mut();
            // Guards drop in LIFO order on one thread, so the top of the
            // stack is ours; tolerate out-of-order drops defensively.
            match b.stack.last() {
                Some(&top) if top == self.id => {
                    b.stack.pop();
                }
                _ => b.stack.retain(|&sid| sid != self.id),
            }
            b.push(event);
        });
    }
}

/// Opens a span parented to the innermost open span on this thread.
/// Disabled-mode cost: one relaxed atomic load and a branch.
#[inline]
pub fn span(cat: &'static str, name: &'static str, args: &[(&'static str, u64)]) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard::disabled();
    }
    SpanGuard::start(cat, name, None, args)
}

/// Opens a span under an explicit parent id — the cross-thread edge
/// (scheduler workers parent to the evaluation span of the submitting
/// thread). `parent` 0 makes a root.
#[inline]
pub fn child_span(
    cat: &'static str,
    name: &'static str,
    parent: u64,
    args: &[(&'static str, u64)],
) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard::disabled();
    }
    SpanGuard::start(cat, name, Some(parent), args)
}

/// Records a point event parented to the innermost open span.
#[inline]
pub fn instant(cat: &'static str, name: &'static str, args: &[(&'static str, u64)]) {
    if !crate::enabled() {
        return;
    }
    record_instant(cat, name, None, args);
}

/// Records a point event under an explicit parent id.
#[inline]
pub fn instant_under(
    cat: &'static str,
    name: &'static str,
    parent: u64,
    args: &[(&'static str, u64)],
) {
    if !crate::enabled() {
        return;
    }
    record_instant(cat, name, Some(parent), args);
}

fn record_instant(
    cat: &'static str,
    name: &'static str,
    explicit_parent: Option<u64>,
    args: &[(&'static str, u64)],
) {
    let (args_len, args) = clamp_args(args);
    let ts_ns = now_ns();
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        let parent = explicit_parent.unwrap_or_else(|| b.stack.last().copied().unwrap_or(0));
        let tid = b.tid;
        b.push(TraceEvent {
            kind: TraceEventKind::Instant,
            cat,
            name,
            id: 0,
            parent,
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
            ts_ns,
            dur_ns: 0,
            tid,
            args_len,
            args,
        });
    });
}

/// Drains this thread's ring buffer into the global sink. Call at phase
/// barriers (end of a worker closure, end of a server request). Cheap
/// when the buffer is empty.
pub fn flush() {
    BUF.with(|b| b.borrow_mut().flush_into_sink());
}

/// Flushes the calling thread, then takes every event accumulated in
/// the sink, sorted by sequence stamp. Events still sitting in *other*
/// live threads' buffers are not included — flush those threads first
/// (scheduler workers flush on exit).
#[must_use]
pub fn drain() -> Vec<TraceEvent> {
    flush();
    let mut events = std::mem::take(&mut *SINK.lock().expect("trace sink lock"));
    events.sort_by_key(|e| e.seq);
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_enabled;
    use std::sync::MutexGuard;

    /// Recording is process-global, so tests serialize on this lock and
    /// start from a drained sink.
    fn exclusive() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        let guard = LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_enabled(true);
        let _ = drain();
        guard
    }

    #[test]
    fn disabled_span_is_noop() {
        let _x = exclusive();
        set_enabled(false);
        let g = span("t", "nothing", &[("k", 1)]);
        assert_eq!(g.id(), 0);
        drop(g);
        instant("t", "nope", &[]);
        set_enabled(true);
        assert!(drain().is_empty());
    }

    #[test]
    fn nesting_links_parents() {
        let _x = exclusive();
        let outer = span("t", "outer", &[]);
        let outer_id = outer.id();
        {
            let inner = span("t", "inner", &[("n", 7)]);
            assert_ne!(inner.id(), 0);
            instant("t", "tick", &[]);
        }
        drop(outer);
        let events = drain();
        assert_eq!(events.len(), 3);
        let inner = events.iter().find(|e| e.name == "inner").expect("inner");
        let tick = events.iter().find(|e| e.name == "tick").expect("tick");
        let outer = events.iter().find(|e| e.name == "outer").expect("outer");
        assert_eq!(inner.parent, outer_id);
        assert_eq!(tick.parent, inner.id);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.arg("n"), Some(7));
        // Sequence stamps are drop-ordered: inner closes before outer.
        assert!(inner.seq < outer.seq);
    }

    #[test]
    fn cross_thread_child_span_flushes_on_exit() {
        let _x = exclusive();
        let root = span("t", "root", &[]);
        let root_id = root.id();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let _w = child_span("t", "worker", root_id, &[]);
            });
        });
        drop(root);
        let events = drain();
        let worker = events.iter().find(|e| e.name == "worker").expect("worker");
        let root = events.iter().find(|e| e.name == "root").expect("root");
        assert_eq!(worker.parent, root.id);
        assert_ne!(worker.tid, root.tid);
    }

    #[test]
    fn args_clamp_at_capacity() {
        let _x = exclusive();
        let mut g = span("t", "many", &[("a", 1), ("b", 2), ("c", 3), ("d", 4)]);
        g.arg("e", 5);
        drop(g);
        let events = drain();
        assert_eq!(events[0].args().len(), MAX_ARGS);
        assert_eq!(events[0].arg("e"), None);
    }
}
