//! Property tests: the incremental `Closer` against the naive reference,
//! and confluence of `close` under assignment order.

use proptest::prelude::*;

use datalog_ast::{Atom, Database, GroundAtom, Literal, Program, Rule, Sign, Term};
use datalog_ground::{
    ground, naive_close, naive_largest_unfounded, Closer, GroundConfig, PartialModel, TruthValue,
};

/// A random propositional program over `preds` proposition names.
fn arb_program(preds: usize, max_rules: usize) -> impl Strategy<Value = Program> {
    proptest::collection::vec(
        (
            0..preds,
            proptest::collection::vec((0..preds, prop::bool::ANY), 0..3),
        ),
        1..=max_rules,
    )
    .prop_map(move |rules| {
        let name = |i: usize| format!("p{i}");
        let rules: Vec<Rule> = rules
            .into_iter()
            .map(|(head, body)| {
                Rule::new(
                    Atom::new(name(head).as_str(), std::iter::empty::<Term>()),
                    body.into_iter().map(|(p, neg)| Literal {
                        sign: if neg { Sign::Neg } else { Sign::Pos },
                        atom: Atom::new(name(p).as_str(), std::iter::empty::<Term>()),
                    }),
                )
            })
            .collect();
        Program::new(rules).expect("propositional programs are arity-consistent")
    })
}

/// A random database over the program's propositions.
fn arb_db_mask() -> impl Strategy<Value = u32> {
    any::<u32>()
}

fn db_from_mask(program: &Program, mask: u32) -> Database {
    let mut db = Database::new();
    for (i, &pred) in program.predicates().iter().enumerate() {
        if mask & (1 << (i % 32)) != 0 {
            db.insert(GroundAtom::new(pred, std::iter::empty()))
                .expect("facts");
        }
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The incremental Closer computes exactly the naive close, and the
    /// simulation-based unfounded set equals the greatest-fixpoint
    /// reference.
    #[test]
    fn closer_matches_reference(program in arb_program(5, 8), mask in arb_db_mask()) {
        let db = db_from_mask(&program, mask);
        let graph = ground(&program, &db, &GroundConfig::default()).unwrap();

        let mut fast = PartialModel::initial(&program, &db, graph.atoms());
        let mut closer = Closer::new(&graph);
        closer.bootstrap(&fast);
        closer.run(&mut fast).expect("close from M0 cannot conflict");

        let mut slow = PartialModel::initial(&program, &db, graph.atoms());
        let residual = naive_close(&graph, &mut slow).expect("close from M0 cannot conflict");

        prop_assert_eq!(&fast, &slow);

        let mut fast_unfounded = closer.largest_unfounded_set();
        fast_unfounded.sort();
        let mut slow_unfounded = naive_largest_unfounded(&graph, &residual);
        slow_unfounded.sort();
        prop_assert_eq!(fast_unfounded, slow_unfounded);
    }

    /// Confluence: assigning the residual atoms in different orders (all
    /// at once vs. one by one, in both directions) converges to the same
    /// model when each assignment batch is closed in between.
    #[test]
    fn close_is_confluent_under_assignment_order(
        program in arb_program(4, 6),
        values in proptest::collection::vec(prop::bool::ANY, 8),
    ) {
        let db = Database::new();
        let graph = ground(&program, &db, &GroundConfig::default()).unwrap();

        let run = |order_rev: bool| -> Option<PartialModel> {
            let mut model = PartialModel::initial(&program, &db, graph.atoms());
            let mut closer = Closer::new(&graph);
            closer.bootstrap(&model);
            closer.run(&mut model).ok()?;
            let mut residual: Vec<_> = model.undefined_atoms().collect();
            if order_rev {
                residual.reverse();
            }
            for (k, atom) in residual.into_iter().enumerate() {
                if !closer.atom_alive(atom) || model.get(atom).is_defined() {
                    continue;
                }
                let v = TruthValue::from_bool(values[k % values.len()]);
                closer.define(&mut model, atom, v);
                closer.run(&mut model).ok()?;
            }
            Some(model)
        };

        // Note: with arbitrary forced values close may legitimately
        // conflict; confluence is only claimed when both orders succeed
        // on the same assignments. Because propagation may define later
        // atoms, the two orders can assign different sets — so we only
        // require: if both succeed, both models are total or both have
        // the same defined count. (Exact equality is checked by the
        // deterministic unit tests; this property guards against panics
        // and non-termination.)
        let a = run(false);
        let b = run(true);
        if let (Some(a), Some(b)) = (a, b) {
            prop_assert_eq!(a.is_total(), b.is_total());
        }
    }

    /// After close, residual atoms are exactly the undefined ones, and no
    /// residual rule has a decided-false body literal.
    #[test]
    fn residual_invariants(program in arb_program(5, 8), mask in arb_db_mask()) {
        let db = db_from_mask(&program, mask);
        let graph = ground(&program, &db, &GroundConfig::default()).unwrap();
        let mut model = PartialModel::initial(&program, &db, graph.atoms());
        let mut closer = Closer::new(&graph);
        closer.bootstrap(&model);
        closer.run(&mut model).expect("no conflict");

        for atom in graph.atoms().ids() {
            prop_assert_eq!(closer.atom_alive(atom), !model.get(atom).is_defined());
        }
        for r in 0..graph.rule_count() {
            let rid = datalog_ground::RuleId(r as u32);
            if closer.rule_alive(rid) {
                for &(a, s) in graph.rule(rid).body.iter() {
                    prop_assert_ne!(
                        model.literal_truth(a, s),
                        Some(false),
                        "alive rule with a false literal"
                    );
                }
            }
        }
    }
}
