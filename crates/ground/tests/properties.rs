//! Property tests: the incremental `Closer` against the naive reference,
//! confluence of `close` under assignment order, and the differential
//! Full ≡ Relevant grounding equivalence (identical post-`close`
//! residual graphs, models, and unfounded sets).

use proptest::prelude::*;

use datalog_ast::{Atom, Database, GroundAtom, Literal, Program, Rule, Sign, Term};
use datalog_ground::{
    ground, naive_close, naive_largest_unfounded, Closer, GroundConfig, GroundMode, PartialModel,
    TruthValue,
};

/// A random propositional program over `preds` proposition names.
fn arb_program(preds: usize, max_rules: usize) -> impl Strategy<Value = Program> {
    proptest::collection::vec(
        (
            0..preds,
            proptest::collection::vec((0..preds, prop::bool::ANY), 0..3),
        ),
        1..=max_rules,
    )
    .prop_map(move |rules| {
        let name = |i: usize| format!("p{i}");
        let rules: Vec<Rule> = rules
            .into_iter()
            .map(|(head, body)| {
                Rule::new(
                    Atom::new(name(head).as_str(), std::iter::empty::<Term>()),
                    body.into_iter().map(|(p, neg)| Literal {
                        sign: if neg { Sign::Neg } else { Sign::Pos },
                        atom: Atom::new(name(p).as_str(), std::iter::empty::<Term>()),
                    }),
                )
            })
            .collect();
        Program::new(rules).expect("propositional programs are arity-consistent")
    })
}

/// A random database over the program's propositions.
fn arb_db_mask() -> impl Strategy<Value = u32> {
    any::<u32>()
}

fn db_from_mask(program: &Program, mask: u32) -> Database {
    let mut db = Database::new();
    for (i, &pred) in program.predicates().iter().enumerate() {
        if mask & (1 << (i % 32)) != 0 {
            db.insert(GroundAtom::new(pred, std::iter::empty()))
                .expect("facts");
        }
    }
    db
}

/// Decoded, order-independent summary of `close(M₀, G)`: the residual
/// graph (alive atoms + alive rule instances), the model partition, and
/// the largest unfounded set. Two `GroundMode`s are equivalent iff their
/// summaries agree (dropped atoms excepted: they must be false in Full).
#[derive(Debug, PartialEq, Eq)]
struct CloseSummary {
    true_atoms: Vec<String>,
    undefined_atoms: Vec<String>,
    alive_rules: Vec<(u32, Vec<String>)>,
    unfounded: Vec<String>,
}

fn close_summary(
    program: &Program,
    database: &Database,
    config: &GroundConfig,
) -> (CloseSummary, Vec<String>) {
    let graph = ground(program, database, config).expect("grounds within budget");
    let mut model = PartialModel::initial(program, database, graph.atoms());
    let mut closer = Closer::new(&graph);
    closer.bootstrap(&model);
    closer
        .run(&mut model)
        .expect("close from M0 cannot conflict");

    let decode = |id: datalog_ground::AtomId| graph.atoms().decode(id).to_string();
    let mut true_atoms: Vec<String> = model
        .defined()
        .filter(|&(_, v)| v == TruthValue::True)
        .map(|(id, _)| decode(id))
        .collect();
    true_atoms.sort();
    let mut false_atoms: Vec<String> = model
        .defined()
        .filter(|&(_, v)| v == TruthValue::False)
        .map(|(id, _)| decode(id))
        .collect();
    false_atoms.sort();
    let mut undefined_atoms: Vec<String> = model.undefined_atoms().map(decode).collect();
    undefined_atoms.sort();
    let mut alive_rules: Vec<(u32, Vec<String>)> = (0..graph.rule_count())
        .map(|r| datalog_ground::RuleId(r as u32))
        .filter(|&r| closer.rule_alive(r))
        .map(|r| {
            let rule = graph.rule(r);
            (
                rule.rule_index,
                rule.subst.iter().map(|c| c.as_str().to_owned()).collect(),
            )
        })
        .collect();
    alive_rules.sort();
    let mut unfounded: Vec<String> = closer
        .largest_unfounded_set()
        .into_iter()
        .map(decode)
        .collect();
    unfounded.sort();
    (
        CloseSummary {
            true_atoms,
            undefined_atoms,
            alive_rules,
            unfounded,
        },
        false_atoms,
    )
}

/// Asserts Full ≡ Relevant for one instance; returns the summaries for
/// extra checks. Panics with a readable diff on mismatch.
fn assert_modes_equivalent(program: &Program, database: &Database) {
    let (full, full_false) = close_summary(program, database, &GroundConfig::default());
    let relevant_config = GroundConfig {
        mode: GroundMode::Relevant,
        ..GroundConfig::default()
    };
    let (relevant, relevant_false) = close_summary(program, database, &relevant_config);
    assert_eq!(
        full, relevant,
        "Full and Relevant disagree post-close on\n{program}\nover\n{database}"
    );
    // Every atom the relevant table knows and decides false is false in
    // Full too; atoms Full decides false may be absent from Relevant.
    for atom in &relevant_false {
        assert!(
            full_false.contains(atom),
            "relevant-false atom {atom} not false in Full mode"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The incremental Closer computes exactly the naive close, and the
    /// simulation-based unfounded set equals the greatest-fixpoint
    /// reference.
    #[test]
    fn closer_matches_reference(program in arb_program(5, 8), mask in arb_db_mask()) {
        let db = db_from_mask(&program, mask);
        let graph = ground(&program, &db, &GroundConfig::default()).unwrap();

        let mut fast = PartialModel::initial(&program, &db, graph.atoms());
        let mut closer = Closer::new(&graph);
        closer.bootstrap(&fast);
        closer.run(&mut fast).expect("close from M0 cannot conflict");

        let mut slow = PartialModel::initial(&program, &db, graph.atoms());
        let residual = naive_close(&graph, &mut slow).expect("close from M0 cannot conflict");

        prop_assert_eq!(&fast, &slow);

        let mut fast_unfounded = closer.largest_unfounded_set();
        fast_unfounded.sort();
        let mut slow_unfounded = naive_largest_unfounded(&graph, &residual);
        slow_unfounded.sort();
        prop_assert_eq!(fast_unfounded, slow_unfounded);
    }

    /// Confluence: assigning the residual atoms in different orders (all
    /// at once vs. one by one, in both directions) converges to the same
    /// model when each assignment batch is closed in between.
    #[test]
    fn close_is_confluent_under_assignment_order(
        program in arb_program(4, 6),
        values in proptest::collection::vec(prop::bool::ANY, 8),
    ) {
        let db = Database::new();
        let graph = ground(&program, &db, &GroundConfig::default()).unwrap();

        let run = |order_rev: bool| -> Option<PartialModel> {
            let mut model = PartialModel::initial(&program, &db, graph.atoms());
            let mut closer = Closer::new(&graph);
            closer.bootstrap(&model);
            closer.run(&mut model).ok()?;
            let mut residual: Vec<_> = model.undefined_atoms().collect();
            if order_rev {
                residual.reverse();
            }
            for (k, atom) in residual.into_iter().enumerate() {
                if !closer.atom_alive(atom) || model.get(atom).is_defined() {
                    continue;
                }
                let v = TruthValue::from_bool(values[k % values.len()]);
                closer.define(&mut model, atom, v);
                closer.run(&mut model).ok()?;
            }
            Some(model)
        };

        // Note: with arbitrary forced values close may legitimately
        // conflict; confluence is only claimed when both orders succeed
        // on the same assignments. Because propagation may define later
        // atoms, the two orders can assign different sets — so we only
        // require: if both succeed, both models are total or both have
        // the same defined count. (Exact equality is checked by the
        // deterministic unit tests; this property guards against panics
        // and non-termination.)
        let a = run(false);
        let b = run(true);
        if let (Some(a), Some(b)) = (a, b) {
            prop_assert_eq!(a.is_total(), b.is_total());
        }
    }

    /// After close, residual atoms are exactly the undefined ones, and no
    /// residual rule has a decided-false body literal.
    #[test]
    fn residual_invariants(program in arb_program(5, 8), mask in arb_db_mask()) {
        let db = db_from_mask(&program, mask);
        let graph = ground(&program, &db, &GroundConfig::default()).unwrap();
        let mut model = PartialModel::initial(&program, &db, graph.atoms());
        let mut closer = Closer::new(&graph);
        closer.bootstrap(&model);
        closer.run(&mut model).expect("no conflict");

        for atom in graph.atoms().ids() {
            prop_assert_eq!(closer.atom_alive(atom), !model.get(atom).is_defined());
        }
        for r in 0..graph.rule_count() {
            let rid = datalog_ground::RuleId(r as u32);
            if closer.rule_alive(rid) {
                for &(a, s) in &graph.rule(rid).body {
                    prop_assert_ne!(
                        model.literal_truth(a, s),
                        Some(false),
                        "alive rule with a false literal"
                    );
                }
            }
        }
    }
}

/// A random first-order program over a fixed signature: e/2 (EDB),
/// p/1, q/1, r/2 (IDB heads). Terms range over variables X, Y and
/// constants a, b, so arities stay consistent by construction.
fn arb_fo_program(max_rules: usize) -> impl Strategy<Value = Program> {
    let term = 0..4usize; // X, Y, a, b
    let atom = (0..4usize, proptest::collection::vec(term, 0..2));
    let literal = (atom, prop::bool::ANY);
    let rule = (0..3usize, proptest::collection::vec(literal, 0..3));
    proptest::collection::vec(rule, 1..=max_rules).prop_map(|rules| {
        let mk_term = |t: usize| match t {
            0 => Term::var("X"),
            1 => Term::var("Y"),
            2 => Term::constant("a"),
            _ => Term::constant("b"),
        };
        let mk_atom = |(pred, args): (usize, Vec<usize>)| -> Atom {
            // Fixed arities: e/2, r/2, p/1, q/1.
            let (name, arity) = match pred {
                0 => ("e", 2),
                1 => ("r", 2),
                2 => ("p", 1),
                _ => ("q", 1),
            };
            let terms: Vec<Term> = (0..arity)
                .map(|i| mk_term(args.get(i).copied().unwrap_or(i)))
                .collect();
            Atom::new(name, terms)
        };
        let rules: Vec<Rule> = rules
            .into_iter()
            .map(|(head, body)| {
                // Heads are IDB: p, q, or r.
                let head_atom = mk_atom((head + 1, vec![0, 1]));
                Rule::new(
                    head_atom,
                    body.into_iter().map(|(atom, neg)| Literal {
                        sign: if neg { Sign::Neg } else { Sign::Pos },
                        atom: mk_atom(atom),
                    }),
                )
            })
            .collect();
        Program::new(rules).expect("fixed-arity signature is consistent")
    })
}

/// A random database over e/2 and p/1 with constants a, b, c.
fn fo_db_from_mask(mask: u32) -> Database {
    let consts = ["a", "b", "c"];
    let mut db = Database::new();
    let mut bit = 0;
    for x in consts {
        for y in consts {
            if mask & (1 << bit) != 0 {
                db.insert(GroundAtom::from_texts("e", &[x, y]))
                    .expect("facts");
            }
            bit += 1;
        }
    }
    for x in consts {
        if mask & (1 << bit) != 0 {
            db.insert(GroundAtom::from_texts("p", &[x])).expect("facts");
        }
        bit += 1;
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Differential grounding, propositional: Full and Relevant produce
    /// identical post-close residual graphs, models, and unfounded sets
    /// on random propositional programs and databases.
    #[test]
    fn relevant_equals_full_propositional(program in arb_program(5, 8), mask in arb_db_mask()) {
        let db = db_from_mask(&program, mask);
        assert_modes_equivalent(&program, &db);
    }

    /// Differential grounding, first-order: same equivalence over random
    /// programs with variables, unsafe rules, and repeated constants.
    #[test]
    fn relevant_equals_full_first_order(program in arb_fo_program(6), mask in any::<u32>()) {
        let db = fo_db_from_mask(mask);
        assert_modes_equivalent(&program, &db);
    }

    /// The relevant graph never has more nodes than the full graph.
    #[test]
    fn relevant_graph_is_no_larger(program in arb_fo_program(6), mask in any::<u32>()) {
        let db = fo_db_from_mask(mask);
        let full = ground(&program, &db, &GroundConfig::default()).unwrap();
        let relevant = ground(
            &program,
            &db,
            &GroundConfig { mode: GroundMode::Relevant, ..GroundConfig::default() },
        )
        .unwrap();
        prop_assert!(relevant.atom_count() <= full.atom_count());
        prop_assert!(relevant.rule_count() <= full.rule_count());
        // Every relevant atom exists in the full table.
        for id in relevant.atoms().ids() {
            let decoded = relevant.atoms().decode(id);
            prop_assert!(full.atoms().id_of(&decoded).is_some(), "unknown atom {decoded}");
        }
    }
}
