//! The `close(M, G)` operator and the largest unfounded set.
//!
//! Paper, Section 2 — `close(M, G)` applies four operations until none is
//! applicable:
//!
//! 1. a **true** atom is deleted from G, along with every rule node it
//!    reaches by a *negative* arc (the rule's body is falsified);
//! 2. a **false** atom is deleted from G, along with every rule node it
//!    reaches by a *positive* arc;
//! 3. a rule node with **no incoming edges** fires: its head becomes true
//!    and the rule node is deleted;
//! 4. an atom with **no incoming edges** (no remaining rule can derive it)
//!    becomes false.
//!
//! The result is independent of operation order (the paper notes this;
//! [`Closer`] is worklist-based and a property test exercises confluence).
//!
//! [`Closer`] keeps the deletion state *incrementally*: the well-founded
//! and tie-breaking interpreters alternate `close` with external
//! assignments, and re-scanning the graph each round would square the
//! complexity. External assignments enter through [`Closer::define`];
//! [`Closer::run`] drains the worklist.
//!
//! The same struct also computes `Atoms[close(M, G⁺)]` — the largest
//! unfounded set — by simulating `close` on the positive subgraph of the
//! *remaining* graph without mutating the real state.

use std::collections::VecDeque;
use std::fmt;

use datalog_ast::Sign;
use signed_graph::{EdgeSign, NodeId, SignedDigraph};

use crate::atoms::AtomId;
use crate::graph::{GroundGraph, RuleId};
use crate::model::{PartialModel, TruthValue};

/// A contradiction detected during propagation: a rule with an all-true
/// body fired, but its head had already been made false (by an earlier
/// external assignment).
///
/// `close` itself never produces conflicts when used as the paper
/// prescribes; this surfaces misuse (e.g. a deliberately wrong tie-break
/// injected by a test).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CloseConflict {
    /// The head atom that should be true but is false.
    pub atom: AtomId,
}

impl fmt::Display for CloseConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "close conflict: a rule fired for atom #{} which is already false",
            self.atom.0
        )
    }
}

impl std::error::Error for CloseConflict {}

#[derive(Clone, Copy, Debug)]
enum Event {
    /// The model value of this atom was set; propagate its deletion.
    AtomDefined(AtomId),
    /// This rule's pending count hit zero; it fires unless already dead.
    RuleFires(RuleId),
    /// This atom's support hit zero; it becomes false unless defined.
    AtomUnsupported(AtomId),
}

/// Incremental state of `close(M, G)` over a [`GroundGraph`].
#[derive(Clone)]
pub struct Closer<'g> {
    graph: &'g GroundGraph,
    /// Atom still in the graph (⇔ undefined in the model, once `run` has
    /// drained the queue).
    atom_alive: Vec<bool>,
    /// Rule node still in the graph.
    rule_alive: Vec<bool>,
    /// Per rule: body occurrences not yet resolved true.
    rule_pending: Vec<u32>,
    /// Per atom: alive rule nodes with this head.
    atom_support: Vec<u32>,
    queue: VecDeque<Event>,
    /// When recording (see [`Closer::begin_trail`]): every atom defined
    /// since recording began, in definition order — external
    /// [`Closer::define`] calls and `close`-derived consequences alike.
    trail: Option<Vec<AtomId>>,
}

/// An owned snapshot of a [`Closer`]'s deletion state, detached from the
/// graph borrow.
///
/// This is the copy-on-write fork primitive of the session runtime: a
/// solver session runs `close(M₀, G)` **once**, snapshots the result, and
/// every subsequent evaluation (a parallel branch task, one script of an
/// outcome enumeration) rehydrates a private [`Closer`] from the shared
/// snapshot with [`Closer::from_state`] — a few `memcpy`s instead of a
/// whole propagation pass.
///
/// A snapshot can only be taken of (and restored to) a *quiescent*
/// closer — one whose worklist has been drained by [`Closer::run`] — so
/// restoring never replays half-processed events.
#[derive(Clone, Debug)]
pub struct CloseState {
    atom_alive: Vec<bool>,
    rule_alive: Vec<bool>,
    rule_pending: Vec<u32>,
    atom_support: Vec<u32>,
}

impl CloseState {
    /// Number of atoms still in the graph at snapshot time.
    pub fn alive_atom_count(&self) -> usize {
        self.atom_alive.iter().filter(|&&b| b).count()
    }

    /// Number of rule nodes still in the graph at snapshot time.
    pub fn alive_rule_count(&self) -> usize {
        self.rule_alive.iter().filter(|&&b| b).count()
    }

    /// Grows the snapshot to a graph that gained atoms and rules since it
    /// was taken (the delta grounder only ever appends). New entries get
    /// placeholder values — they are always inside the mutation cone, so
    /// [`Closer::reopen_cone`] recomputes them before anything reads them.
    ///
    /// # Panics
    ///
    /// If either dimension shrinks (graphs never retire nodes).
    pub fn grow(&mut self, atom_count: usize, rule_count: usize) {
        assert!(
            atom_count >= self.atom_alive.len() && rule_count >= self.rule_alive.len(),
            "ground graphs never shrink"
        );
        self.atom_alive.resize(atom_count, true);
        self.rule_alive.resize(rule_count, true);
        self.rule_pending.resize(rule_count, 0);
        self.atom_support.resize(atom_count, 0);
    }
}

impl<'g> Closer<'g> {
    /// Fresh state over `graph`: everything alive, nothing queued.
    pub fn new(graph: &'g GroundGraph) -> Self {
        let rule_pending: Vec<u32> = graph.rules().iter().map(|r| r.body.len() as u32).collect();
        let atom_support: Vec<u32> = (0..graph.atom_count())
            .map(|i| graph.heads_of(AtomId(i as u32)).len() as u32)
            .collect();
        Closer {
            graph,
            atom_alive: vec![true; graph.atom_count()],
            rule_alive: vec![true; graph.rule_count()],
            rule_pending,
            atom_support,
            queue: VecDeque::new(),
            trail: None,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g GroundGraph {
        self.graph
    }

    /// Snapshots the deletion state (see [`CloseState`]).
    ///
    /// # Panics
    ///
    /// If the worklist is not empty — snapshot only quiescent state, i.e.
    /// after [`Closer::run`] has returned.
    pub fn snapshot(&self) -> CloseState {
        assert!(
            self.queue.is_empty(),
            "snapshot of a closer with queued events"
        );
        CloseState {
            atom_alive: self.atom_alive.clone(),
            rule_alive: self.rule_alive.clone(),
            rule_pending: self.rule_pending.clone(),
            atom_support: self.atom_support.clone(),
        }
    }

    /// Rehydrates a closer over `graph` from a snapshot previously taken
    /// by [`Closer::snapshot`] of a closer over the *same* graph.
    ///
    /// # Panics
    ///
    /// If the snapshot's dimensions do not match `graph`.
    pub fn from_state(graph: &'g GroundGraph, state: &CloseState) -> Self {
        assert_eq!(
            state.atom_alive.len(),
            graph.atom_count(),
            "snapshot is for a different graph"
        );
        assert_eq!(
            state.rule_alive.len(),
            graph.rule_count(),
            "snapshot is for a different graph"
        );
        Closer {
            graph,
            atom_alive: state.atom_alive.clone(),
            rule_alive: state.rule_alive.clone(),
            rule_pending: state.rule_pending.clone(),
            atom_support: state.atom_support.clone(),
            queue: VecDeque::new(),
            trail: None,
        }
    }

    /// Starts recording every atom that becomes defined — by
    /// [`Closer::define`] or by `close` propagation inside
    /// [`Closer::run`] — until [`Closer::take_trail`] collects the list.
    ///
    /// The trail is the wave scheduler's merge-queue payload: a worker
    /// evaluates a component on a private fork, takes the trail, and
    /// sibling forks *replay* it (`define` each atom with its recorded
    /// value, then one `run`) to resynchronize. Replay is exact because
    /// `close` is confluent and `define` is a no-op for an atom already
    /// holding the same value.
    pub fn begin_trail(&mut self) {
        self.trail = Some(Vec::new());
    }

    /// Stops recording and returns the atoms defined since
    /// [`Closer::begin_trail`], in definition order.
    pub fn take_trail(&mut self) -> Vec<AtomId> {
        self.trail.take().unwrap_or_default()
    }

    /// Queues every already-defined atom of `model` (typically M₀), every
    /// body-less rule, and every unsupported atom. Call once before the
    /// first [`Closer::run`].
    pub fn bootstrap(&mut self, model: &PartialModel) {
        debug_assert_eq!(model.len(), self.graph.atom_count());
        for (atom, _) in model.defined() {
            self.queue.push_back(Event::AtomDefined(atom));
        }
        for (i, &pending) in self.rule_pending.iter().enumerate() {
            if pending == 0 {
                self.queue.push_back(Event::RuleFires(RuleId(i as u32)));
            }
        }
        for (i, &support) in self.atom_support.iter().enumerate() {
            if support == 0 {
                self.queue
                    .push_back(Event::AtomUnsupported(AtomId(i as u32)));
            }
        }
    }

    /// Reopens the forward cone of a mutation for re-closing — the
    /// incremental counterpart of [`Closer::bootstrap`], in the spirit of
    /// DRed: every conclusion the base `close` drew inside the cone is
    /// *over-deleted* (cone atoms revert to undefined-and-alive, cone
    /// rules to alive) and then *re-derived* by replaying `close` against
    /// the frozen out-of-cone boundary. Because the cone is the forward
    /// closure of the changed atoms ([`crate::GroundGraph::forward_cone`])
    /// and every `close` operation follows a graph edge, (a) nothing
    /// outside the cone can be affected by the mutation, and (b) no event
    /// queued here can escape the cone — so splicing the re-closed cone
    /// into the untouched remainder reproduces exactly what a from-scratch
    /// `close` on the mutated database computes (close is confluent;
    /// order the from-scratch run to process all out-of-cone events
    /// first and it becomes this computation).
    ///
    /// `initial` must be the paper's M₀ for the **mutated** database;
    /// `model` holds the base post-close model and is spliced in place.
    /// The caller must [`Closer::run`] afterwards and may then snapshot.
    ///
    /// Boundary replay: an out-of-cone rule node is dead either because
    /// it **fired** (its pending count reached 0 — every body occurrence
    /// resolved true, which forces its head true) or because it was
    /// **killed** by a false body literal (pending still positive; body
    /// occurrences resolve at most once, so the two are distinguishable
    /// from the retained pending count). Fired out-of-cone rules heading
    /// a cone atom re-impose truth on it; alive out-of-cone rules keep it
    /// supported; killed ones contribute nothing.
    pub fn reopen_cone(
        &mut self,
        model: &mut PartialModel,
        initial: &PartialModel,
        cone: &crate::graph::Cone,
    ) {
        let _span = tiebreak_trace::span(
            "close",
            "reopen_cone",
            &[
                ("cone_atoms", cone.atoms.len() as u64),
                ("cone_rules", cone.rules.len() as u64),
            ],
        );
        tiebreak_trace::metrics().cones_reopened.inc();
        assert!(self.queue.is_empty(), "reopen requires a quiescent closer");
        // Over-delete: revert the cone to its pre-close state.
        for &a in &cone.atoms {
            self.atom_alive[a.index()] = true;
            model.set(a, TruthValue::Undefined);
        }
        for &r in &cone.rules {
            self.rule_alive[r.index()] = true;
        }
        // Cone rules: recompute pending counts against the frozen
        // boundary; a false out-of-cone literal kills the rule outright
        // (its AtomDefined event was consumed by the base close).
        for &r in &cone.rules {
            let rule = self.graph.rule(r);
            let mut pending = 0u32;
            let mut dead = false;
            for &(a, sign) in &rule.body {
                if cone.atom_in[a.index()] {
                    pending += 1; // resolved by cone events, if ever
                    continue;
                }
                match model.literal_truth(a, sign) {
                    None => pending += 1, // alive boundary atom: never resolves
                    Some(true) => {}
                    Some(false) => {
                        dead = true;
                        break;
                    }
                }
            }
            if dead {
                self.rule_alive[r.index()] = false;
                // A killed rule must never read as *fired* (dead with
                // pending 0) to a later epoch's boundary replay: record
                // the falsified occurrence explicitly. Without this, a
                // rule appended by delta grounding — whose grown
                // placeholder pending is 0 — and killed right here
                // would force its head true in the next cone that
                // contains the head but not the rule.
                self.rule_pending[r.index()] = self.rule_pending[r.index()].max(1);
            } else {
                self.rule_pending[r.index()] = pending;
                if pending == 0 {
                    self.queue.push_back(Event::RuleFires(r));
                }
            }
        }
        // Cone atoms: M₀ value (+ boundary replay of fired out-of-cone
        // rules), support from the final aliveness of their head rules.
        for &a in &cone.atoms {
            let mut value = initial.get(a);
            let mut support = 0u32;
            for &r in self.graph.heads_of(a) {
                if self.rule_alive[r.index()] {
                    support += 1;
                } else if !cone.rule_in[r.index()] && self.rule_pending[r.index()] == 0 {
                    value = TruthValue::True; // fired out-of-cone rule
                }
            }
            self.atom_support[a.index()] = support;
            if value.is_defined() {
                model.set(a, value);
                self.queue.push_back(Event::AtomDefined(a));
            } else if support == 0 {
                self.queue.push_back(Event::AtomUnsupported(a));
            }
        }
    }

    /// Externally assigns `value` to `atom` in `model` and queues the
    /// propagation. The caller must [`Closer::run`] afterwards.
    ///
    /// # Panics
    ///
    /// If `value` is undefined, or the atom already has a *different*
    /// defined value (interpreters never re-assign).
    pub fn define(&mut self, model: &mut PartialModel, atom: AtomId, value: TruthValue) {
        assert!(value.is_defined(), "cannot define an atom as undefined");
        let old = model.get(atom);
        if old.is_defined() {
            assert_eq!(old, value, "conflicting external assignment");
            return;
        }
        model.set(atom, value);
        if let Some(trail) = &mut self.trail {
            trail.push(atom);
        }
        self.queue.push_back(Event::AtomDefined(atom));
    }

    /// `true` iff the atom is still in the graph.
    pub fn atom_alive(&self, atom: AtomId) -> bool {
        self.atom_alive[atom.index()]
    }

    /// `true` iff the rule node is still in the graph.
    pub fn rule_alive(&self, rule: RuleId) -> bool {
        self.rule_alive[rule.index()]
    }

    /// Number of atoms still in the graph.
    pub fn alive_atom_count(&self) -> usize {
        self.atom_alive.iter().filter(|&&b| b).count()
    }

    /// Iterates over the atoms still in the graph.
    pub fn alive_atoms(&self) -> impl Iterator<Item = AtomId> + '_ {
        self.atom_alive
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| AtomId(i as u32))
    }

    fn kill_rule(&mut self, rule: RuleId) {
        if !self.rule_alive[rule.index()] {
            return;
        }
        self.rule_alive[rule.index()] = false;
        let head = self.graph.rule(rule).head;
        if self.atom_alive[head.index()] {
            let s = &mut self.atom_support[head.index()];
            *s -= 1;
            if *s == 0 {
                self.queue.push_back(Event::AtomUnsupported(head));
            }
        }
    }

    /// Drains the worklist, applying the four `close` operations to a
    /// fixpoint.
    ///
    /// # Errors
    ///
    /// [`CloseConflict`] if a firing rule's head is already false.
    pub fn run(&mut self, model: &mut PartialModel) -> Result<(), CloseConflict> {
        let mut processed: u64 = 0;
        let result = self.run_inner(model, &mut processed);
        // One coarse metrics update per run, never per event.
        let m = tiebreak_trace::metrics();
        m.close_runs.inc();
        m.close_events.add(processed);
        result
    }

    fn run_inner(
        &mut self,
        model: &mut PartialModel,
        processed: &mut u64,
    ) -> Result<(), CloseConflict> {
        while let Some(event) = self.queue.pop_front() {
            *processed += 1;
            match event {
                Event::AtomDefined(atom) => {
                    if !self.atom_alive[atom.index()] {
                        continue;
                    }
                    self.atom_alive[atom.index()] = false;
                    let value = model.get(atom);
                    debug_assert!(value.is_defined(), "queued atom must be defined");
                    let truth = value == TruthValue::True;
                    // Borrow dance: collect uses first (they are immutable
                    // per graph; cloning the small Vec is avoided by raw
                    // indexing).
                    for k in 0..self.graph.uses_of(atom).len() {
                        let (rule, sign) = self.graph.uses_of(atom)[k];
                        if !self.rule_alive[rule.index()] {
                            continue;
                        }
                        let literal_true = match sign {
                            Sign::Pos => truth,
                            Sign::Neg => !truth,
                        };
                        if literal_true {
                            let p = &mut self.rule_pending[rule.index()];
                            *p -= 1;
                            if *p == 0 {
                                self.queue.push_back(Event::RuleFires(rule));
                            }
                        } else {
                            self.kill_rule(rule);
                        }
                    }
                }
                Event::RuleFires(rule) => {
                    if !self.rule_alive[rule.index()] {
                        continue;
                    }
                    self.rule_alive[rule.index()] = false;
                    let head = self.graph.rule(rule).head;
                    match model.get(head) {
                        TruthValue::False => return Err(CloseConflict { atom: head }),
                        TruthValue::True => {
                            // Already true (and queued or processed);
                            // nothing more to do. Support bookkeeping is
                            // irrelevant for defined atoms.
                        }
                        TruthValue::Undefined => {
                            model.set(head, TruthValue::True);
                            if let Some(trail) = &mut self.trail {
                                trail.push(head);
                            }
                            self.queue.push_back(Event::AtomDefined(head));
                        }
                    }
                }
                Event::AtomUnsupported(atom) => {
                    if !self.atom_alive[atom.index()] {
                        continue;
                    }
                    if model.get(atom).is_defined() {
                        // Defined but not yet popped; the AtomDefined event
                        // will handle deletion.
                        continue;
                    }
                    model.set(atom, TruthValue::False);
                    if let Some(trail) = &mut self.trail {
                        trail.push(atom);
                    }
                    self.queue.push_back(Event::AtomDefined(atom));
                }
            }
        }
        Ok(())
    }

    /// The largest unfounded set with respect to the current state:
    /// `Atoms[close(M, G⁺)]`, i.e. the atoms of the remaining graph that
    /// survive running `close` on its positive subgraph.
    ///
    /// Graph-theoretically (paper, Section 2): the maximal set *D* of
    /// remaining atoms such that the subgraph of G⁺ induced by *D* and the
    /// rule nodes preceding them has no source.
    pub fn largest_unfounded_set(&self) -> Vec<AtomId> {
        // Simulated deletion state, seeded from the live state.
        let mut atom_in = self.atom_alive.clone();
        let mut rule_in = self.rule_alive.clone();
        // pending⁺: positive body occurrences over *alive* atoms.
        let mut pending_pos: Vec<u32> = vec![0; self.graph.rule_count()];
        let mut support: Vec<u32> = self.atom_support.clone();
        let mut queue: VecDeque<Event> = VecDeque::new();

        for (i, rule) in self.graph.rules().iter().enumerate() {
            if !rule_in[i] {
                continue;
            }
            let p = rule
                .body
                .iter()
                .filter(|&&(a, s)| s.is_pos() && atom_in[a.index()])
                .count() as u32;
            pending_pos[i] = p;
            if p == 0 {
                queue.push_back(Event::RuleFires(RuleId(i as u32)));
            }
        }
        for (i, &alive) in self.atom_alive.iter().enumerate() {
            if alive && support[i] == 0 {
                queue.push_back(Event::AtomUnsupported(AtomId(i as u32)));
            }
        }

        // `remove_atom` cascade, specialised for the positive subgraph.
        while let Some(event) = queue.pop_front() {
            match event {
                Event::RuleFires(rule) => {
                    if !rule_in[rule.index()] {
                        continue;
                    }
                    rule_in[rule.index()] = false;
                    let head = self.graph.rule(rule).head;
                    if atom_in[head.index()] {
                        // Head becomes "true": delete it; its positive uses
                        // lose an incoming edge.
                        atom_in[head.index()] = false;
                        for &(r, s) in self.graph.uses_of(head) {
                            if s.is_pos() && rule_in[r.index()] {
                                let p = &mut pending_pos[r.index()];
                                *p -= 1;
                                if *p == 0 {
                                    queue.push_back(Event::RuleFires(r));
                                }
                            }
                        }
                    }
                }
                Event::AtomUnsupported(atom) => {
                    if !atom_in[atom.index()] {
                        continue;
                    }
                    atom_in[atom.index()] = false;
                    // "False": kill rules with a positive arc from it.
                    for &(r, s) in self.graph.uses_of(atom) {
                        if s.is_pos() && rule_in[r.index()] {
                            rule_in[r.index()] = false;
                            let head = self.graph.rule(r).head;
                            if atom_in[head.index()] {
                                let sp = &mut support[head.index()];
                                *sp -= 1;
                                if *sp == 0 {
                                    queue.push_back(Event::AtomUnsupported(head));
                                }
                            }
                        }
                    }
                }
                Event::AtomDefined(_) => unreachable!("not used by the simulation"),
            }
        }

        // Atoms alive in the real graph that survived the simulation.
        self.atom_alive
            .iter()
            .enumerate()
            .filter(|&(i, &alive)| alive && atom_in[i])
            .map(|(i, _)| AtomId(i as u32))
            .collect()
    }

    /// Materializes the *remaining* ground graph (alive atoms and rules,
    /// with their surviving edges) as a [`SignedDigraph`] for SCC and tie
    /// analysis.
    pub fn remaining_digraph(&self) -> RemainingGraph {
        let mut kinds: Vec<NodeKind> = Vec::new();
        let mut atom_node: Vec<Option<NodeId>> = vec![None; self.graph.atom_count()];
        let mut rule_node: Vec<Option<NodeId>> = vec![None; self.graph.rule_count()];

        for (i, &alive) in self.atom_alive.iter().enumerate() {
            if alive {
                atom_node[i] = Some(kinds.len() as NodeId);
                kinds.push(NodeKind::Atom(AtomId(i as u32)));
            }
        }
        for (i, &alive) in self.rule_alive.iter().enumerate() {
            if alive {
                rule_node[i] = Some(kinds.len() as NodeId);
                kinds.push(NodeKind::Rule(RuleId(i as u32)));
            }
        }

        let mut digraph = SignedDigraph::new(kinds.len());
        for (i, rule) in self.graph.rules().iter().enumerate() {
            let Some(rn) = rule_node[i] else { continue };
            if let Some(hn) = atom_node[rule.head.index()] {
                digraph.add_edge(rn, hn, EdgeSign::Pos);
            }
            for &(a, s) in &rule.body {
                if let Some(an) = atom_node[a.index()] {
                    let sign = match s {
                        Sign::Pos => EdgeSign::Pos,
                        Sign::Neg => EdgeSign::Neg,
                    };
                    digraph.add_edge(an, rn, sign);
                }
            }
        }

        RemainingGraph {
            digraph,
            kinds,
            atom_node,
        }
    }
}

/// What a node of the [`RemainingGraph`] stands for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// A ground atom (predicate node).
    Atom(AtomId),
    /// A rule node.
    Rule(RuleId),
}

/// The remaining ground graph as a plain signed digraph plus node
/// provenance.
pub struct RemainingGraph {
    /// The graph over alive nodes (atoms then rules, densely renumbered).
    pub digraph: SignedDigraph,
    /// Node provenance, indexed by [`NodeId`].
    pub kinds: Vec<NodeKind>,
    /// Reverse lookup: the node of each atom, if alive.
    pub atom_node: Vec<Option<NodeId>>,
}

impl RemainingGraph {
    /// The atom behind `node`, if it is an atom node.
    pub fn as_atom(&self, node: NodeId) -> Option<AtomId> {
        match self.kinds[node as usize] {
            NodeKind::Atom(a) => Some(a),
            NodeKind::Rule(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grounder::{ground, GroundConfig};
    use crate::model::PartialModel;
    use datalog_ast::{parse_database, parse_program, Database, GroundAtom};

    fn closed(
        program_src: &str,
        db_src: &str,
    ) -> (crate::graph::GroundGraph, datalog_ast::Program, Database) {
        let p = parse_program(program_src).unwrap();
        let d = parse_database(db_src).unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        (g, p, d)
    }

    /// Runs M₀ + close and returns (closer, model).
    fn run_close<'g>(
        g: &'g crate::graph::GroundGraph,
        p: &datalog_ast::Program,
        d: &Database,
    ) -> (Closer<'g>, PartialModel) {
        let mut m = PartialModel::initial(p, d, g.atoms());
        let mut closer = Closer::new(g);
        closer.bootstrap(&m);
        closer.run(&mut m).expect("no conflict");
        (closer, m)
    }

    fn truth(
        g: &crate::graph::GroundGraph,
        m: &PartialModel,
        pred: &str,
        args: &[&str],
    ) -> TruthValue {
        let id = g
            .atoms()
            .id_of(&GroundAtom::from_texts(pred, args))
            .expect("atom exists");
        m.get(id)
    }

    #[test]
    fn positive_chain_closes_completely() {
        // p(X) :- e(X).  q(X) :- p(X).  over e(a).
        let (g, p, d) = closed("p(X) :- e(X).\nq(X) :- p(X).", "e(a).");
        let (closer, m) = run_close(&g, &p, &d);
        assert!(m.is_total());
        assert_eq!(closer.alive_atom_count(), 0);
        assert_eq!(truth(&g, &m, "p", &["a"]), TruthValue::True);
        assert_eq!(truth(&g, &m, "q", &["a"]), TruthValue::True);
    }

    #[test]
    fn unsupported_atoms_become_false() {
        let (g, p, d) = closed("p(X) :- e(X).", "e(a).\nf(b).");
        // f is mentioned nowhere in the program, so V_P has no f atoms; but
        // constant b joins the universe, making p(b)/e(b) exist.
        let (_, m) = run_close(&g, &p, &d);
        assert!(m.is_total());
        assert_eq!(truth(&g, &m, "p", &["b"]), TruthValue::False);
        assert_eq!(truth(&g, &m, "e", &["b"]), TruthValue::False);
    }

    #[test]
    fn negation_on_edb_resolves() {
        // p(X) :- e(X), not f(X). with f EDB.
        let p = parse_program("p(X) :- e(X), not f(X).").unwrap();
        let d = parse_database("e(a).\ne(b).\nf(b).").unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        let (_, m) = run_close(&g, &p, &d);
        assert!(m.is_total());
        assert_eq!(truth(&g, &m, "p", &["a"]), TruthValue::True);
        assert_eq!(truth(&g, &m, "p", &["b"]), TruthValue::False);
    }

    #[test]
    fn mutual_negation_stays_open() {
        // p :- not q. q :- not p. — close assigns nothing.
        let (g, p, d) = closed("p :- not q.\nq :- not p.", "");
        let (closer, m) = run_close(&g, &p, &d);
        assert!(!m.is_total());
        assert_eq!(closer.alive_atom_count(), 2);
        assert_eq!(m.defined_count(), 0);
    }

    #[test]
    fn external_definition_propagates() {
        let (g, p, d) = closed("p :- not q.\nq :- not p.", "");
        let (mut closer, mut m) = run_close(&g, &p, &d);
        let qa = g.atoms().atom_id("q".into(), &[]).unwrap();
        closer.define(&mut m, qa, TruthValue::False);
        closer.run(&mut m).unwrap();
        assert!(m.is_total());
        assert_eq!(truth(&g, &m, "p", &[]), TruthValue::True);
    }

    #[test]
    fn conflict_detected_on_bad_assignment() {
        // p :- e.  with e true: forcing p false must conflict.
        let (g, p, d) = closed("p :- e.", "e.");
        let mut m = PartialModel::initial(&p, &d, g.atoms());
        let mut closer = Closer::new(&g);
        let pa = g.atoms().atom_id("p".into(), &[]).unwrap();
        // Pre-force p false, then bootstrap.
        closer.define(&mut m, pa, TruthValue::False);
        closer.bootstrap(&m);
        let err = closer.run(&mut m).unwrap_err();
        assert_eq!(err.atom, pa);
    }

    #[test]
    fn facts_fire_immediately() {
        let (g, p, d) = closed("p(a).\nq(X) :- p(X).", "");
        let (_, m) = run_close(&g, &p, &d);
        assert!(m.is_total());
        assert_eq!(truth(&g, &m, "p", &["a"]), TruthValue::True);
        assert_eq!(truth(&g, &m, "q", &["a"]), TruthValue::True);
    }

    #[test]
    fn unfounded_set_of_positive_loop() {
        // p :- q. q :- p. — close leaves both; both are unfounded.
        let (g, p, d) = closed("p :- q.\nq :- p.", "");
        let (closer, m) = run_close(&g, &p, &d);
        assert_eq!(m.defined_count(), 0);
        let unfounded = closer.largest_unfounded_set();
        assert_eq!(unfounded.len(), 2);
    }

    #[test]
    fn unfounded_set_of_pq_example_is_everything() {
        // Paper §3: p ← p, ¬q ; q ← q, ¬p — {p, q} is unfounded.
        let (g, p, d) = closed("p :- p, not q.\nq :- q, not p.", "");
        let (closer, _) = run_close(&g, &p, &d);
        let unfounded = closer.largest_unfounded_set();
        assert_eq!(unfounded.len(), 2);
    }

    #[test]
    fn no_unfounded_set_in_pure_negation_cycle() {
        // p :- not q. q :- not p. — G⁺ has only the head edges; each atom
        // keeps support, each rule has zero positive pending ⇒ everything
        // deleted in the simulation ⇒ unfounded set empty.
        let (g, p, d) = closed("p :- not q.\nq :- not p.", "");
        let (closer, _) = run_close(&g, &p, &d);
        assert!(closer.largest_unfounded_set().is_empty());
    }

    #[test]
    fn remaining_digraph_of_pq_example() {
        let (g, p, d) = closed("p :- p, not q.\nq :- q, not p.", "");
        let (closer, _) = run_close(&g, &p, &d);
        let rem = closer.remaining_digraph();
        // 2 atoms + 2 rules.
        assert_eq!(rem.digraph.node_count(), 4);
        // Each rule: head edge + 2 body edges = 6 total.
        assert_eq!(rem.digraph.edge_count(), 6);
        // One SCC spanning everything.
        let sccs = signed_graph::Sccs::compute(&rem.digraph);
        assert_eq!(sccs.len(), 1);
    }

    #[test]
    fn closer_is_confluent_under_definition_order() {
        // Define the same atoms in both orders; final models agree.
        let (g, p, d) = closed("a :- not b.\nb :- not a.\nc :- not d.\nd :- not c.", "");
        let ids: Vec<AtomId> = ["a", "c"]
            .iter()
            .map(|n| g.atoms().atom_id((*n).into(), &[]).unwrap())
            .collect();

        let (mut c1, mut m1) = run_close(&g, &p, &d);
        c1.define(&mut m1, ids[0], TruthValue::True);
        c1.run(&mut m1).unwrap();
        c1.define(&mut m1, ids[1], TruthValue::True);
        c1.run(&mut m1).unwrap();

        let (mut c2, mut m2) = run_close(&g, &p, &d);
        c2.define(&mut m2, ids[1], TruthValue::True);
        c2.define(&mut m2, ids[0], TruthValue::True);
        c2.run(&mut m2).unwrap();

        assert_eq!(m1, m2);
        assert!(m1.is_total());
    }

    #[test]
    fn snapshot_forks_independent_evaluations() {
        // Fork two closers off one post-close snapshot and drive them to
        // opposite orientations; the snapshot itself stays pristine.
        let (g, p, d) = closed("p :- not q.\nq :- not p.\nr :- not p.", "");
        let (closer, m) = run_close(&g, &p, &d);
        let snap = closer.snapshot();
        assert_eq!(snap.alive_atom_count(), closer.alive_atom_count());
        assert_eq!(snap.alive_rule_count(), 3);

        let qa = g.atoms().atom_id("q".into(), &[]).unwrap();
        let run_fork = |value: TruthValue| {
            let mut fork = Closer::from_state(&g, &snap);
            let mut fm = m.clone();
            fork.define(&mut fm, qa, value);
            fork.run(&mut fm).unwrap();
            fm
        };
        let m_false = run_fork(TruthValue::False);
        let m_true = run_fork(TruthValue::True);
        assert!(m_false.is_total() && m_true.is_total());
        assert_eq!(truth(&g, &m_false, "p", &[]), TruthValue::True);
        assert_eq!(truth(&g, &m_false, "r", &[]), TruthValue::False);
        assert_eq!(truth(&g, &m_true, "p", &[]), TruthValue::False);
        assert_eq!(truth(&g, &m_true, "r", &[]), TruthValue::True);
    }

    /// Flips one EDB fact in a prepared close state via the cone splice
    /// and checks the result against a from-scratch close of the mutated
    /// database.
    fn assert_cone_reclose_matches_fresh(program_src: &str, db_src: &str, flip: (&str, &[&str])) {
        let p = parse_program(program_src).unwrap();
        let d = parse_database(db_src).unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        let (mut closer, mut model) = run_close(&g, &p, &d);

        let fact = GroundAtom::from_texts(flip.0, flip.1);
        let atom = g.atoms().id_of(&fact).expect("fact in atom space");
        let mut d2 = d.clone();
        if !d2.remove(&fact) {
            d2.insert(fact).unwrap();
        }
        // Incremental: reopen the forward cone against the new M₀.
        let initial = PartialModel::initial(&p, &d2, g.atoms());
        let cone = g.forward_cone([atom], []);
        closer.reopen_cone(&mut model, &initial, &cone);
        closer.run(&mut model).expect("no conflict");

        // Reference: close from scratch on the mutated database.
        let (fresh_closer, fresh_model) = run_close(&g, &p, &d2);
        assert_eq!(model, fresh_model, "spliced model ≠ fresh close");
        for id in g.atoms().ids() {
            assert_eq!(
                closer.atom_alive(id),
                fresh_closer.atom_alive(id),
                "aliveness differs at {}",
                g.atoms().decode(id)
            );
        }
        for i in 0..g.rule_count() {
            let r = RuleId(i as u32);
            assert_eq!(closer.rule_alive(r), fresh_closer.rule_alive(r));
        }
        let mut a = closer.largest_unfounded_set();
        let mut b = fresh_closer.largest_unfounded_set();
        a.sort();
        b.sort();
        assert_eq!(a, b, "unfounded sets differ after splice");
    }

    #[test]
    fn cone_reclose_retracts_a_chain_edge() {
        // Retracting e(b) must revive nothing and falsify p(b)/q(b)'s
        // support exactly as a fresh close would.
        assert_cone_reclose_matches_fresh(
            "p(X) :- e(X).\nq(X) :- p(X).",
            "e(a).\ne(b).",
            ("e", &["b"]),
        );
    }

    #[test]
    fn cone_reclose_inserts_into_a_win_move_game() {
        assert_cone_reclose_matches_fresh(
            "win(X) :- move(X, Y), not win(Y).",
            "move(a, b).\nmove(b, c).\nmove(c, a).\nmove(a, c).",
            ("move", &["b", "a"]),
        );
    }

    #[test]
    fn cone_reclose_revives_killed_rules() {
        // With f(a) present the rule for p(a) is dead (negative literal
        // false); retracting f(a) must revive and fire it.
        assert_cone_reclose_matches_fresh(
            "p(X) :- e(X), not f(X).\nr(X) :- p(X).",
            "e(a).\nf(a).",
            ("f", &["a"]),
        );
    }

    #[test]
    fn cone_reclose_keeps_residual_ties_intact() {
        // The p/q tie survives a mutation in an unrelated region, and a
        // mutation of its guard resolves it exactly like a fresh close.
        assert_cone_reclose_matches_fresh(
            "p :- not q, e.\nq :- not p, e.\nr(X) :- g(X).",
            "e.\ng(a).",
            ("g", &["a"]),
        );
        assert_cone_reclose_matches_fresh(
            "p :- not q, e.\nq :- not p, e.\nr(X) :- g(X).",
            "e.\ng(a).",
            ("e", &[]),
        );
    }

    #[test]
    fn cone_reclose_sequences_compose() {
        // A sequence of flips, each spliced incrementally, stays equal to
        // fresh closes of every intermediate database.
        let p = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        let d0 = parse_database("move(a, b).\nmove(b, c).\nmove(c, d).\nmove(d, a).").unwrap();
        let g = ground(&p, &d0, &GroundConfig::default()).unwrap();
        let (mut closer, mut model) = run_close(&g, &p, &d0);
        let mut db = d0.clone();
        for (pred, args) in [
            ("move", ["b", "a"]),
            ("move", ["c", "b"]),
            ("move", ["b", "a"]), // retract again
            ("move", ["a", "c"]),
        ] {
            let fact = GroundAtom::from_texts(pred, &args);
            if !db.remove(&fact) {
                db.insert(fact.clone()).unwrap();
            }
            let atom = g.atoms().id_of(&fact).unwrap();
            let initial = PartialModel::initial(&p, &db, g.atoms());
            let cone = g.forward_cone([atom], []);
            closer.reopen_cone(&mut model, &initial, &cone);
            closer.run(&mut model).expect("no conflict");
            let (_, fresh_model) = run_close(&g, &p, &db);
            assert_eq!(model, fresh_model);
        }
    }

    #[test]
    #[should_panic(expected = "queued events")]
    fn snapshot_of_pending_closer_panics() {
        let (g, p, d) = closed("p :- not q.\nq :- not p.", "");
        let (mut closer, mut m) = run_close(&g, &p, &d);
        let qa = g.atoms().atom_id("q".into(), &[]).unwrap();
        closer.define(&mut m, qa, TruthValue::False);
        let _ = closer.snapshot(); // queue still holds the definition
    }
}
