//! Component-scoped unfounded-set computation over the residual graph.
//!
//! `Closer::largest_unfounded_set` recomputes `Atoms[close(M, G⁺)]` from a
//! full clone of the live deletion state, so interpreters that alternate
//! unfounded rounds (or tie breaks) with `close` pay Θ(|G|) per round —
//! quadratic end-to-end on alternation-heavy instances such as win–move
//! chains. [`UnfoundedEngine`] removes that bottleneck:
//!
//! * it condenses the residual graph **once** (SCCs of the bipartite
//!   atom/rule graph left alive by the first `close`), and
//! * it answers unfounded-set and tie-structure queries **per component**,
//!   touching only the component's members and their incident rules, with
//!   reusable scratch buffers instead of whole-graph clones.
//!
//! The decomposition is exact because every `close` propagation step
//! follows a graph edge (body atom → rule → head), so external
//! assignments inside a component can only affect that component and the
//! components **downstream** of it in the condensation. Processing
//! components in topological order (sources first) therefore never needs
//! to revisit a finished component.
//!
//! **Local unfounded sets.** For a component *C*, the engine simulates the
//! positive fire-cascade of `close(M, G⁺)` restricted to *C*: every alive
//! rule whose head lies in *C* starts with a pending count of its alive
//! positive body atoms *inside C*; rules at zero fire and delete their
//! heads, decrementing dependents. Survivors are unfounded. Positive body
//! atoms outside *C* are always in upstream components (edges point
//! downstream), and upstream components are processed to an empty local
//! unfounded set first, so their alive atoms would fire in the global
//! simulation — counting them as satisfied is exact, not a heuristic.
//! Starting from a closed state no alive atom lacks support and no alive
//! rule has zero pending, so the global simulation never takes the
//! "unsupported" branch either — the fire-cascade is the whole story.

use datalog_ast::Sign;
use signed_graph::{EdgeSign, NodeId, Sccs, SignedDigraph};

use crate::atoms::AtomId;
use crate::close::{Closer, NodeKind};
use crate::graph::RuleId;

/// Sentinel component id for nodes not alive when the engine was built.
const NO_COMP: u32 = u32::MAX;

/// A compressed-sparse-row arena: per-slot `(start, len)` spans into one
/// contiguous data slab. The per-component member tables use this instead
/// of `Vec<Vec<_>>` so that (a) iterating a component touches one cache
/// line run instead of chasing a pointer per component, and (b) cloning
/// the engine for a worker fork is three flat `memcpy`s rather than one
/// allocation per component.
///
/// [`UnfoundedEngine::patch_cone`] keeps arenas valid across incremental
/// patches: retiring a component empties its span (the slab range becomes
/// garbage), re-condensed components append at the slab tail, and the slab
/// is compacted once per patch when garbage dominates — so a session
/// flapping facts forever holds the slab at O(live members).
#[derive(Clone)]
struct CsrArena<T> {
    /// Per slot: `(start, len)` into `data`. Cleared slots are `(0, 0)`.
    spans: Vec<(u32, u32)>,
    data: Vec<T>,
    /// Total length of all live spans (slab minus garbage).
    live: u32,
}

impl<T: Copy> CsrArena<T> {
    /// A counting-sort shell: spans sized from `counts`, slab filled with
    /// `fill`. Returns the arena and the per-slot write cursors for
    /// [`CsrArena::place`].
    fn from_counts(counts: &[u32], fill: T) -> (Self, Vec<u32>) {
        let mut spans = Vec::with_capacity(counts.len());
        let mut start = 0u32;
        for &c in counts {
            spans.push((start, c));
            start += c;
        }
        let cursors: Vec<u32> = spans.iter().map(|&(s, _)| s).collect();
        let arena = CsrArena {
            spans,
            data: vec![fill; start as usize],
            live: start,
        };
        (arena, cursors)
    }

    /// Placement write during a counting-sort build: `item` goes to slot
    /// `c`'s next cursor position.
    fn place(&mut self, cursors: &mut [u32], c: u32, item: T) {
        let at = cursors[c as usize];
        self.data[at as usize] = item;
        cursors[c as usize] = at + 1;
    }

    /// The members of slot `c`.
    fn get(&self, c: u32) -> &[T] {
        let (start, len) = self.spans[c as usize];
        &self.data[start as usize..(start + len) as usize]
    }

    /// Number of slots (live and cleared alike).
    fn slot_count(&self) -> usize {
        self.spans.len()
    }

    /// Grows the span table to cover slot `c`; new slots are empty.
    fn ensure_slot(&mut self, c: u32) {
        if c as usize >= self.spans.len() {
            self.spans.resize(c as usize + 1, (0, 0));
        }
    }

    /// Empties slot `c`; its old slab range becomes garbage until the
    /// next [`CsrArena::compact`].
    fn clear(&mut self, c: u32) {
        let (_, len) = self.spans[c as usize];
        self.live -= len;
        self.spans[c as usize] = (0, 0);
    }

    /// Points slot `c` (which must be empty or cleared) at a fresh span
    /// appended to the slab tail.
    fn set(&mut self, c: u32, items: &[T]) {
        self.clear(c);
        let start = self.data.len() as u32;
        self.data.extend_from_slice(items);
        self.spans[c as usize] = (start, items.len() as u32);
        self.live += items.len() as u32;
    }

    /// Rewrites the slab to live spans only, once garbage dominates (the
    /// `2 × live + 64` bound keeps compaction amortized O(1) per patched
    /// member while still capping the slab at O(live)). Slot contents are
    /// untouched; only their slab positions move.
    fn compact(&mut self) {
        if self.data.len() as u32 <= self.live.saturating_mul(2) + 64 {
            return;
        }
        let mut data = Vec::with_capacity(self.live as usize);
        for span in &mut self.spans {
            let (start, len) = *span;
            let new_start = data.len() as u32;
            data.extend_from_slice(&self.data[start as usize..(start + len) as usize]);
            *span = (new_start, len);
        }
        self.data = data;
    }
}

/// The SCC condensation of a residual graph, with component-scoped
/// unfounded-set and tie-structure queries.
///
/// Build it once after the first `close(M₀, G)`; it stays valid for the
/// rest of the run because deletions only ever shrink components.
///
/// The engine is `Clone` so that parallel schedulers can hand each worker
/// a private copy (the `pending`/`removed`/`queue`/`node_of_atom` fields
/// are per-call scratch and must not be shared across threads).
#[derive(Clone)]
pub struct UnfoundedEngine {
    /// Component of each atom (by [`AtomId`] index); [`NO_COMP`] if the
    /// atom was already defined at build time.
    atom_comp: Vec<u32>,
    /// Component of each rule node; [`NO_COMP`] if dead at build time.
    rule_comp: Vec<u32>,
    /// Member atoms of each component (CSR over one contiguous slab).
    comp_atoms: CsrArena<AtomId>,
    /// Member rule nodes of each component.
    comp_rules: CsrArena<RuleId>,
    /// Alive-at-build rules whose *head* lies in the component (includes
    /// external support rules sitting in upstream components).
    comp_head_rules: CsrArena<RuleId>,
    /// Component ids in topological order of the condensation (sources
    /// first — the processing order).
    order: Vec<u32>,
    /// Branch group of each component: two components share a group iff
    /// they are weakly connected in the condensation DAG. Close
    /// propagation follows graph edges, so groups are *causally
    /// independent* — the unit of parallel scheduling.
    comp_group: Vec<u32>,
    /// Member components of each group, in topological order.
    group_comps: Vec<Vec<u32>>,
    /// Wave depth of each component: its longest-path layer in the
    /// condensation DAG (sources are 0). Every condensation edge strictly
    /// increases depth, so equal-depth components share no path — the
    /// members of one *wave* are causally independent and can be
    /// evaluated on divergent forks (the wave scheduler's dispatch unit).
    comp_depth: Vec<u32>,
    /// Widest wave (largest equal-depth component count) of each branch
    /// group — the group's intra-branch parallelism budget.
    group_width: Vec<u32>,
    /// Component ids retired by earlier [`UnfoundedEngine::patch_cone`]
    /// calls and not yet reassigned, kept sorted descending (allocation
    /// pops the smallest). Bounds the component tables at their peak
    /// live size however long a session churns.
    free_comps: Vec<u32>,
    /// Scratch: per-rule pending⁺ count, valid only for the component
    /// currently being simulated.
    pending: Vec<u32>,
    /// Scratch: atoms deleted by the current simulation.
    removed: Vec<bool>,
    /// Scratch: the fire-cascade worklist.
    queue: Vec<RuleId>,
    /// Scratch: subgraph node of each atom ([`NO_NODE`] outside a call),
    /// valid only for the component whose subgraph is being built.
    node_of_atom: Vec<NodeId>,
}

/// Sentinel for [`UnfoundedEngine::node_of_atom`] entries not in the
/// subgraph under construction.
const NO_NODE: NodeId = NodeId::MAX;

/// What [`UnfoundedEngine::patch_cone`] did to the condensation.
#[derive(Clone, Debug)]
pub struct ConePatch {
    /// Components the cone retired.
    pub retired: usize,
    /// Components the re-condensed cone produced.
    pub added: usize,
    /// The ids assigned to the new components (retired ids are recycled
    /// before fresh ones append). Any branch containing one of these is
    /// *not* the branch an equal-looking id denoted before the patch.
    pub new_components: Vec<u32>,
}

/// The alive induced subgraph of one component, for tie detection.
///
/// Nodes are the component's alive atoms and alive rule nodes, densely
/// renumbered; edges are the surviving internal edges. `external_in`
/// marks nodes that still receive an edge from an alive node *outside*
/// the component — a sub-SCC containing such a node is not a bottom
/// component of the global remaining graph and must not be tie-broken.
pub struct ComponentGraph {
    /// The induced subgraph.
    pub digraph: SignedDigraph,
    /// The atom behind each node, or `None` for rule nodes.
    pub node_atoms: Vec<Option<AtomId>>,
    /// Whether each node has an alive in-edge from outside the component.
    pub external_in: Vec<bool>,
}

impl ComponentGraph {
    /// `true` iff every node of `members` is free of external in-edges.
    pub fn is_globally_bottom(&self, members: &[NodeId]) -> bool {
        members.iter().all(|&n| !self.external_in[n as usize])
    }
}

impl UnfoundedEngine {
    /// Condenses the residual graph of `closer` (everything still alive).
    pub fn build(closer: &Closer<'_>) -> Self {
        let mut span = tiebreak_trace::span("condense", "condense", &[]);
        tiebreak_trace::metrics().condense_runs.inc();
        let graph = closer.graph();
        let rem = closer.remaining_digraph();
        let sccs = Sccs::compute(&rem.digraph);
        let n_comps = sccs.len();

        let mut atom_comp = vec![NO_COMP; graph.atom_count()];
        let mut rule_comp = vec![NO_COMP; graph.rule_count()];
        // Counting-sort the members into CSR arenas: one sizing pass, one
        // placement pass, preserving the node order of `remaining_digraph`
        // (atoms ascending, then rules ascending) within each component.
        let mut atom_counts = vec![0u32; n_comps];
        let mut rule_counts = vec![0u32; n_comps];
        for (node, &kind) in rem.kinds.iter().enumerate() {
            let c = sccs.component_of(node as NodeId) as usize;
            match kind {
                NodeKind::Atom(_) => atom_counts[c] += 1,
                NodeKind::Rule(_) => rule_counts[c] += 1,
            }
        }
        let (mut comp_atoms, mut atom_cursors) = CsrArena::from_counts(&atom_counts, AtomId(0));
        let (mut comp_rules, mut rule_cursors) = CsrArena::from_counts(&rule_counts, RuleId(0));
        for (node, &kind) in rem.kinds.iter().enumerate() {
            let c = sccs.component_of(node as NodeId);
            match kind {
                NodeKind::Atom(a) => {
                    atom_comp[a.index()] = c;
                    comp_atoms.place(&mut atom_cursors, c, a);
                }
                NodeKind::Rule(r) => {
                    rule_comp[r.index()] = c;
                    comp_rules.place(&mut rule_cursors, c, r);
                }
            }
        }

        let mut head_counts = vec![0u32; n_comps];
        for (i, rule) in graph.rules().iter().enumerate() {
            if closer.rule_alive(RuleId(i as u32)) {
                let head_comp = atom_comp[rule.head.index()];
                if head_comp != NO_COMP {
                    head_counts[head_comp as usize] += 1;
                }
            }
        }
        let (mut comp_head_rules, mut head_cursors) =
            CsrArena::from_counts(&head_counts, RuleId(0));
        for (i, rule) in graph.rules().iter().enumerate() {
            let r = RuleId(i as u32);
            if !closer.rule_alive(r) {
                continue;
            }
            let head_comp = atom_comp[rule.head.index()];
            if head_comp != NO_COMP {
                comp_head_rules.place(&mut head_cursors, head_comp, r);
            }
        }

        let order: Vec<u32> = sccs.topological_order().collect();
        let mut engine = UnfoundedEngine {
            atom_comp,
            rule_comp,
            comp_atoms,
            comp_rules,
            comp_head_rules,
            order,
            comp_group: Vec::new(),
            group_comps: Vec::new(),
            comp_depth: Vec::new(),
            group_width: Vec::new(),
            free_comps: Vec::new(),
            pending: vec![0; graph.rule_count()],
            removed: vec![false; graph.atom_count()],
            queue: Vec::new(),
            node_of_atom: vec![NO_NODE; graph.atom_count()],
        };
        // Branch groups (weak connectivity of the condensation): the one
        // implementation shared with the cone patch, so group numbering
        // can never drift between a fresh build and a patched engine.
        engine.rebuild_groups(closer);
        span.arg("components", engine.component_count() as u64);
        engine
    }

    /// Component ids in topological order (sources first): the order in
    /// which components must be processed.
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Number of live components in the condensation. (After a
    /// [`UnfoundedEngine::patch_cone`], retired component ids leave holes
    /// in the internal tables; the processing order lists exactly the
    /// live ones.)
    pub fn component_count(&self) -> usize {
        self.order.len()
    }

    /// Splices a mutated cone into the condensation after an incremental
    /// re-close: every component intersecting the cone is retired (an SCC
    /// through a cone node lies wholly inside the cone — the cone is
    /// forward-closed, so the whole cycle is reachable from that node),
    /// the alive cone remnant is re-condensed, and the new components are
    /// appended to the topological order with **fresh ids** — untouched
    /// components keep their ids, membership lists, and position, so
    /// their prepared state stays valid verbatim.
    ///
    /// Appending is topologically correct because every edge between the
    /// cone and the rest points *into* the cone (nothing inside is
    /// forward-reachable from outside-bound edges — again forward
    /// closure), so new components have no successors among the retained
    /// ones.
    ///
    /// Branch groups (weak connectivity) are rebuilt over the resulting
    /// component set — a cone change can merge or split groups — with
    /// ids renumbered by first appearance in topological order, exactly
    /// as [`UnfoundedEngine::build`] numbers them; callers that cache
    /// per-branch state carry it over by comparing member lists (see the
    /// runtime session); retired ids are recycled, so a bare list
    /// comparison could alias a re-condensed component onto a stale
    /// cache entry — exclude everything in
    /// [`ConePatch::new_components`].
    pub fn patch_cone(&mut self, closer: &Closer<'_>, cone: &crate::graph::Cone) -> ConePatch {
        let _span = tiebreak_trace::span(
            "condense",
            "patch_cone",
            &[
                ("cone_atoms", cone.atoms.len() as u64),
                ("cone_rules", cone.rules.len() as u64),
            ],
        );
        tiebreak_trace::metrics().cones_patched.inc();
        let graph = closer.graph();
        // The graph may have grown since the engine was built.
        self.atom_comp.resize(graph.atom_count(), NO_COMP);
        self.rule_comp.resize(graph.rule_count(), NO_COMP);
        self.pending.resize(graph.rule_count(), 0);
        self.removed.resize(graph.atom_count(), false);
        self.node_of_atom.resize(graph.atom_count(), NO_NODE);

        // Retire every component the cone touches.
        let mut retired: Vec<u32> = Vec::new();
        let mut is_retired = vec![false; self.comp_atoms.slot_count()];
        let retire = |c: u32, is_retired: &mut Vec<bool>, retired: &mut Vec<u32>| {
            if c != NO_COMP && !is_retired[c as usize] {
                is_retired[c as usize] = true;
                retired.push(c);
            }
        };
        for &a in &cone.atoms {
            retire(self.atom_comp[a.index()], &mut is_retired, &mut retired);
            self.atom_comp[a.index()] = NO_COMP;
        }
        for &r in &cone.rules {
            retire(self.rule_comp[r.index()], &mut is_retired, &mut retired);
            self.rule_comp[r.index()] = NO_COMP;
        }
        for &c in &retired {
            self.comp_atoms.clear(c);
            self.comp_rules.clear(c);
            self.comp_head_rules.clear(c);
        }

        // Re-condense the alive cone remnant. Edges to alive atoms
        // outside the cone are boundary context, not subgraph edges.
        // Nodes are laid out in ascending id order — atoms first, rules
        // after — exactly like [`Closer::remaining_digraph`] lays out a
        // fresh build, so the per-component member lists (and with them
        // every tie partition's spanning-tree root) come out identical
        // to a from-scratch condensation.
        let mut cone_atoms = cone.atoms.clone();
        cone_atoms.sort_unstable();
        let mut cone_rules = cone.rules.clone();
        cone_rules.sort_unstable();
        let mut node_kinds: Vec<NodeKind> = Vec::new();
        for &a in &cone_atoms {
            if closer.atom_alive(a) {
                self.node_of_atom[a.index()] = node_kinds.len() as NodeId;
                node_kinds.push(NodeKind::Atom(a));
            }
        }
        let mut rule_node: Vec<NodeId> = vec![NO_NODE; cone_rules.len()];
        for (i, &r) in cone_rules.iter().enumerate() {
            if closer.rule_alive(r) {
                rule_node[i] = node_kinds.len() as NodeId;
                node_kinds.push(NodeKind::Rule(r));
            }
        }
        let mut digraph = SignedDigraph::new(node_kinds.len());
        for (i, &r) in cone_rules.iter().enumerate() {
            let rn = rule_node[i];
            if rn == NO_NODE {
                continue;
            }
            let rule = graph.rule(r);
            let hn = self.node_of_atom[rule.head.index()];
            if hn != NO_NODE && cone.atom_in[rule.head.index()] {
                digraph.add_edge(rn, hn, EdgeSign::Pos);
            }
            for &(a, s) in &rule.body {
                if !cone.atom_in[a.index()] {
                    continue;
                }
                let an = self.node_of_atom[a.index()];
                if an != NO_NODE {
                    let sign = match s {
                        Sign::Pos => EdgeSign::Pos,
                        Sign::Neg => EdgeSign::Neg,
                    };
                    digraph.add_edge(an, rn, sign);
                }
            }
        }
        let sccs = Sccs::compute(&digraph);
        let added = sccs.len();
        // Ids for the new components, in topological order of the cone
        // sub-condensation: slots retired by this or any earlier patch
        // are reused first (so a long-lived session flapping facts does
        // not grow the component tables without bound), then fresh ids
        // append. The free list is drained smallest-first for
        // determinism.
        self.free_comps.extend(retired.iter().copied());
        self.free_comps.sort_unstable_by(|a, b| b.cmp(a));
        self.free_comps.dedup();
        let new_ids: Vec<u32> = (0..added)
            .map(|_| {
                self.free_comps.pop().unwrap_or_else(|| {
                    let id = self.comp_atoms.slot_count() as u32;
                    self.comp_atoms.ensure_slot(id);
                    self.comp_rules.ensure_slot(id);
                    self.comp_head_rules.ensure_slot(id);
                    id
                })
            })
            .collect();
        let mut rank_of_sub = vec![u32::MAX; added];
        for (rank, c) in sccs.topological_order().enumerate() {
            rank_of_sub[c as usize] = rank as u32;
        }
        // Buffer the new members per component (same push order as
        // before: node_kinds order for members, cone_atoms order for head
        // rules), then splice each buffer into the arenas as one span.
        let mut new_atoms: Vec<Vec<AtomId>> = vec![Vec::new(); added];
        let mut new_rules: Vec<Vec<RuleId>> = vec![Vec::new(); added];
        for (node, &kind) in node_kinds.iter().enumerate() {
            let rank = rank_of_sub[sccs.component_of(node as NodeId) as usize] as usize;
            let c = new_ids[rank];
            match kind {
                NodeKind::Atom(a) => {
                    self.atom_comp[a.index()] = c;
                    new_atoms[rank].push(a);
                }
                NodeKind::Rule(r) => {
                    self.rule_comp[r.index()] = c;
                    new_rules[rank].push(r);
                }
            }
        }
        let mut rank_of_comp = vec![usize::MAX; self.comp_atoms.slot_count()];
        for (rank, &c) in new_ids.iter().enumerate() {
            rank_of_comp[c as usize] = rank;
        }
        let mut new_heads: Vec<Vec<RuleId>> = vec![Vec::new(); added];
        for &a in &cone_atoms {
            self.node_of_atom[a.index()] = NO_NODE; // reset scratch
            if !closer.atom_alive(a) {
                continue;
            }
            let rank = rank_of_comp[self.atom_comp[a.index()] as usize];
            for &r in graph.heads_of(a) {
                if closer.rule_alive(r) {
                    new_heads[rank].push(r);
                }
            }
        }
        for (rank, &c) in new_ids.iter().enumerate() {
            self.comp_atoms.set(c, &new_atoms[rank]);
            self.comp_rules.set(c, &new_rules[rank]);
            self.comp_head_rules.set(c, &new_heads[rank]);
        }
        self.comp_atoms.compact();
        self.comp_rules.compact();
        self.comp_head_rules.compact();

        // New order: retained components in place, cone components after
        // (their in-edges all come from retained components or from
        // earlier cone components), in cone-topological order.
        self.order.retain(|&c| !is_retired[c as usize]);
        self.order.extend(new_ids.iter().copied());

        self.rebuild_groups(closer);
        ConePatch {
            retired: retired.len(),
            added,
            new_components: new_ids,
        }
    }

    /// Recomputes branch groups (weak connectivity of the condensation)
    /// from the current component assignment and aliveness, numbering
    /// groups by first appearance in topological order — the same
    /// numbering rule as [`UnfoundedEngine::build`].
    fn rebuild_groups(&mut self, closer: &Closer<'_>) {
        let graph = closer.graph();
        let n_comps = self.comp_atoms.slot_count();
        let mut uf: Vec<u32> = (0..n_comps as u32).collect();
        fn find(uf: &mut [u32], mut x: u32) -> u32 {
            while uf[x as usize] != x {
                uf[x as usize] = uf[uf[x as usize] as usize];
                x = uf[x as usize];
            }
            x
        }
        for (i, rule) in graph.rules().iter().enumerate() {
            let cr = self.rule_comp[i];
            if cr == NO_COMP || !closer.rule_alive(RuleId(i as u32)) {
                continue;
            }
            let link = |ca: u32, uf: &mut Vec<u32>| {
                if ca != NO_COMP && ca != cr {
                    let (ra, rr) = (find(uf, ca), find(uf, cr));
                    if ra != rr {
                        uf[ra as usize] = rr;
                    }
                }
            };
            if closer.atom_alive(rule.head) {
                link(self.atom_comp[rule.head.index()], &mut uf);
            }
            for &(a, _) in &rule.body {
                if closer.atom_alive(a) {
                    link(self.atom_comp[a.index()], &mut uf);
                }
            }
        }
        self.comp_group = vec![u32::MAX; n_comps];
        let mut group_of_root: Vec<u32> = vec![u32::MAX; n_comps];
        self.group_comps = Vec::new();
        for i in 0..self.order.len() {
            let c = self.order[i];
            let root = find(&mut uf, c);
            let g = if group_of_root[root as usize] == u32::MAX {
                let g = self.group_comps.len() as u32;
                group_of_root[root as usize] = g;
                self.group_comps.push(Vec::new());
                g
            } else {
                group_of_root[root as usize]
            };
            self.comp_group[c as usize] = g;
            self.group_comps[g as usize].push(c);
        }
        self.rebuild_depths(closer);
    }

    /// Recomputes wave depths and per-group wave widths from the current
    /// component assignment and aliveness, in one pass over the
    /// topological order. A component's in-edges are exactly (a) its
    /// alive head rules sitting in another component (external support)
    /// and (b) the out-of-component alive positive/negative body atoms of
    /// its member rules — both derived from the bipartite edges `close`
    /// propagates along, so the depth layering is faithful to the
    /// condensation DAG the scheduler walks.
    fn rebuild_depths(&mut self, closer: &Closer<'_>) {
        let graph = closer.graph();
        self.comp_depth = vec![0; self.comp_atoms.slot_count()];
        for i in 0..self.order.len() {
            let c = self.order[i];
            let mut depth = 0u32;
            for &r in self.comp_head_rules.get(c) {
                if !closer.rule_alive(r) {
                    continue;
                }
                let rc = self.rule_comp[r.index()];
                if rc != NO_COMP && rc != c {
                    depth = depth.max(self.comp_depth[rc as usize] + 1);
                }
            }
            for &r in self.comp_rules.get(c) {
                if !closer.rule_alive(r) {
                    continue;
                }
                for &(a, _) in &graph.rule(r).body {
                    if !closer.atom_alive(a) {
                        continue;
                    }
                    let ac = self.atom_comp[a.index()];
                    if ac != NO_COMP && ac != c {
                        depth = depth.max(self.comp_depth[ac as usize] + 1);
                    }
                }
            }
            self.comp_depth[c as usize] = depth;
        }
        let mut depths: Vec<u32> = Vec::new();
        self.group_width = Vec::with_capacity(self.group_comps.len());
        for comps in &self.group_comps {
            depths.clear();
            for &c in comps {
                depths.push(self.comp_depth[c as usize]);
            }
            depths.sort_unstable();
            let mut widest = 0u32;
            let mut run = 0u32;
            let mut prev = u32::MAX;
            for &d in &depths {
                if d == prev {
                    run += 1;
                } else {
                    prev = d;
                    run = 1;
                }
                widest = widest.max(run);
            }
            self.group_width.push(widest);
        }
    }

    /// Number of branch groups (weakly connected families of components).
    /// Groups share no graph edges, so `close` propagation never crosses
    /// a group boundary: they can be evaluated concurrently and merged in
    /// any order.
    pub fn group_count(&self) -> usize {
        self.group_comps.len()
    }

    /// The branch group of component `c`.
    pub fn group_of_component(&self, c: u32) -> u32 {
        self.comp_group[c as usize]
    }

    /// The components of group `g`, in topological order of the
    /// condensation (sources first — the required processing order).
    pub fn group_components(&self, g: u32) -> &[u32] {
        &self.group_comps[g as usize]
    }

    /// The member atoms of component `c` (aliveness as of build time).
    pub fn component_atoms(&self, c: u32) -> &[AtomId] {
        self.comp_atoms.get(c)
    }

    /// Wave depth of component `c`: its longest-path layer in the
    /// condensation DAG (sources are 0). Equal-depth components of one
    /// branch share no path and are therefore causally independent.
    pub fn component_depth(&self, c: u32) -> u32 {
        self.comp_depth[c as usize]
    }

    /// The widest wave (largest number of equal-depth components) of
    /// branch group `g` — how many workers an intra-branch wave of this
    /// group can keep busy at once.
    pub fn group_wave_width(&self, g: u32) -> usize {
        self.group_width[g as usize] as usize
    }

    /// The widest wave over all branch groups: the exploitable
    /// parallelism of the prepared state when branch-level scheduling
    /// alone cannot split the work.
    pub fn widest_wave(&self) -> usize {
        self.group_width.iter().copied().max().unwrap_or(0) as usize
    }

    /// The component of `atom`, if it was alive at build time.
    pub fn component_of_atom(&self, atom: AtomId) -> Option<u32> {
        match self.atom_comp[atom.index()] {
            NO_COMP => None,
            c => Some(c),
        }
    }

    /// `true` iff component `c` still contains an alive (undefined) atom.
    pub fn has_alive_atoms(&self, closer: &Closer<'_>, c: u32) -> bool {
        self.comp_atoms.get(c).iter().any(|&a| closer.atom_alive(a))
    }

    /// The unfounded subset of component `c` at the current state of
    /// `closer`: the alive atoms of `c` not reachable by the positive
    /// fire-cascade restricted to `c` (see the module docs for why this
    /// matches the global `Atoms[close(M, G⁺)] ∩ c` when components are
    /// processed in topological order).
    ///
    /// Cost: O(|c| + incident rules), independent of the graph size.
    pub fn local_unfounded(&mut self, closer: &Closer<'_>, c: u32) -> Vec<AtomId> {
        let graph = closer.graph();
        debug_assert!(self.queue.is_empty());

        for &r in self.comp_head_rules.get(c) {
            if !closer.rule_alive(r) {
                continue;
            }
            let rule = graph.rule(r);
            if !closer.atom_alive(rule.head) {
                continue;
            }
            let p = rule
                .body
                .iter()
                .filter(|&&(a, s)| {
                    s.is_pos() && closer.atom_alive(a) && self.atom_comp[a.index()] == c
                })
                .count() as u32;
            self.pending[r.index()] = p;
            if p == 0 {
                self.queue.push(r);
            }
        }

        while let Some(r) = self.queue.pop() {
            let head = graph.rule(r).head;
            if self.removed[head.index()] {
                continue;
            }
            self.removed[head.index()] = true;
            for &(r2, s) in graph.uses_of(head) {
                if s != Sign::Pos || !closer.rule_alive(r2) {
                    continue;
                }
                let h2 = graph.rule(r2).head;
                // Only rules initialized above participate: alive, head
                // alive, head in this component.
                if self.atom_comp[h2.index()] != c || !closer.atom_alive(h2) {
                    continue;
                }
                let p = &mut self.pending[r2.index()];
                if *p > 0 {
                    *p -= 1;
                    if *p == 0 {
                        self.queue.push(r2);
                    }
                }
            }
        }

        let mut unfounded = Vec::new();
        for &a in self.comp_atoms.get(c) {
            if closer.atom_alive(a) && !self.removed[a.index()] {
                unfounded.push(a);
            }
            self.removed[a.index()] = false; // reset scratch for reuse
        }
        unfounded
    }

    /// The alive induced subgraph of component `c`, with external-inflow
    /// markers (see [`ComponentGraph`]). Used for per-component tie
    /// detection: the sub-SCCs of this graph are exactly the SCCs of the
    /// global remaining graph that descend from `c`.
    pub fn alive_subgraph(&mut self, closer: &Closer<'_>, c: u32) -> ComponentGraph {
        let graph = closer.graph();
        let atoms = self.comp_atoms.get(c);
        let rules = self.comp_rules.get(c);

        // Dense renumbering: alive atoms first (indexed through the
        // graph-sized `node_of_atom` scratch, reset on exit), then alive
        // rule nodes.
        let mut node_atoms: Vec<Option<AtomId>> = Vec::new();
        let mut external_in: Vec<bool> = Vec::new();
        let mut rule_node: Vec<Option<NodeId>> = vec![None; rules.len()];

        for &a in atoms {
            if !closer.atom_alive(a) {
                continue;
            }
            self.node_of_atom[a.index()] = node_atoms.len() as NodeId;
            node_atoms.push(Some(a));
            // An alive rule head-feeding `a` from another component (e.g.
            // an external support rule, or a member of a stuck upstream
            // component) keeps `a` out of every global bottom component.
            external_in.push(
                graph
                    .heads_of(a)
                    .iter()
                    .any(|&r| closer.rule_alive(r) && self.rule_comp[r.index()] != c),
            );
        }
        for (i, &r) in rules.iter().enumerate() {
            if !closer.rule_alive(r) {
                continue;
            }
            rule_node[i] = Some(node_atoms.len() as NodeId);
            node_atoms.push(None);
            external_in.push(
                graph
                    .rule(r)
                    .body
                    .iter()
                    .any(|&(a, _)| closer.atom_alive(a) && self.atom_comp[a.index()] != c),
            );
        }

        let mut digraph = SignedDigraph::new(node_atoms.len());
        for (i, &r) in rules.iter().enumerate() {
            let Some(rn) = rule_node[i] else { continue };
            let rule = graph.rule(r);
            let hn = self.node_of_atom[rule.head.index()];
            if hn != NO_NODE {
                digraph.add_edge(rn, hn, EdgeSign::Pos);
            }
            for &(a, s) in &rule.body {
                let an = self.node_of_atom[a.index()];
                if an != NO_NODE {
                    let sign = match s {
                        Sign::Pos => EdgeSign::Pos,
                        Sign::Neg => EdgeSign::Neg,
                    };
                    digraph.add_edge(an, rn, sign);
                }
            }
        }

        for &a in atoms {
            self.node_of_atom[a.index()] = NO_NODE; // reset scratch
        }

        ComponentGraph {
            digraph,
            node_atoms,
            external_in,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grounder::{ground, GroundConfig};
    use crate::model::PartialModel;
    use crate::model::TruthValue;
    use datalog_ast::{parse_database, parse_program, GroundAtom};

    fn closed(
        program_src: &str,
        db_src: &str,
    ) -> (
        crate::graph::GroundGraph,
        datalog_ast::Program,
        datalog_ast::Database,
    ) {
        let p = parse_program(program_src).unwrap();
        let d = parse_database(db_src).unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        (g, p, d)
    }

    fn run_close<'g>(
        g: &'g crate::graph::GroundGraph,
        p: &datalog_ast::Program,
        d: &datalog_ast::Database,
    ) -> (Closer<'g>, PartialModel) {
        let mut m = PartialModel::initial(p, d, g.atoms());
        let mut closer = Closer::new(g);
        closer.bootstrap(&m);
        closer.run(&mut m).expect("no conflict");
        (closer, m)
    }

    fn atom(g: &crate::graph::GroundGraph, name: &str) -> AtomId {
        g.atoms()
            .id_of(&GroundAtom::from_texts(name, &[]))
            .expect("atom exists")
    }

    /// The union of local unfounded sets over the topological order, with
    /// falsification between components, equals the global fixpoint of
    /// repeated `largest_unfounded_set` rounds.
    fn stratified_wf_falsified(src: &str) -> Vec<String> {
        let (g, p, d) = closed(src, "");
        let (mut closer, mut m) = run_close(&g, &p, &d);
        let mut engine = UnfoundedEngine::build(&closer);
        let mut all: Vec<AtomId> = Vec::new();
        for c in engine.order().to_vec() {
            loop {
                let u = engine.local_unfounded(&closer, c);
                if u.is_empty() {
                    break;
                }
                for &a in &u {
                    closer.define(&mut m, a, TruthValue::False);
                }
                closer.run(&mut m).unwrap();
                all.extend(u);
            }
        }
        let mut names: Vec<String> = all
            .iter()
            .map(|&a| g.atoms().decode(a).to_string())
            .collect();
        names.sort();
        names
    }

    #[test]
    fn positive_loop_is_locally_unfounded() {
        let (g, p, d) = closed("p :- q.\nq :- p.", "");
        let (closer, _) = run_close(&g, &p, &d);
        let mut engine = UnfoundedEngine::build(&closer);
        let c = engine.component_of_atom(atom(&g, "p")).unwrap();
        assert_eq!(c, engine.component_of_atom(atom(&g, "q")).unwrap());
        let mut u = engine.local_unfounded(&closer, c);
        u.sort();
        let mut expect = closer.largest_unfounded_set();
        expect.sort();
        assert_eq!(u, expect);
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn externally_supported_loop_is_not_unfounded() {
        // The loop {p} has support from `p :- not x`; x is upstream and
        // still alive, so p must not be reported unfounded.
        let (g, p, d) = closed("p :- p.\np :- not x.\nx :- not x.", "");
        let (closer, _) = run_close(&g, &p, &d);
        let mut engine = UnfoundedEngine::build(&closer);
        let c = engine.component_of_atom(atom(&g, "p")).unwrap();
        assert!(engine.local_unfounded(&closer, c).is_empty());
        assert!(closer.largest_unfounded_set().is_empty());
    }

    #[test]
    fn guarded_pairs_match_global_unfounded_fixpoint() {
        let src = "p :- p, not q.\nq :- q, not p.\na :- a, not b.\nb :- b, not a.";
        assert_eq!(stratified_wf_falsified(src), vec!["a", "b", "p", "q"]);
    }

    #[test]
    fn chained_unfounded_rounds_resolve_in_one_pass() {
        // a0 unfounded → b0 true → a1 true → b1 false → a2 unfounded → …
        // The global algorithm needs Θ(n) rounds; the engine resolves the
        // chain in one topological pass.
        let mut src = String::from("a0 :- a0.\nb0 :- not a0.\n");
        for i in 1..6 {
            src.push_str(&format!(
                "a{i} :- a{i}.\na{i} :- b{}.\nb{i} :- not a{i}.\n",
                i - 1
            ));
        }
        let falsified = stratified_wf_falsified(&src);
        // Exactly the even-index loop atoms are unfounded (odd ones become
        // true through the b-chain).
        assert_eq!(falsified, vec!["a0", "a2", "a4"]);
    }

    #[test]
    fn subgraph_marks_external_inflow() {
        // {p, q} is a tie but fed by the stuck odd loop via `p :- x`.
        let (g, p, d) = closed("p :- not q.\nq :- not p.\np :- x.\nx :- not x.", "");
        let (closer, _) = run_close(&g, &p, &d);
        let mut engine = UnfoundedEngine::build(&closer);
        let c = engine.component_of_atom(atom(&g, "p")).unwrap();
        let sub = engine.alive_subgraph(&closer, c);
        // p (fed by the alive rule `p :- x` from outside) carries the
        // external-in mark; q does not.
        let pn = sub
            .node_atoms
            .iter()
            .position(|&a| a == Some(atom(&g, "p")))
            .unwrap();
        let qn = sub
            .node_atoms
            .iter()
            .position(|&a| a == Some(atom(&g, "q")))
            .unwrap();
        assert!(sub.external_in[pn]);
        assert!(!sub.external_in[qn]);
        assert!(!sub.is_globally_bottom(&[pn as NodeId, qn as NodeId]));
    }

    #[test]
    fn subgraph_of_isolated_tie_is_bottom() {
        let (g, p, d) = closed("p :- not q.\nq :- not p.", "");
        let (closer, _) = run_close(&g, &p, &d);
        let mut engine = UnfoundedEngine::build(&closer);
        let c = engine.component_of_atom(atom(&g, "p")).unwrap();
        let sub = engine.alive_subgraph(&closer, c);
        assert_eq!(sub.digraph.node_count(), 4); // 2 atoms + 2 rules
        let all: Vec<NodeId> = (0..4).collect();
        assert!(sub.is_globally_bottom(&all));
        let sccs = Sccs::compute(&sub.digraph);
        assert_eq!(sccs.len(), 1);
    }

    #[test]
    fn branch_groups_split_exactly_at_weak_connectivity() {
        // Two independent ties + a dependent chain hanging off the first:
        // {p, q} and {r} are one group (r depends on p); {a, b} another.
        let (g, p, d) = closed(
            "p :- not q.\nq :- not p.\nr :- not p, not r.\na :- not b.\nb :- not a.",
            "",
        );
        let (closer, _) = run_close(&g, &p, &d);
        let engine = UnfoundedEngine::build(&closer);
        assert_eq!(engine.group_count(), 2);
        let gp = engine.group_of_component(engine.component_of_atom(atom(&g, "p")).unwrap());
        let gr = engine.group_of_component(engine.component_of_atom(atom(&g, "r")).unwrap());
        let ga = engine.group_of_component(engine.component_of_atom(atom(&g, "a")).unwrap());
        assert_eq!(gp, gr, "dependent component joins its upstream's group");
        assert_ne!(gp, ga, "independent branches split");
        // Group-internal component order is topological: p's tie precedes
        // the r component that depends on it.
        let comps = engine.group_components(gp);
        let cp = engine.component_of_atom(atom(&g, "p")).unwrap();
        let cr = engine.component_of_atom(atom(&g, "r")).unwrap();
        let pos = |c: u32| comps.iter().position(|&x| x == c).unwrap();
        assert!(pos(cp) < pos(cr));
        // Every component belongs to exactly one group.
        let total: usize = (0..engine.group_count())
            .map(|g| engine.group_components(g as u32).len())
            .sum();
        assert_eq!(total, engine.component_count());
    }

    /// Flip one fact, splice the cone through close + engine, and check
    /// the patched condensation against a freshly built engine on the
    /// same (mutated) state: identical component partition, identical
    /// group partition, topologically valid order.
    fn assert_patch_matches_fresh(program_src: &str, db_src: &str, flip: (&str, &[&str])) {
        let p = parse_program(program_src).unwrap();
        let d = parse_database(db_src).unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        let (mut closer, mut model) = run_close(&g, &p, &d);
        let mut engine = UnfoundedEngine::build(&closer);

        let fact = datalog_ast::GroundAtom::from_texts(flip.0, flip.1);
        let id = g.atoms().id_of(&fact).expect("fact in atom space");
        let mut d2 = d.clone();
        if !d2.remove(&fact) {
            d2.insert(fact).unwrap();
        }
        let initial = PartialModel::initial(&p, &d2, g.atoms());
        let cone = g.forward_cone([id], []);
        closer.reopen_cone(&mut model, &initial, &cone);
        closer.run(&mut model).unwrap();
        engine.patch_cone(&closer, &cone);

        let fresh = UnfoundedEngine::build(&closer);
        assert_eq!(engine.component_count(), fresh.component_count());
        assert_eq!(engine.group_count(), fresh.group_count());
        // Same partition: two alive atoms share a patched component iff
        // they share a fresh one, ditto groups.
        let alive: Vec<AtomId> = closer.alive_atoms().collect();
        for &a in &alive {
            for &b in &alive {
                assert_eq!(
                    engine.component_of_atom(a) == engine.component_of_atom(b),
                    fresh.component_of_atom(a) == fresh.component_of_atom(b),
                    "component partition differs at ({}, {})",
                    g.atoms().decode(a),
                    g.atoms().decode(b)
                );
                let pg = |e: &UnfoundedEngine, x: AtomId| {
                    e.component_of_atom(x).map(|c| e.group_of_component(c))
                };
                assert_eq!(
                    pg(&engine, a) == pg(&engine, b),
                    pg(&fresh, a) == pg(&fresh, b),
                    "group partition differs"
                );
            }
        }
        // Defined atoms carry no component.
        for id in g.atoms().ids() {
            if !closer.atom_alive(id) {
                assert_eq!(engine.component_of_atom(id), None);
            }
        }
        // The patched order is a topological order: walking it with
        // unfounded falsification must reach the same fixpoint as the
        // fresh engine (exactness of downstream evaluation).
        let run_wf = |eng: &mut UnfoundedEngine, closer: &Closer<'_>, model: &PartialModel| {
            let mut c = closer.clone();
            let mut m = model.clone();
            for comp in eng.order().to_vec() {
                loop {
                    let u = eng.local_unfounded(&c, comp);
                    if u.is_empty() {
                        break;
                    }
                    for &a in &u {
                        c.define(&mut m, a, TruthValue::False);
                    }
                    c.run(&mut m).unwrap();
                }
            }
            m
        };
        let mut fresh = fresh;
        assert_eq!(
            run_wf(&mut engine, &closer, &model),
            run_wf(&mut fresh, &closer, &model),
            "wf fixpoint differs between patched and fresh engines"
        );
    }

    #[test]
    fn patched_condensation_matches_fresh_build() {
        // A chain of pockets: mutating the source pocket's edge touches a
        // small cone; downstream components must keep their identity.
        assert_patch_matches_fresh(
            "win(X) :- move(X, Y), not win(Y).",
            "move(a, b).\nmove(b, a).\nmove(c, d).\nmove(d, c).\nmove(a, c).",
            ("move", &["b", "a"]),
        );
        // Guarded positive loops + an independent tie.
        assert_patch_matches_fresh(
            "p :- p, not q, e.\nq :- q, not p.\na :- not b.\nb :- not a.",
            "e.",
            ("e", &[]),
        );
        // Unfounded chain: mutation revives upstream support.
        assert_patch_matches_fresh(
            "a0 :- a0.\na0 :- g.\nb0 :- not a0.\na1 :- a1.\na1 :- b0.\nb1 :- not a1.",
            "g.",
            ("g", &[]),
        );
    }

    #[test]
    fn patch_merges_and_splits_branch_groups() {
        // Two pockets bridged by a rule guarded on e: with e the groups
        // merge, without it they split — the patch must track both ways.
        let p = parse_program(
            "p :- not q.\nq :- not p.\na :- not b.\nb :- not a.\nr :- not p, not a, e.",
        )
        .unwrap();
        let d = parse_database("e.").unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        let (mut closer, mut model) = run_close(&g, &p, &d);
        let mut engine = UnfoundedEngine::build(&closer);
        assert_eq!(engine.group_count(), 1, "bridge rule merges the pockets");

        let e = g
            .atoms()
            .id_of(&datalog_ast::GroundAtom::from_texts("e", &[]))
            .unwrap();
        let d2 = datalog_ast::Database::new();
        let initial = PartialModel::initial(&p, &d2, g.atoms());
        let cone = g.forward_cone([e], []);
        closer.reopen_cone(&mut model, &initial, &cone);
        closer.run(&mut model).unwrap();
        engine.patch_cone(&closer, &cone);
        assert_eq!(engine.group_count(), 2, "retraction splits the groups");
        assert_eq!(
            engine.group_count(),
            UnfoundedEngine::build(&closer).group_count()
        );
    }

    #[test]
    fn repeated_patches_recycle_component_slots() {
        // Flapping one fact forever must not grow the component tables:
        // retired ids are recycled before fresh ones append.
        let p = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        let d0 = parse_database("move(a, b).\nmove(b, a).\nmove(c, d).\nmove(d, c).").unwrap();
        let g = ground(&p, &d0, &GroundConfig::default()).unwrap();
        let (mut closer, mut model) = run_close(&g, &p, &d0);
        let mut engine = UnfoundedEngine::build(&closer);
        let fact = datalog_ast::GroundAtom::from_texts("move", &["b", "a"]);
        let id = g.atoms().id_of(&fact).unwrap();

        let mut db = d0.clone();
        let mut table_sizes = Vec::new();
        for _ in 0..6 {
            for _ in 0..2 {
                if !db.remove(&fact) {
                    db.insert(fact.clone()).unwrap();
                }
                let initial = PartialModel::initial(&p, &db, g.atoms());
                let cone = g.forward_cone([id], []);
                closer.reopen_cone(&mut model, &initial, &cone);
                closer.run(&mut model).unwrap();
                let patch = engine.patch_cone(&closer, &cone);
                // Recycled ids are reported as newly assigned.
                for c in &patch.new_components {
                    assert!(engine.order().contains(c));
                }
                // The CSR slab never holds more than the compaction
                // bound's worth of garbage, however long the churn runs.
                assert!(
                    engine.comp_atoms.data.len() as u32
                        <= engine.comp_atoms.live.saturating_mul(2) + 64,
                    "atom slab outgrew the compaction bound"
                );
            }
            table_sizes.push(engine.comp_atoms.slot_count());
            // Steady state: same live partition as a fresh build.
            assert_eq!(
                engine.component_count(),
                UnfoundedEngine::build(&closer).component_count()
            );
        }
        assert!(
            table_sizes.windows(2).all(|w| w[0] == w[1]),
            "component tables grew under flapping: {table_sizes:?}"
        );
    }

    #[test]
    fn wave_depths_layer_the_condensation() {
        // Two independent ties at depth 0 feed a stuck loop through one
        // rule each: the stuck loop sits at depth 1, the ties form one
        // two-wide wave, and the whole thing is a single branch group.
        let (g, p, d) = closed(
            "a :- not b.\nb :- not a.\nc :- not d.\nd :- not c.\ne :- not a, not c, not e.",
            "",
        );
        let (closer, _) = run_close(&g, &p, &d);
        let engine = UnfoundedEngine::build(&closer);
        let ca = engine.component_of_atom(atom(&g, "a")).unwrap();
        let cc = engine.component_of_atom(atom(&g, "c")).unwrap();
        let ce = engine.component_of_atom(atom(&g, "e")).unwrap();
        assert_eq!(engine.component_depth(ca), 0);
        assert_eq!(engine.component_depth(cc), 0);
        assert_eq!(engine.component_depth(ce), 1);
        assert_eq!(engine.group_count(), 1);
        assert_eq!(engine.group_wave_width(0), 2);
        assert_eq!(engine.widest_wave(), 2);
        // Edges strictly increase depth, so a depth layering is always a
        // topological layering of the processing order.
        let pos = |c: u32| engine.order().iter().position(|&x| x == c).unwrap();
        assert!(pos(ca) < pos(ce) && pos(cc) < pos(ce));
    }

    #[test]
    fn patched_engine_keeps_wave_depths_fresh() {
        // Retracting the bridge fact splits the branch; depths and wave
        // widths must match a fresh build on the mutated state.
        let p = parse_program(
            "p :- not q.\nq :- not p.\na :- not b.\nb :- not a.\nr :- not p, not a, e.",
        )
        .unwrap();
        let d = parse_database("e.").unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        let (mut closer, mut model) = run_close(&g, &p, &d);
        let mut engine = UnfoundedEngine::build(&closer);
        assert_eq!(engine.widest_wave(), 2, "p-tie and a-tie share depth 0");

        let e = g
            .atoms()
            .id_of(&datalog_ast::GroundAtom::from_texts("e", &[]))
            .unwrap();
        let d2 = datalog_ast::Database::new();
        let initial = PartialModel::initial(&p, &d2, g.atoms());
        let cone = g.forward_cone([e], []);
        closer.reopen_cone(&mut model, &initial, &cone);
        closer.run(&mut model).unwrap();
        engine.patch_cone(&closer, &cone);

        let fresh = UnfoundedEngine::build(&closer);
        assert_eq!(engine.widest_wave(), fresh.widest_wave());
        for a in closer.alive_atoms() {
            let pd = engine.component_depth(engine.component_of_atom(a).unwrap());
            let fd = fresh.component_depth(fresh.component_of_atom(a).unwrap());
            assert_eq!(pd, fd, "depth differs at {}", g.atoms().decode(a));
        }
    }

    #[test]
    fn order_respects_the_condensation() {
        // win(a) depends (negatively) on win(b): b's component first.
        let (g, p, d) = closed(
            "p :- not q.\nq :- not p.\nr :- not p, not r0.\nr0 :- not r0.",
            "",
        );
        let (closer, _) = run_close(&g, &p, &d);
        let engine = UnfoundedEngine::build(&closer);
        let cp = engine.component_of_atom(atom(&g, "p")).unwrap();
        let cr = engine.component_of_atom(atom(&g, "r")).unwrap();
        let pos = |c: u32| engine.order().iter().position(|&x| x == c).unwrap();
        assert!(pos(cp) < pos(cr), "upstream tie before its dependent");
    }
}
