//! Rule instantiation: building *G(Π, Δ)*, literally or relevantly.
//!
//! The paper's construction instantiates **every** rule with **every**
//! k-tuple of universe constants (Section 2); the semantics of `close`,
//! unfounded sets, and ties quantify over all instantiations. This module
//! offers two ways to realize that object:
//!
//! * [`GroundMode::Full`] — the paper-literal enumerator: a dense
//!   [`AtomTable`] of |U|^arity atoms per predicate and |U|^k rule
//!   instances per rule with k variables. This is the executable
//!   specification; everything else is measured against it.
//! * [`GroundMode::Relevant`] — the join-based relevant grounder
//!   (see [`crate::relevant`]): only rule instances whose positive body
//!   is *supportable* are emitted, into a sparse interned atom table.
//!
//! **Why Relevant does not change the object under study.** `close(M₀, G)`
//! deletes every rule instance with a positive body atom that the
//! EDB-false/unsupported cascade falsifies (operations 2 and 4), and
//! assigns **false** to every atom that cascade removes. The relevant
//! grounder computes exactly the atoms that *survive* that cascade — the
//! greatest set S with S = Δ ∪ {heads of instances whose positive body
//! lies in S} — and emits exactly the instances whose positive body lies
//! in S. Everything it omits is therefore deleted by the very first
//! `close(M₀, G)` round, with the omitted atoms decided false; since
//! `close` is confluent, the **post-close residual graph is identical in
//! both modes**, the models agree on every shared atom, and every dropped
//! atom is false. All downstream semantics (well-founded, pure and WF
//! tie-breaking, fixpoint/stable enumeration) operate on the post-close
//! residual, so their outcomes coincide — the workspace differential
//! property suites check this on the paper programs and on random
//! instances. The one observable difference is the *pre-close* graph
//! (e.g. the strict local-stratification check sees the restricted
//! graph), which is also why `Full` remains the default.
//!
//! Budgets: [`GroundConfig`] bounds the atom space and the rule-instance
//! space so runaway cases become typed errors instead of OOM. Atom ids
//! are `u32`, so `max_atoms` is clamped to `u32::MAX`
//! ([`crate::atoms::MAX_ATOM_SPACE`]) rather than letting ids silently
//! alias. With `prune_decided` (or in `Relevant` mode) the instance
//! budget is checked against the instances actually emitted — not the
//! unpruned |U|^k bound — and overflow aborts at the first instance past
//! the budget, reporting the count reached.

use std::fmt;

use datalog_ast::{ConstSym, Database, Program, Sign, Term, ValidationError};

use crate::atoms::{AtomId, AtomTable};
use crate::graph::{GroundGraph, GroundRule};

/// How `ground` realizes *G(Π, Δ)*.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GroundMode {
    /// The paper-literal enumerator: dense atom table, |U|^k instances
    /// per rule. The reference mode (default).
    #[default]
    Full,
    /// The join-based relevant grounder: sparse interned atom table, only
    /// supportable instances. Identical post-`close` residual graph and
    /// semantics (see the module docs); the pre-close graph is smaller.
    Relevant,
}

impl fmt::Display for GroundMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GroundMode::Full => "full",
            GroundMode::Relevant => "relevant",
        })
    }
}

/// Budgets and mode for grounding.
#[derive(Clone, Copy, Debug)]
pub struct GroundConfig {
    /// Maximum number of ground atoms (|V_P|). Clamped to
    /// [`crate::atoms::MAX_ATOM_SPACE`] (atom ids are `u32`).
    pub max_atoms: u64,
    /// Maximum number of rule nodes (|V_R|).
    pub max_rule_instances: u64,
    /// Skip rule instances containing a body literal that M₀(Δ) already
    /// decides **false** (an EDB literal violated by Δ, or a negative
    /// literal on an IDB fact of Δ).
    ///
    /// Sound for every interpreter and checker in this workspace: such
    /// rule nodes are deleted by the very first `close(M₀, G)` round
    /// before anything inspects the graph, so the post-close residual
    /// graph — the object all semantics operate on — is identical.
    /// Off by default because the *pre-close* graph is then no longer the
    /// paper's literal G(Π, Δ) (e.g. the strict local-stratification
    /// check would see the pruned graph). See the grounding ablation
    /// bench.
    ///
    /// With pruning on, the instance budget applies to the instances that
    /// *survive* pruning (counted by streaming the enumeration), so a
    /// program whose pruned graph fits is accepted even when the unpruned
    /// |U|^k bound does not. A successful pruned grounding still walks
    /// the full |U|^k space; an over-budget one aborts at the first
    /// surviving instance past the budget.
    pub prune_decided: bool,
    /// Full (paper-literal) or relevant (join-based) grounding.
    pub mode: GroundMode,
}

impl Default for GroundConfig {
    fn default() -> Self {
        GroundConfig {
            max_atoms: 4_000_000,
            max_rule_instances: 4_000_000,
            prune_decided: false,
            mode: GroundMode::Full,
        }
    }
}

/// Errors raised while grounding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GroundError {
    /// The atom space |V_P| exceeds the configured budget.
    TooManyAtoms {
        /// How many ground atoms the instance needs. Exact in `Full`
        /// mode; in `Relevant` mode a lower bound (the count reached when
        /// grounding aborted).
        required: u64,
        /// The configured cap.
        budget: u64,
    },
    /// The rule-instance space |V_R| exceeds the configured budget.
    TooManyRuleInstances {
        /// How many instances the program needs. Exact when the overflow
        /// is detected arithmetically (`Full` mode without pruning);
        /// when instances are counted by streaming (`prune_decided`, or
        /// `Relevant` mode) the count reached when grounding aborted — a
        /// lower bound on the true requirement.
        required: u64,
        /// The configured cap.
        budget: u64,
    },
    /// The database conflicts with the program signature.
    Validation(ValidationError),
}

impl fmt::Display for GroundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundError::TooManyAtoms { required, budget } => write!(
                f,
                "grounding needs {required} ground atoms, over budget {budget}"
            ),
            GroundError::TooManyRuleInstances { required, budget } => write!(
                f,
                "grounding needs {required} rule instances, over budget {budget}"
            ),
            GroundError::Validation(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for GroundError {}

impl From<ValidationError> for GroundError {
    fn from(e: ValidationError) -> Self {
        GroundError::Validation(e)
    }
}

/// A compiled atom template: resolves to an [`AtomId`] once a substitution
/// is fixed. `slots[i]` is either a constant's universe index or a
/// variable's position in the rule's variable list.
enum Slot {
    Const(u32),
    Var(usize),
}

struct AtomTemplate {
    /// Block offset of the predicate.
    offset: u32,
    slots: Vec<Slot>,
}

impl AtomTemplate {
    fn resolve(&self, u: u64, assignment: &[u32]) -> AtomId {
        let mut code: u64 = 0;
        for slot in &self.slots {
            let idx = match slot {
                Slot::Const(i) => *i,
                Slot::Var(p) => assignment[*p],
            };
            // code < |U|^arity ≤ u32::MAX (the table was built within a
            // u32 budget), so this cannot overflow u64.
            code = code * u + u64::from(idx);
        }
        let id = u64::from(self.offset) + code;
        AtomId(u32::try_from(id).expect("atom id fits u32: table built within a u32 budget"))
    }
}

/// Grounds `program` against `database` in the configured
/// [`GroundMode`].
///
/// # Errors
///
/// * [`GroundError::Validation`] if the database uses a program predicate
///   at the wrong arity;
/// * [`GroundError::TooManyAtoms`] / [`GroundError::TooManyRuleInstances`]
///   when the configured budgets are exceeded.
pub fn ground(
    program: &Program,
    database: &Database,
    config: &GroundConfig,
) -> Result<GroundGraph, GroundError> {
    let mut span = tiebreak_trace::span("ground", "ground", &[]);
    database.validate_against(program)?;
    let graph = match config.mode {
        GroundMode::Full => ground_full(program, database, config),
        GroundMode::Relevant => crate::relevant::ground_relevant(program, database, config),
    }?;
    span.arg("atoms", graph.atom_count() as u64);
    span.arg("instances", graph.rule_count() as u64);
    let m = tiebreak_trace::metrics();
    m.ground_runs.inc();
    m.ground_atoms.add(graph.atom_count() as u64);
    m.ground_instances.add(graph.rule_count() as u64);
    Ok(graph)
}

fn ground_full(
    program: &Program,
    database: &Database,
    config: &GroundConfig,
) -> Result<GroundGraph, GroundError> {
    let atoms = AtomTable::build(program, database, config.max_atoms).map_err(|overflow| {
        GroundError::TooManyAtoms {
            required: overflow.required,
            budget: config.max_atoms,
        }
    })?;
    let u = atoms.universe().len() as u64;

    // The unpruned instance count, exact via u128 so even extreme
    // variable counts report a real number instead of a sentinel.
    let mut unpruned: u128 = 0;
    for rule in program.rules() {
        let k = rule.variables().len() as u32;
        let instances = if k == 0 {
            1
        } else {
            u128::from(u).checked_pow(k).unwrap_or(u128::MAX)
        };
        unpruned = unpruned.saturating_add(instances);
    }
    let unpruned_u64 = u64::try_from(unpruned).unwrap_or(u64::MAX);
    let budget = config.max_rule_instances;
    if unpruned_u64 > budget {
        // Without pruning the unpruned count is the real count: reject
        // before allocating anything. With pruning we stream the
        // enumeration and count survivors instead — but only when the
        // unpruned space is walkable at all.
        if !config.prune_decided || unpruned > u128::from(u64::MAX) {
            return Err(GroundError::TooManyRuleInstances {
                required: unpruned_u64,
                budget,
            });
        }
    }

    // For `prune_decided`: the atoms M₀(Δ) decides. `decided_true` marks
    // Δ facts (EDB or IDB); `edb_mask` marks EDB atoms.
    let (decided_true, edb_mask) = if config.prune_decided {
        let mut in_delta = vec![false; atoms.len()];
        for fact in database.facts() {
            if let Some(id) = atoms.id_of(&fact) {
                in_delta[id.index()] = true;
            }
        }
        let mut edb = vec![false; atoms.len()];
        for &pred in program.predicates() {
            if !program.is_idb(pred) {
                for id in atoms.ids_of_pred(pred) {
                    edb[id.index()] = true;
                }
            }
        }
        (in_delta, edb)
    } else {
        (Vec::new(), Vec::new())
    };
    // A literal is decided false by M₀ iff:
    //   positive on an EDB atom outside Δ, or
    //   negative on any atom in Δ (EDB or IDB).
    let literal_false_in_m0 = |atom: AtomId, sign: Sign| -> bool {
        match sign {
            Sign::Pos => edb_mask[atom.index()] && !decided_true[atom.index()],
            Sign::Neg => decided_true[atom.index()],
        }
    };

    let mut rules: Vec<GroundRule> = if unpruned_u64 <= budget {
        Vec::with_capacity(unpruned_u64 as usize)
    } else {
        Vec::new() // pruned streaming: grow as survivors appear
    };
    // Instances that survive pruning (equals the unpruned count when
    // pruning is off).
    let mut emitted: u64 = 0;

    for (rule_index, rule) in program.rules().iter().enumerate() {
        let vars = rule.variables();
        let k = vars.len();

        // A rule with variables but an empty universe has no instances.
        if k > 0 && u == 0 {
            continue;
        }

        // Compile templates. Constants are guaranteed to be in the
        // universe (it includes all program constants).
        let var_pos = |v| vars.iter().position(|&w| w == v).expect("var in list");
        let compile = |atom: &datalog_ast::Atom| -> AtomTemplate {
            let offset = atoms.ids_of_pred(atom.pred).next().map_or(0, |id| id.0); // first id of block
                                                                                   // NOTE: offset computed via first id; for empty blocks (u == 0
                                                                                   // with positive arity) the rule is skipped above.
            let slots = atom
                .args
                .iter()
                .map(|t| match t {
                    Term::Const(c) => Slot::Const(
                        atoms
                            .const_index(*c)
                            .expect("program constant must be in the universe"),
                    ),
                    Term::Var(v) => Slot::Var(var_pos(*v)),
                })
                .collect();
            AtomTemplate { offset, slots }
        };

        let head_t = compile(&rule.head);
        let body_t: Vec<(AtomTemplate, Sign)> = rule
            .body
            .iter()
            .map(|lit| (compile(&lit.atom), lit.sign))
            .collect();

        // Enumerate all k-tuples (mixed-radix counter over |U|).
        let mut assignment: Vec<u32> = vec![0; k];
        loop {
            let head = head_t.resolve(u, &assignment);
            let body: Box<[(AtomId, Sign)]> = body_t
                .iter()
                .map(|(t, s)| (t.resolve(u, &assignment), *s))
                .collect();
            let pruned =
                config.prune_decided && body.iter().any(|&(a, s)| literal_false_in_m0(a, s));
            if !pruned {
                emitted += 1;
                if emitted > budget {
                    // Abort rather than walking the rest of the |U|^k
                    // space; the error reports the pruned count reached
                    // (a lower bound on the true requirement).
                    return Err(GroundError::TooManyRuleInstances {
                        required: emitted,
                        budget,
                    });
                }
                let subst: Box<[ConstSym]> = assignment
                    .iter()
                    .map(|&i| atoms.universe()[i as usize])
                    .collect();
                rules.push(GroundRule {
                    head,
                    body,
                    rule_index: rule_index as u32,
                    subst,
                });
            }

            // Advance the counter; stop after wrapping.
            let mut pos = k;
            loop {
                if pos == 0 {
                    break;
                }
                pos -= 1;
                assignment[pos] += 1;
                if u64::from(assignment[pos]) < u {
                    break;
                }
                assignment[pos] = 0;
                if pos == 0 {
                    pos = usize::MAX; // signal wrap
                    break;
                }
            }
            if k == 0 || pos == usize::MAX {
                break;
            }
        }
    }

    Ok(GroundGraph::from_parts(atoms, rules))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_database, parse_program, GroundAtom};

    fn win_move() -> (Program, Database) {
        (
            parse_program("win(X) :- move(X, Y), not win(Y).").unwrap(),
            parse_database("move(a, b).\nmove(b, c).").unwrap(),
        )
    }

    #[test]
    fn instance_counts() {
        let (p, d) = win_move();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        // |U| = 3, rule has 2 variables ⇒ 9 rule nodes; 12 atoms.
        assert_eq!(g.rule_count(), 9);
        assert_eq!(g.atom_count(), 12);
        // Edges: 9 head edges + 9 × 2 body edges.
        assert_eq!(g.edge_count(), 27);
    }

    #[test]
    fn instantiation_is_correct() {
        let (p, d) = win_move();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        let atoms = g.atoms();
        // Find the instance X=a, Y=b.
        let head = atoms.id_of(&GroundAtom::from_texts("win", &["a"])).unwrap();
        let found = g.rules().iter().any(|r| {
            r.head == head
                && r.subst.len() == 2
                && r.subst[0].as_str() == "a"
                && r.subst[1].as_str() == "b"
                && r.body.len() == 2
                && r.body[0]
                    == (
                        atoms
                            .id_of(&GroundAtom::from_texts("move", &["a", "b"]))
                            .unwrap(),
                        Sign::Pos,
                    )
                && r.body[1]
                    == (
                        atoms.id_of(&GroundAtom::from_texts("win", &["b"])).unwrap(),
                        Sign::Neg,
                    )
        });
        assert!(found, "expected instance win(a) :- move(a,b), not win(b)");
    }

    #[test]
    fn propositional_rules_have_one_instance() {
        let p = parse_program("p :- p, not q.\nq :- q, not p.").unwrap();
        let g = ground(&p, &Database::new(), &GroundConfig::default()).unwrap();
        assert_eq!(g.rule_count(), 2);
        assert_eq!(g.atom_count(), 2);
        assert!(g.rules().iter().all(|r| r.subst.is_empty()));
    }

    #[test]
    fn empty_universe_with_variables_grounds_to_nothing() {
        let p = parse_program("p(X) :- not q(X).").unwrap();
        let g = ground(&p, &Database::new(), &GroundConfig::default()).unwrap();
        assert_eq!(g.rule_count(), 0);
        assert_eq!(g.atom_count(), 0);
    }

    #[test]
    fn budget_errors() {
        let (p, d) = win_move();
        let err = ground(
            &p,
            &d,
            &GroundConfig {
                max_atoms: 4,
                ..GroundConfig::default()
            },
        )
        .unwrap_err();
        // 3 win + 9 move atoms needed; the error says so.
        assert!(
            matches!(
                err,
                GroundError::TooManyAtoms {
                    required: 12,
                    budget: 4
                }
            ),
            "{err:?}"
        );

        let err = ground(
            &p,
            &d,
            &GroundConfig {
                max_atoms: 1000,
                max_rule_instances: 4,
                ..GroundConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            GroundError::TooManyRuleInstances { required: 9, .. }
        ));
    }

    #[test]
    fn pruned_budget_counts_surviving_instances() {
        // Unpruned: 9 instances (over a budget of 4); pruned: 2 — the
        // pruned graph must be accepted.
        let (p, d) = win_move();
        let g = ground(
            &p,
            &d,
            &GroundConfig {
                max_rule_instances: 4,
                prune_decided: true,
                ..GroundConfig::default()
            },
        )
        .unwrap();
        assert_eq!(g.rule_count(), 2);

        // And when even the pruned count overflows, the error reports
        // the pruned count reached, not the |U|^k bound.
        let err = ground(
            &p,
            &d,
            &GroundConfig {
                max_rule_instances: 1,
                prune_decided: true,
                ..GroundConfig::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                GroundError::TooManyRuleInstances {
                    required: 2,
                    budget: 1
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn database_arity_conflict_rejected() {
        let p = parse_program("p(X) :- e(X).").unwrap();
        let d = parse_database("e(a, b).").unwrap();
        assert!(matches!(
            ground(&p, &d, &GroundConfig::default()),
            Err(GroundError::Validation(_))
        ));
    }

    #[test]
    fn describe_rule_mentions_substitution() {
        let (p, d) = win_move();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        let desc = g.describe_rule(&p, crate::graph::RuleId(0));
        assert!(desc.starts_with("r0["), "{desc}");
        assert!(desc.contains(":-"), "{desc}");
    }

    #[test]
    fn prune_decided_drops_only_m0_dead_instances() {
        let (p, d) = win_move();
        let full = ground(&p, &d, &GroundConfig::default()).unwrap();
        let pruned = ground(
            &p,
            &d,
            &GroundConfig {
                prune_decided: true,
                ..GroundConfig::default()
            },
        )
        .unwrap();
        // |U| = 3, 2 move facts: only 2 of the 9 instances have a true
        // move literal.
        assert_eq!(full.rule_count(), 9);
        assert_eq!(pruned.rule_count(), 2);
        // Atom space unchanged.
        assert_eq!(full.atom_count(), pruned.atom_count());
        // Every surviving instance is M0-alive: its move literal is a
        // fact of Δ.
        for rule in pruned.rules() {
            let (move_atom, _) = rule.body[0];
            let ga = pruned.atoms().decode(move_atom);
            assert!(d.contains(&ga), "pruned graph kept a dead instance");
        }
    }

    #[test]
    fn prune_decided_handles_negative_idb_delta_facts() {
        // q(a) ∈ Δ decides ¬q(a) false: that instance is pruned.
        let p = parse_program("p(X) :- e(X), not q(X).\nq(X) :- f(X).").unwrap();
        let d = parse_database("e(a).\ne(b).\nq(a).").unwrap();
        let full = ground(&p, &d, &GroundConfig::default()).unwrap();
        let pruned = ground(
            &p,
            &d,
            &GroundConfig {
                prune_decided: true,
                ..GroundConfig::default()
            },
        )
        .unwrap();
        assert!(pruned.rule_count() < full.rule_count());
        // The p(a) instance (¬q(a) false) must be gone...
        let pa = pruned
            .atoms()
            .id_of(&GroundAtom::from_texts("p", &["a"]))
            .unwrap();
        assert!(pruned.heads_of(pa).is_empty());
        // ...while the p(b) instance survives (q(b) is IDB-undecided).
        let pb = pruned
            .atoms()
            .id_of(&GroundAtom::from_texts("p", &["b"]))
            .unwrap();
        assert_eq!(pruned.heads_of(pb).len(), 1);
    }
}
