//! Three-valued partial models.
//!
//! A (partial) model *M* maps ground atoms to `true`/`false`, leaving some
//! atoms undefined; it is *total* when every atom has a value (paper,
//! Section 2). The initial model M₀(Δ) makes every atom of Δ true, every
//! EDB atom outside Δ false, and leaves IDB atoms outside Δ undefined.

use std::fmt;

use datalog_ast::{Database, GroundAtom, Program, Sign};

use crate::atoms::{AtomId, AtomTable};

/// The three truth values.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum TruthValue {
    /// No value assigned yet.
    #[default]
    Undefined,
    /// Assigned true.
    True,
    /// Assigned false.
    False,
}

impl TruthValue {
    /// `true` iff defined (not [`TruthValue::Undefined`]).
    pub fn is_defined(self) -> bool {
        !matches!(self, TruthValue::Undefined)
    }

    /// Converts a boolean.
    pub fn from_bool(b: bool) -> Self {
        if b {
            TruthValue::True
        } else {
            TruthValue::False
        }
    }
}

impl fmt::Display for TruthValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TruthValue::Undefined => "undefined",
            TruthValue::True => "true",
            TruthValue::False => "false",
        })
    }
}

/// A partial model over an [`AtomTable`]'s atoms.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PartialModel {
    values: Vec<TruthValue>,
}

impl PartialModel {
    /// The everywhere-undefined model over `n` atoms.
    pub fn undefined(n: usize) -> Self {
        PartialModel {
            values: vec![TruthValue::Undefined; n],
        }
    }

    /// The paper's initial model M₀(Δ): atoms of Δ (IDB or EDB) are true;
    /// EDB atoms not in Δ are false; IDB atoms not in Δ stay undefined.
    pub fn initial(program: &Program, database: &Database, atoms: &AtomTable) -> Self {
        let mut m = PartialModel::undefined(atoms.len());
        for pred in program.predicates() {
            let is_idb = program.is_idb(*pred);
            for id in atoms.ids_of_pred(*pred) {
                if !is_idb {
                    m.values[id.index()] = TruthValue::False;
                }
            }
        }
        for fact in database.facts() {
            if let Some(id) = atoms.id_of(&fact) {
                m.values[id.index()] = TruthValue::True;
            }
            // Facts about predicates the program never mentions are outside
            // V_P and simply do not participate.
        }
        m
    }

    /// Number of atoms (defined or not).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Grows the model to `n` atoms, the new atoms undefined — the delta
    /// grounder's extension point (atom ids only ever append).
    ///
    /// # Panics
    ///
    /// If `n` is smaller than the current length (ids never retire).
    pub fn grow(&mut self, n: usize) {
        assert!(n >= self.values.len(), "models never shrink");
        self.values.resize(n, TruthValue::Undefined);
    }

    /// `true` iff the model ranges over zero atoms.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value of `atom`.
    pub fn get(&self, atom: AtomId) -> TruthValue {
        self.values[atom.index()]
    }

    /// Sets the value of `atom`.
    pub fn set(&mut self, atom: AtomId, value: TruthValue) {
        self.values[atom.index()] = value;
    }

    /// `true` iff every atom is defined.
    pub fn is_total(&self) -> bool {
        self.values.iter().all(|v| v.is_defined())
    }

    /// Number of defined atoms.
    pub fn defined_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_defined()).count()
    }

    /// Number of true atoms.
    pub fn true_count(&self) -> usize {
        self.values
            .iter()
            .filter(|v| matches!(v, TruthValue::True))
            .count()
    }

    /// Iterates over `(atom, value)` for defined atoms.
    pub fn defined(&self) -> impl Iterator<Item = (AtomId, TruthValue)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_defined())
            .map(|(i, &v)| (AtomId(i as u32), v))
    }

    /// Iterates over the undefined atoms.
    pub fn undefined_atoms(&self) -> impl Iterator<Item = AtomId> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_defined())
            .map(|(i, _)| AtomId(i as u32))
    }

    /// The true atoms, decoded.
    pub fn true_atoms(&self, atoms: &AtomTable) -> Vec<GroundAtom> {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| matches!(v, TruthValue::True))
            .map(|(i, _)| atoms.decode(AtomId(i as u32)))
            .collect()
    }

    /// `self` *extends* `other`: every atom defined in `other` has the
    /// same value in `self` (paper, Section 2).
    pub fn extends(&self, other: &PartialModel) -> bool {
        debug_assert_eq!(self.len(), other.len());
        other
            .values
            .iter()
            .zip(&self.values)
            .all(|(&o, &s)| !o.is_defined() || o == s)
    }

    /// Truth of a signed literal over `atom`: `Some(true)` / `Some(false)`
    /// when determined, `None` when the atom is undefined.
    pub fn literal_truth(&self, atom: AtomId, sign: Sign) -> Option<bool> {
        match (self.get(atom), sign) {
            (TruthValue::Undefined, _) => None,
            (TruthValue::True, Sign::Pos) | (TruthValue::False, Sign::Neg) => Some(true),
            (TruthValue::True, Sign::Neg) | (TruthValue::False, Sign::Pos) => Some(false),
        }
    }

    /// The paper's M₋ for the stable-model test: every **true IDB atom not
    /// in Δ** becomes undefined; everything else keeps its value.
    pub fn minus(&self, program: &Program, database: &Database, atoms: &AtomTable) -> PartialModel {
        let mut m = self.clone();
        for (i, v) in m.values.iter_mut().enumerate() {
            if *v == TruthValue::True {
                let id = AtomId(i as u32);
                let pred = atoms.pred_of(id);
                if program.is_idb(pred) {
                    let ga = atoms.decode(id);
                    if !database.contains(&ga) {
                        *v = TruthValue::Undefined;
                    }
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_database, parse_program};

    fn setup() -> (Program, Database, AtomTable) {
        let p = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        let d = parse_database("move(a, b).").unwrap();
        let t = AtomTable::build(&p, &d, 1 << 20).unwrap();
        (p, d, t)
    }

    #[test]
    fn initial_model_shape() {
        let (p, d, t) = setup();
        let m = PartialModel::initial(&p, &d, &t);
        // |U| = 2: win/1 → 2 atoms (undefined), move/2 → 4 atoms.
        assert_eq!(m.len(), 6);
        // move(a,b) true; other 3 move atoms false; 2 win atoms undefined.
        assert_eq!(m.true_count(), 1);
        assert_eq!(m.defined_count(), 4);
        assert!(!m.is_total());

        let mv = t
            .id_of(&GroundAtom::from_texts("move", &["a", "b"]))
            .unwrap();
        assert_eq!(m.get(mv), TruthValue::True);
        let mv2 = t
            .id_of(&GroundAtom::from_texts("move", &["b", "a"]))
            .unwrap();
        assert_eq!(m.get(mv2), TruthValue::False);
        let w = t.id_of(&GroundAtom::from_texts("win", &["a"])).unwrap();
        assert_eq!(m.get(w), TruthValue::Undefined);
    }

    #[test]
    fn idb_facts_in_delta_are_true() {
        let p = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        let d = parse_database("move(a, b).\nwin(b).").unwrap();
        let t = AtomTable::build(&p, &d, 1 << 20).unwrap();
        let m = PartialModel::initial(&p, &d, &t);
        let w = t.id_of(&GroundAtom::from_texts("win", &["b"])).unwrap();
        assert_eq!(m.get(w), TruthValue::True);
    }

    #[test]
    fn extends_ordering() {
        let (p, d, t) = setup();
        let m0 = PartialModel::initial(&p, &d, &t);
        let mut m1 = m0.clone();
        let w = t.id_of(&GroundAtom::from_texts("win", &["a"])).unwrap();
        m1.set(w, TruthValue::True);
        assert!(m1.extends(&m0));
        assert!(!m0.extends(&m1));
        let mut m2 = m0.clone();
        m2.set(w, TruthValue::False);
        assert!(!m1.extends(&m2));
    }

    #[test]
    fn literal_truth_table() {
        let (p, d, t) = setup();
        let mut m = PartialModel::initial(&p, &d, &t);
        let w = t.id_of(&GroundAtom::from_texts("win", &["a"])).unwrap();
        assert_eq!(m.literal_truth(w, Sign::Pos), None);
        m.set(w, TruthValue::True);
        assert_eq!(m.literal_truth(w, Sign::Pos), Some(true));
        assert_eq!(m.literal_truth(w, Sign::Neg), Some(false));
        m.set(w, TruthValue::False);
        assert_eq!(m.literal_truth(w, Sign::Pos), Some(false));
        assert_eq!(m.literal_truth(w, Sign::Neg), Some(true));
    }

    #[test]
    fn minus_undefines_derived_idb_truths_only() {
        let p = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        let d = parse_database("move(a, b).\nwin(b).").unwrap();
        let t = AtomTable::build(&p, &d, 1 << 20).unwrap();
        let mut m = PartialModel::initial(&p, &d, &t);
        let wa = t.id_of(&GroundAtom::from_texts("win", &["a"])).unwrap();
        let wb = t.id_of(&GroundAtom::from_texts("win", &["b"])).unwrap();
        m.set(wa, TruthValue::True); // derived, not in Δ
        let minus = m.minus(&p, &d, &t);
        assert_eq!(minus.get(wa), TruthValue::Undefined);
        // win(b) ∈ Δ keeps its value; EDB atoms keep theirs.
        assert_eq!(minus.get(wb), TruthValue::True);
        let mv = t
            .id_of(&GroundAtom::from_texts("move", &["a", "b"]))
            .unwrap();
        assert_eq!(minus.get(mv), TruthValue::True);
    }
}
