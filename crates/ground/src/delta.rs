//! Delta grounding for the incremental session.
//!
//! A [`SessionGrounder`] keeps, alongside the prepared [`GroundGraph`],
//! the state the relevant grounder needs to extend that graph under fact
//! **insertion** without re-running grounding from scratch:
//!
//! * the **grounding database** Δ̂ — the union of every fact that was
//!   ever present. Δ̂ only grows: retractions leave it (and the graph)
//!   untouched, because a stale rule instance whose positive EDB body is
//!   no longer in Δ is deleted — and its atoms decided false — by the
//!   very first round of `close(M₀, G)`. Any instance set between the
//!   fresh relevant grounding of the current Δ and the paper-literal full
//!   instantiation yields the *identical post-close residual graph* (the
//!   [`crate::grounder`] argument applied twice), so retraction is pure
//!   model surgery and "retiring" instances is the re-close's job;
//! * the **supportable set** S = S(Δ̂) — the gfp the relevant grounder
//!   computes (see [`crate::relevant`]). Because Δ̂ is insert-monotone,
//!   S only ever grows, and the increment ΔS can be computed exactly:
//!
//!   1. **Acyclic case** (no *affected* predicate lies on a positive
//!      dependency cycle of the program): S's defining operator is
//!      well-founded over the affected predicates, so its gfp coincides
//!      with the lfp and a **semi-naive forward pass seeded by the
//!      inserted facts** ([`crate::seminaive`]) derives exactly ΔS. Every
//!      newly supportable atom has a support instance with at least one
//!      newly supportable body atom (otherwise it was supportable
//!      before), so the seeded delta joins find it.
//!   2. **Cyclic case**: a positive cycle can become supportable as a
//!      whole without any member being forward-derivable (`p ← q, e` /
//!      `q ← p` turns supportable the moment `e` arrives), so forward
//!      derivation under-approximates. The grounder then re-runs the
//!      candidate + downward-gfp passes **scoped to the affected
//!      predicates** (those positively reachable from the inserted
//!      facts' predicates), with every unaffected predicate's supportable
//!      relation frozen as context. Atoms of unaffected predicates
//!      cannot change (their support structure reads only unaffected
//!      upstream relations), so the scoped gfp splices exactly.
//!
//! Emission then enumerates, per rule and per positive body occurrence,
//! the substitutions whose occurrence matches ΔS and whose full positive
//! body lies in the new S — the semi-naive instance delta. Instances
//! with positive body inside the old S were all emitted earlier, so the
//! graph ends up containing every instance the fresh relevant grounder
//! of Δ̂ would emit.
//!
//! Universe invariance is a **precondition**: callers must fall back to
//! a full re-prepare when a mutation adds a constant outside the
//! prepared universe or retires a constant from it (the runtime session
//! guards this — extra universe constants would leak phantom atoms into
//! decoded models, e.g. `p(c) ← ¬q(c)` staying true after `c`'s last
//! fact is retracted).

use datalog_ast::{ConstSym, Database, FxHashMap, FxHashSet, GroundAtom, PredSym, Program, Sign};
use signed_graph::{EdgeSign, Sccs, SignedDigraph};

use crate::atoms::AtomSpaceOverflow;
use crate::graph::{GroundGraph, GroundRule};
use crate::grounder::{ground, GroundConfig, GroundError, GroundMode};
use crate::relevant;
use crate::seminaive::{run_seeded, RuleEvaluator};

/// What one [`SessionGrounder::delta_insert`] did to the graph.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeltaGround {
    /// Index of the first appended atom (== the prepared atom count when
    /// `new_atoms == 0`).
    pub first_new_atom: usize,
    /// Index of the first appended rule node.
    pub first_new_rule: usize,
    /// Atoms appended to the table.
    pub new_atoms: usize,
    /// Rule instances appended to the graph.
    pub new_rules: usize,
    /// Newly supportable atoms (|ΔS|).
    pub delta_supportable: usize,
    /// `true` when the scoped gfp refresh ran (a positive-cycle
    /// predicate was affected); `false` for the pure semi-naive path.
    pub scoped_refresh: bool,
}

/// The incremental grounding state of one session (see the module docs).
pub struct SessionGrounder {
    mode: GroundMode,
    /// Δ̂: every fact ever present (known predicates only). Insert-only.
    ground_db: Database,
    /// S(Δ̂), maintained exactly.
    supportable: Database,
    /// Facts of unknown predicates carried inside `supportable` since
    /// build (budget arithmetic discounts them).
    ignored_facts: u64,
    /// Program predicates in [`Program::predicates`] order.
    pred_index: FxHashMap<PredSym, u32>,
    /// Positive dependency successors: `pos_succ[p]` lists head
    /// predicates of rules with a positive body literal of predicate `p`.
    pos_succ: Vec<Vec<u32>>,
    /// Predicate lies on a positive dependency cycle (gfp-sensitive).
    on_pos_cycle: Vec<bool>,
}

fn atom_overflow(config: &GroundConfig) -> impl Fn(AtomSpaceOverflow) -> GroundError + '_ {
    |ov| GroundError::TooManyAtoms {
        required: ov.required,
        budget: config.max_atoms,
    }
}

impl SessionGrounder {
    /// Grounds `(program, database)` in the configured mode and returns
    /// the graph together with the session state needed to extend it.
    ///
    /// # Errors
    ///
    /// As for [`crate::ground`].
    pub fn build(
        program: &Program,
        database: &Database,
        config: &GroundConfig,
    ) -> Result<(GroundGraph, SessionGrounder), GroundError> {
        let mut span = tiebreak_trace::span("ground", "session_ground", &[]);
        let (graph, supportable, ground_db) = match config.mode {
            GroundMode::Full => (ground(program, database, config)?, Database::new(), {
                // Full mode instantiates every rule over U up front: the
                // graph is database-independent, so no grounding state is
                // needed — mutations are pure model surgery.
                Database::new()
            }),
            GroundMode::Relevant => {
                let (graph, supportable) =
                    relevant::ground_relevant_parts(program, database, config)?;
                // The Full arm routes through `ground`, which books these
                // itself; the parts entry point is only reached here.
                let m = tiebreak_trace::metrics();
                m.ground_runs.inc();
                m.ground_atoms.add(graph.atom_count() as u64);
                m.ground_instances.add(graph.rule_count() as u64);
                let mut ground_db = Database::new();
                for fact in database.facts() {
                    if program.arity(fact.pred).is_some() {
                        ground_db.insert(fact).map_err(GroundError::Validation)?;
                    }
                }
                (graph, supportable, ground_db)
            }
        };

        // Positive predicate dependency graph, for affectedness and
        // cycle detection.
        let preds = program.predicates();
        let pred_index: FxHashMap<PredSym, u32> = preds
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u32))
            .collect();
        let mut pos_succ: Vec<Vec<u32>> = vec![Vec::new(); preds.len()];
        let mut digraph = SignedDigraph::new(preds.len());
        let mut self_loop = vec![false; preds.len()];
        for rule in program.rules() {
            let head = pred_index[&rule.head.pred];
            for lit in &rule.body {
                if lit.sign == Sign::Pos {
                    let body = pred_index[&lit.atom.pred];
                    pos_succ[body as usize].push(head);
                    digraph.add_edge(body, head, EdgeSign::Pos);
                    if body == head {
                        self_loop[body as usize] = true;
                    }
                }
            }
        }
        let sccs = Sccs::compute(&digraph);
        let on_pos_cycle: Vec<bool> = (0..preds.len())
            .map(|i| self_loop[i] || sccs.members(sccs.component_of(i as u32)).len() > 1)
            .collect();

        let ignored_facts = relevant::ignored_fact_count(program, database);
        span.arg("atoms", graph.atom_count() as u64);
        span.arg("instances", graph.rule_count() as u64);
        Ok((
            graph,
            SessionGrounder {
                mode: config.mode,
                ground_db,
                supportable,
                ignored_facts,
                pred_index,
                pos_succ,
                on_pos_cycle,
            },
        ))
    }

    /// The grounding mode this state was built for.
    pub fn mode(&self) -> GroundMode {
        self.mode
    }

    /// Current size of the maintained supportable set (Relevant mode).
    pub fn supportable_len(&self) -> usize {
        self.supportable.len()
    }

    /// Extends `graph` for a batch of inserted facts: computes ΔS and
    /// appends the newly supportable rule instances (and their atoms).
    /// In `Full` mode this is a no-op — the dense graph is already
    /// universe-complete.
    ///
    /// Preconditions (guarded by the session): every constant of every
    /// fact lies in the prepared universe, and `prune_decided` is off.
    ///
    /// # Errors
    ///
    /// Budget overflows ([`GroundError::TooManyAtoms`] /
    /// [`GroundError::TooManyRuleInstances`]); the graph may be left
    /// partially extended — callers recover by re-preparing.
    pub fn delta_insert(
        &mut self,
        graph: &mut GroundGraph,
        program: &Program,
        config: &GroundConfig,
        inserted: &[GroundAtom],
    ) -> Result<DeltaGround, GroundError> {
        let _span = tiebreak_trace::span(
            "ground",
            "delta_insert",
            &[("inserted", inserted.len() as u64)],
        );
        let mut out = DeltaGround {
            first_new_atom: graph.atom_count(),
            first_new_rule: graph.rule_count(),
            ..DeltaGround::default()
        };
        if self.mode == GroundMode::Full {
            return Ok(out);
        }
        let overflow = atom_overflow(config);

        // Δ facts are always represented in the atom table, and Δ̂ gains
        // the batch; facts already supportable (present at some earlier
        // epoch) contribute nothing new.
        let mut seeds: Vec<GroundAtom> = Vec::new();
        for fact in inserted {
            if program.arity(fact.pred).is_none() {
                continue;
            }
            graph
                .intern_atom(fact, config.max_atoms)
                .map_err(&overflow)?;
            if !self.ground_db.contains(fact) {
                self.ground_db
                    .insert(fact.clone())
                    .map_err(GroundError::Validation)?;
                if !self.supportable.contains(fact) {
                    seeds.push(fact.clone());
                }
            }
        }

        let universe: Vec<ConstSym> = graph.atoms().universe().to_vec();
        let fact_cap = config
            .max_atoms
            .min(crate::atoms::MAX_ATOM_SPACE)
            .saturating_add(self.ignored_facts);
        let mut delta_s: Vec<GroundAtom> = if seeds.is_empty() {
            Vec::new()
        } else {
            let affected = self.affected_preds(&seeds);
            let cyclic = affected.iter().any(|&p| self.on_pos_cycle[p as usize]);
            if cyclic {
                out.scoped_refresh = true;
                self.scoped_refresh(program, config, &affected, &universe)?
            } else {
                let envelopes: Vec<RuleEvaluator<'_>> = program
                    .rules()
                    .iter()
                    .map(RuleEvaluator::envelope)
                    .collect();
                run_seeded(
                    &envelopes,
                    &mut self.supportable,
                    seeds,
                    &universe,
                    fact_cap,
                )
                .map_err(|count| GroundError::TooManyAtoms {
                    required: count.saturating_sub(self.ignored_facts),
                    budget: config.max_atoms,
                })?
            }
        };
        delta_s.sort_unstable(); // deterministic emission → deterministic ids
        out.delta_supportable = delta_s.len();
        if delta_s.is_empty() {
            out.new_atoms = graph.atom_count() - out.first_new_atom;
            return Ok(out);
        }
        let delta_db: Database = delta_s.iter().cloned().collect();

        // Instance delta: one semi-naive join per positive occurrence
        // whose predicate gained supportable atoms; substitutions
        // deduplicated across occurrences.
        for (rule_index, rule) in program.rules().iter().enumerate() {
            let ev = RuleEvaluator::new(rule);
            if ev.positive_len() == 0 {
                continue; // no positive body: all instances emitted at build
            }
            let mut seen: FxHashSet<Box<[ConstSym]>> = FxHashSet::default();
            for occ in 0..ev.positive_len() {
                if delta_db.relation(ev.positive_pred(occ)).is_none() {
                    continue;
                }
                ev.for_each_substitution_delta::<GroundError>(
                    &self.supportable,
                    &delta_db,
                    occ,
                    &universe,
                    &mut |assignment| {
                        if !seen.insert(assignment.into()) {
                            return Ok(());
                        }
                        let required = graph.rule_count() as u64 + 1;
                        if required > config.max_rule_instances {
                            return Err(GroundError::TooManyRuleInstances {
                                required,
                                budget: config.max_rule_instances,
                            });
                        }
                        let head = graph
                            .intern_atom(&ev.ground_atom(&rule.head, assignment), config.max_atoms)
                            .map_err(&overflow)?;
                        let body = rule
                            .body
                            .iter()
                            .map(|lit| {
                                Ok((
                                    graph
                                        .intern_atom(
                                            &ev.ground_atom(&lit.atom, assignment),
                                            config.max_atoms,
                                        )
                                        .map_err(&overflow)?,
                                    lit.sign,
                                ))
                            })
                            .collect::<Result<Box<[_]>, GroundError>>()?;
                        graph.push_rule(GroundRule {
                            head,
                            body,
                            rule_index: rule_index as u32,
                            subst: assignment.into(),
                        });
                        out.new_rules += 1;
                        Ok(())
                    },
                )?;
            }
        }
        out.new_atoms = graph.atom_count() - out.first_new_atom;
        Ok(out)
    }

    /// Predicates positively reachable from the seeds' predicates
    /// (inclusive): the only predicates whose supportable relations can
    /// grow.
    fn affected_preds(&self, seeds: &[GroundAtom]) -> Vec<u32> {
        let mut in_set = vec![false; self.pos_succ.len()];
        let mut stack: Vec<u32> = Vec::new();
        for fact in seeds {
            let p = self.pred_index[&fact.pred];
            if !in_set[p as usize] {
                in_set[p as usize] = true;
                stack.push(p);
            }
        }
        let mut affected = Vec::new();
        while let Some(p) = stack.pop() {
            affected.push(p);
            for &q in &self.pos_succ[p as usize] {
                if !in_set[q as usize] {
                    in_set[q as usize] = true;
                    stack.push(q);
                }
            }
        }
        affected
    }

    /// The cyclic-case refresh: candidate + downward-gfp passes scoped to
    /// the rules whose head predicate is affected, every other relation
    /// frozen. Replaces the affected slice of `supportable` and returns
    /// ΔS.
    fn scoped_refresh(
        &mut self,
        program: &Program,
        config: &GroundConfig,
        affected: &[u32],
        universe: &[ConstSym],
    ) -> Result<Vec<GroundAtom>, GroundError> {
        let preds = program.predicates();
        let mut is_affected = vec![false; preds.len()];
        for &p in affected {
            is_affected[p as usize] = true;
        }
        let affected_pred = |p: PredSym| -> bool {
            self.pred_index
                .get(&p)
                .is_some_and(|&i| is_affected[i as usize])
        };
        let scope: Vec<usize> = program
            .rules()
            .iter()
            .enumerate()
            .filter(|(_, r)| affected_pred(r.head.pred))
            .map(|(i, _)| i)
            .collect();
        let fact_cap = config
            .max_atoms
            .min(crate::atoms::MAX_ATOM_SPACE)
            .saturating_add(self.ignored_facts);
        let too_many = |count: u64| GroundError::TooManyAtoms {
            required: count.saturating_sub(self.ignored_facts),
            budget: config.max_atoms,
        };

        // Frozen context + Δ̂∩affected; the old affected slice is kept
        // aside for the ΔS diff.
        let mut old_affected = Database::new();
        let mut base = Database::new();
        for fact in self.supportable.facts() {
            if affected_pred(fact.pred) {
                old_affected.insert(fact).map_err(GroundError::Validation)?;
            } else {
                base.insert(fact).map_err(GroundError::Validation)?;
            }
        }
        for fact in self.ground_db.facts() {
            if affected_pred(fact.pred) {
                base.insert(fact).map_err(GroundError::Validation)?;
            }
        }

        // Scoped candidate pass (a pre-fixpoint ⊇ the affected slice of
        // the new S).
        let mut current = base.clone();
        for &i in &scope {
            let rule = &program.rules()[i];
            let ev = RuleEvaluator::edb_skeleton(rule, program);
            ev.for_each_substitution::<GroundError>(&self.ground_db, universe, &mut |a| {
                current
                    .insert(ev.ground_atom(&rule.head, a))
                    .expect("arity consistent");
                if current.len() as u64 > fact_cap {
                    return Err(too_many(current.len() as u64));
                }
                Ok(())
            })?;
        }

        // Scoped downward iteration to the gfp.
        let envelopes: Vec<(usize, RuleEvaluator<'_>)> = scope
            .iter()
            .map(|&i| (i, RuleEvaluator::envelope(&program.rules()[i])))
            .collect();
        loop {
            let mut next = base.clone();
            for (i, ev) in &envelopes {
                let rule = &program.rules()[*i];
                ev.for_each_substitution::<GroundError>(&current, universe, &mut |a| {
                    next.insert(ev.ground_atom(&rule.head, a))
                        .expect("arity consistent");
                    if next.len() as u64 > fact_cap {
                        return Err(too_many(next.len() as u64));
                    }
                    Ok(())
                })?;
            }
            let stable = next == current;
            current = next;
            if stable {
                break;
            }
        }

        let delta: Vec<GroundAtom> = current
            .facts()
            .filter(|f| affected_pred(f.pred) && !old_affected.contains(f))
            .collect();
        self.supportable = current;
        Ok(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_database, parse_program};

    fn relevant() -> GroundConfig {
        GroundConfig {
            mode: GroundMode::Relevant,
            ..GroundConfig::default()
        }
    }

    /// Delta-extended graphs must contain every instance the fresh
    /// relevant grounder emits for the final database (possibly more —
    /// stale ones — which close deletes).
    fn assert_covers_fresh(graph: &GroundGraph, program: &Program, db: &Database) {
        let fresh = ground(program, db, &relevant()).expect("fresh grounds");
        for rule in fresh.rules() {
            let head = fresh.atoms().decode(rule.head);
            let gh = graph.atoms().id_of(&head).expect("head atom present");
            let found = graph.rules().iter().any(|r| {
                r.rule_index == rule.rule_index
                    && r.head == gh
                    && r.body.len() == rule.body.len()
                    && r.body
                        .iter()
                        .zip(rule.body.iter())
                        .all(|(&(a, s), &(b, t))| {
                            s == t && graph.atoms().decode(a) == fresh.atoms().decode(b)
                        })
            });
            assert!(found, "missing instance for head {head}");
        }
    }

    use datalog_ast::Program;

    #[test]
    fn seeded_insert_grows_the_graph_like_fresh_grounding() {
        let program = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        let db0 = parse_database("move(a, b).\nmove(b, c).\nmove(c, a).").unwrap();
        let (mut graph, mut sg) =
            SessionGrounder::build(&program, &db0, &relevant()).expect("builds");
        let rules0 = graph.rule_count();

        // Insert a move within the existing universe.
        let fact = GroundAtom::from_texts("move", &["c", "b"]);
        let mut db1 = db0.clone();
        db1.insert(fact.clone()).unwrap();
        let d = sg
            .delta_insert(&mut graph, &program, &relevant(), &[fact])
            .expect("delta grounds");
        assert!(!d.scoped_refresh, "win–move has no positive cycle");
        assert_eq!(d.new_rules, 1, "one new supportable instance");
        assert_eq!(graph.rule_count(), rules0 + 1);
        assert_covers_fresh(&graph, &program, &db1);
    }

    #[test]
    fn cyclic_insert_resurrects_guarded_positive_cycles() {
        // p ← q, e ; q ← p: the cycle is supportable only once e holds —
        // forward derivation alone cannot bootstrap it, the scoped gfp
        // must.
        let program = parse_program("p :- q, e.\nq :- p.").unwrap();
        let db0 = Database::new();
        let (mut graph, mut sg) =
            SessionGrounder::build(&program, &db0, &relevant()).expect("builds");
        assert_eq!(graph.rule_count(), 0, "nothing supportable without e");

        let fact = GroundAtom::from_texts("e", &[]);
        let mut db1 = db0.clone();
        db1.insert(fact.clone()).unwrap();
        let d = sg
            .delta_insert(&mut graph, &program, &relevant(), &[fact])
            .expect("delta grounds");
        assert!(d.scoped_refresh, "positive cycle affected");
        assert_eq!(d.new_rules, 2, "both cycle instances appear");
        assert_covers_fresh(&graph, &program, &db1);
    }

    #[test]
    fn reinsert_after_retraction_is_free() {
        // Retraction leaves Δ̂ and the graph untouched; re-inserting the
        // same fact therefore grounds nothing new.
        let program = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        let db = parse_database("move(a, b).").unwrap();
        let (mut graph, mut sg) =
            SessionGrounder::build(&program, &db, &relevant()).expect("builds");
        let rules0 = graph.rule_count();
        let fact = GroundAtom::from_texts("move", &["a", "b"]);
        let d = sg
            .delta_insert(&mut graph, &program, &relevant(), &[fact])
            .expect("delta grounds");
        assert_eq!(d.new_rules, 0);
        assert_eq!(d.delta_supportable, 0);
        assert_eq!(graph.rule_count(), rules0);
    }

    #[test]
    fn full_mode_delta_is_a_no_op() {
        let program = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        let db = parse_database("move(a, b).").unwrap();
        let (mut graph, mut sg) =
            SessionGrounder::build(&program, &db, &GroundConfig::default()).expect("builds");
        let (atoms0, rules0) = (graph.atom_count(), graph.rule_count());
        let fact = GroundAtom::from_texts("move", &["b", "a"]);
        let d = sg
            .delta_insert(&mut graph, &program, &GroundConfig::default(), &[fact])
            .expect("no-op");
        assert_eq!((d.new_atoms, d.new_rules), (0, 0));
        assert_eq!((graph.atom_count(), graph.rule_count()), (atoms0, rules0));
    }

    #[test]
    fn transitive_closure_chain_extends_incrementally() {
        // Positive recursion (t on a pred-level cycle): every insert takes
        // the scoped path and must match fresh grounding exactly.
        let program = parse_program("t(X, Y) :- e(X, Y).\nt(X, Z) :- t(X, Y), e(Y, Z).").unwrap();
        let mut db = parse_database("e(a, b).\ne(b, c).\ne(c, d).").unwrap();
        // Build over the 4-constant universe but with one edge missing.
        let missing = GroundAtom::from_texts("e", &["b", "d"]);
        let (mut graph, mut sg) =
            SessionGrounder::build(&program, &db, &relevant()).expect("builds");
        db.insert(missing.clone()).unwrap();
        let d = sg
            .delta_insert(&mut graph, &program, &relevant(), &[missing])
            .expect("delta grounds");
        assert!(d.scoped_refresh);
        assert!(d.new_rules > 0);
        assert_covers_fresh(&graph, &program, &db);
    }
}
