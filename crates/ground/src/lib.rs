//! Grounding of Datalog¬ programs: ground graphs, partial models, and the
//! `close(M, G)` operator.
//!
//! Implements Section 2 of Papadimitriou & Yannakakis, *"Tie-Breaking
//! Semantics and Structural Totality"*:
//!
//! * [`AtomTable`] — a dense bijection between the ground atoms over the
//!   universe *U* and integer [`AtomId`]s (mixed-radix encoding, no
//!   hashing on the hot path);
//! * [`PartialModel`] — three-valued models over the atom table, with the
//!   initial model M₀(Δ);
//! * [`GroundGraph`] — the bipartite graph *G(Π, Δ)* with predicate nodes,
//!   rule nodes, and signed body edges, built by full instantiation of
//!   every rule over *U* exactly as the paper defines (with an explicit
//!   budget so pathological arities fail fast instead of exhausting
//!   memory);
//! * [`Closer`] — an incremental, confluent implementation of the paper's
//!   `close(M, G)` procedure, reusable across the iterations of the
//!   well-founded and tie-breaking interpreters, plus the largest
//!   unfounded set `Atoms[close(M, G⁺)]`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod atoms;
pub mod close;
pub mod graph;
pub mod grounder;
pub mod model;
pub mod reference;

pub use atoms::{AtomId, AtomTable};
pub use close::{CloseConflict, Closer, NodeKind, RemainingGraph};
pub use graph::{GroundGraph, GroundRule, RuleId};
pub use grounder::{ground, GroundConfig, GroundError};
pub use model::{PartialModel, TruthValue};
pub use reference::{naive_close, naive_largest_unfounded, ResidualGraph};
