//! Grounding of Datalog¬ programs: ground graphs, partial models, and the
//! `close(M, G)` operator.
//!
//! Implements Section 2 of Papadimitriou & Yannakakis, *"Tie-Breaking
//! Semantics and Structural Totality"*:
//!
//! * [`AtomTable`] — a dense bijection between the ground atoms over the
//!   universe *U* and integer [`AtomId`]s (mixed-radix encoding, no
//!   hashing on the hot path);
//! * [`PartialModel`] — three-valued models over the atom table, with the
//!   initial model M₀(Δ);
//! * [`GroundGraph`] — the bipartite graph *G(Π, Δ)* with predicate nodes,
//!   rule nodes, and signed body edges, built either by full instantiation
//!   of every rule over *U* exactly as the paper defines
//!   ([`GroundMode::Full`], with an explicit budget so pathological
//!   arities fail fast instead of exhausting memory) or by the join-based
//!   **relevant** grounder ([`GroundMode::Relevant`]) that emits only
//!   supportable rule instances into a sparse interned atom table while
//!   preserving the post-`close` residual graph exactly;
//! * [`Closer`] — an incremental, confluent implementation of the paper's
//!   `close(M, G)` procedure, reusable across the iterations of the
//!   well-founded and tie-breaking interpreters, plus the largest
//!   unfounded set `Atoms[close(M, G⁺)]`;
//! * [`UnfoundedEngine`] — the SCC condensation of the residual graph
//!   with component-scoped unfounded-set and tie-structure queries, the
//!   substrate of the stratified evaluation mode;
//! * [`seminaive`] — the semi-naive join engine shared by the relevant
//!   grounder and `tiebreak-core`'s stratified interpreter;
//! * [`delta`] — delta grounding for the incremental session: a
//!   [`SessionGrounder`] extends a prepared graph under fact insertion
//!   (seeded semi-naive passes, scoped gfp refresh for positive cycles),
//!   [`GroundGraph::forward_cone`] bounds how far a mutation can reach,
//!   [`Closer::reopen_cone`] re-closes exactly that cone against the
//!   frozen remainder, and [`UnfoundedEngine::patch_cone`] splices the
//!   re-condensed cone into the prepared condensation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod atoms;
pub mod close;
pub mod delta;
pub mod graph;
pub mod grounder;
pub mod model;
pub mod reference;
pub mod relevant;
pub mod seminaive;
pub mod unfounded;

pub use atoms::{AtomId, AtomInterner, AtomSpaceOverflow, AtomTable};
pub use close::{CloseConflict, CloseState, Closer, NodeKind, RemainingGraph};
pub use delta::{DeltaGround, SessionGrounder};
pub use graph::{Cone, GraphFootprint, GroundGraph, GroundRule, RuleId};
pub use grounder::{ground, GroundConfig, GroundError, GroundMode};
pub use model::{PartialModel, TruthValue};
pub use reference::{naive_close, naive_largest_unfounded, ResidualGraph};
pub use unfounded::{ComponentGraph, ConePatch, UnfoundedEngine};
