//! Semi-naive bottom-up rule evaluation over [`Database`] relations.
//!
//! The relational substrate shared by two consumers:
//!
//! * **stratified evaluation** in `tiebreak-core` (\[CH, ABW\]; paper,
//!   Section 1): within one stratum, rules are evaluated to a least
//!   fixpoint with *delta* relations so each round only joins against
//!   newly derived tuples, negation tested against relations completed by
//!   lower strata;
//! * the **relevant grounder** ([`crate::grounder::GroundMode::Relevant`]):
//!   the same join engine run in *envelope* mode (negative literals
//!   ignored) computes the set of supportable atoms, and
//!   [`RuleEvaluator::for_each_substitution`] then enumerates exactly the
//!   rule instances whose positive body is supportable.
//!
//! Variables not bound by positive body literals (unsafe rules, or
//! variables occurring only under negation) range over the universe *U*,
//! matching the ground-graph semantics exactly.

use std::convert::Infallible;

use datalog_ast::{
    Atom, ConstSym, Database, FxHashMap, GroundAtom, Program, Rule, Sign, Term, VarSym,
};

/// Where a positive literal reads its tuples during a semi-naive round.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Source {
    /// The full current relation.
    Total,
    /// Only the last round's new tuples.
    Delta,
}

/// A compiled rule evaluator: variable indexing plus the body split.
pub struct RuleEvaluator<'r> {
    rule: &'r Rule,
    vars: Vec<VarSym>,
    var_index: FxHashMap<VarSym, usize>,
    positive: Vec<&'r Atom>,
    negative: Vec<&'r Atom>,
    /// When `false`, negative literals are ignored entirely — the
    /// *positive envelope* used by the relevant grounder.
    check_negatives: bool,
    /// Per variable: enumerate it over the universe when the positive
    /// join leaves it unbound. The head-projection constructors
    /// ([`RuleEvaluator::envelope`], [`RuleEvaluator::edb_skeleton`])
    /// clear this for variables the head never reads, collapsing the
    /// |U|^m duplicate-head blowup to a single witness assignment.
    enumerate: Vec<bool>,
}

impl<'r> RuleEvaluator<'r> {
    /// Compiles `rule` for full evaluation (negatives tested on emit).
    pub fn new(rule: &'r Rule) -> Self {
        RuleEvaluator::with_negation(rule, true)
    }

    /// Compiles `rule` for the **positive envelope**: negative literals
    /// are dropped, so the evaluator over-approximates the rule
    /// (everything derivable if every negative literal were true).
    /// Intended for *head derivation*: variables the head never reads
    /// are projected out (one witness instead of |U| duplicates).
    pub fn envelope(rule: &'r Rule) -> Self {
        RuleEvaluator::with_negation(rule, false).project_to_head_support()
    }

    /// Compiles `rule` keeping only its positive **EDB** literals:
    /// negative and positive-IDB literals are dropped, their variables
    /// ranging freely over the universe (projected to one witness when
    /// the head never reads them). Emitting with this evaluator yields
    /// the relevant grounder's *candidate* heads — a superset of every
    /// head derivable no matter what the IDB relations turn out to be
    /// (a pre-fixpoint of the positive envelope operator).
    pub fn edb_skeleton(rule: &'r Rule, program: &Program) -> Self {
        let mut ev = RuleEvaluator::with_negation(rule, false);
        ev.positive.retain(|a| !program.is_idb(a.pred));
        ev.project_to_head_support()
    }

    /// Restricts unbound-variable enumeration to the variables the head
    /// or a (retained) positive literal reads; all others get a single
    /// arbitrary witness. Sound whenever the caller only grounds the
    /// head: ∃-semantics over the dropped variables is preserved, and a
    /// rule with *any* unbound variable still has no instances over an
    /// empty universe.
    fn project_to_head_support(mut self) -> Self {
        let mut needed = vec![false; self.vars.len()];
        for v in self.rule.head.variables() {
            needed[self.var_index[&v]] = true;
        }
        for atom in &self.positive {
            for v in atom.variables() {
                needed[self.var_index[&v]] = true;
            }
        }
        self.enumerate = needed;
        self
    }

    fn with_negation(rule: &'r Rule, check_negatives: bool) -> Self {
        let vars = rule.variables();
        let var_index: FxHashMap<VarSym, usize> =
            vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let positive: Vec<&Atom> = rule
            .body
            .iter()
            .filter(|l| l.sign == Sign::Pos)
            .map(|l| &l.atom)
            .collect();
        let negative: Vec<&Atom> = rule
            .body
            .iter()
            .filter(|l| l.sign == Sign::Neg)
            .map(|l| &l.atom)
            .collect();
        let enumerate = vec![true; vars.len()];
        RuleEvaluator {
            rule,
            vars,
            var_index,
            positive,
            negative,
            check_negatives,
            enumerate,
        }
    }

    /// Number of positive body literals.
    pub fn positive_len(&self) -> usize {
        self.positive.len()
    }

    /// The predicate of the i-th positive literal.
    pub fn positive_pred(&self, i: usize) -> datalog_ast::PredSym {
        self.positive[i].pred
    }

    /// The rule's variables in [`Rule::variables`] order (the order of the
    /// assignments passed to [`RuleEvaluator::for_each_substitution`]).
    pub fn vars(&self) -> &[VarSym] {
        &self.vars
    }

    /// Grounds `atom` under a full assignment (in [`RuleEvaluator::vars`]
    /// order).
    ///
    /// # Panics
    ///
    /// If `atom` mentions a variable not in this rule.
    pub fn ground_atom(&self, atom: &Atom, assignment: &[ConstSym]) -> GroundAtom {
        GroundAtom {
            pred: atom.pred,
            args: atom
                .args
                .iter()
                .map(|t| match t {
                    Term::Const(c) => *c,
                    Term::Var(v) => assignment[self.var_index[v]],
                })
                .collect(),
        }
    }

    /// Evaluates the rule, emitting every head instance derivable with the
    /// given sources:
    ///
    /// * `total` — the current state of all relations,
    /// * `delta_occurrence` — if `Some(i)`, the i-th positive literal reads
    ///   from `delta` instead of `total` (the semi-naive restriction),
    /// * `universe` — range of variables not bound by positive literals.
    ///
    /// Negative literals are tested against `total` (complete for their
    /// strata by the stratification invariant) unless this evaluator was
    /// built with [`RuleEvaluator::envelope`].
    pub fn emit(
        &self,
        total: &Database,
        delta: &Database,
        delta_occurrence: Option<usize>,
        universe: &[ConstSym],
        out: &mut Vec<GroundAtom>,
    ) {
        let mut scratch: Vec<ConstSym> = Vec::with_capacity(self.vars.len());
        let result: Result<(), Infallible> = self.for_each_assignment(
            total,
            delta,
            delta_occurrence,
            universe,
            &mut |ev, assignment| {
                if ev.check_negatives {
                    for neg in &ev.negative {
                        if total.contains(&ev.ground_atom(neg, assignment)) {
                            return Ok(());
                        }
                    }
                }
                out.push(ev.ground_atom(&ev.rule.head, assignment));
                Ok(())
            },
            &mut scratch,
        );
        result.unwrap_or_else(|never| match never {});
    }

    /// Enumerates every substitution whose **positive body** is satisfied
    /// in `total` (each exactly once), calling `f` with the assignment in
    /// [`Rule::variables`] order. Negative literals are *not* tested —
    /// this is the relevant grounder's instance enumeration, where
    /// negation is resolved later by `close`. Variables not bound by
    /// positive literals range over `universe`.
    ///
    /// # Errors
    ///
    /// Whatever `f` returns; enumeration stops at the first error.
    pub fn for_each_substitution<E>(
        &self,
        total: &Database,
        universe: &[ConstSym],
        f: &mut impl FnMut(&[ConstSym]) -> Result<(), E>,
    ) -> Result<(), E> {
        let mut scratch: Vec<ConstSym> = Vec::with_capacity(self.vars.len());
        self.for_each_assignment(
            total,
            &Database::new(),
            None,
            universe,
            &mut |_, a| f(a),
            &mut scratch,
        )
    }

    /// The semi-naive variant of [`RuleEvaluator::for_each_substitution`]:
    /// the `delta_occurrence`-th positive literal reads `delta` instead of
    /// `total`, so only substitutions whose body touches the delta at that
    /// occurrence are enumerated. The delta grounder drives this once per
    /// positive occurrence whose predicate gained supportable atoms,
    /// deduplicating across occurrences (the same substitution can match
    /// several delta literals).
    ///
    /// # Errors
    ///
    /// Whatever `f` returns; enumeration stops at the first error.
    pub fn for_each_substitution_delta<E>(
        &self,
        total: &Database,
        delta: &Database,
        delta_occurrence: usize,
        universe: &[ConstSym],
        f: &mut impl FnMut(&[ConstSym]) -> Result<(), E>,
    ) -> Result<(), E> {
        let mut scratch: Vec<ConstSym> = Vec::with_capacity(self.vars.len());
        self.for_each_assignment(
            total,
            delta,
            Some(delta_occurrence),
            universe,
            &mut |_, a| f(a),
            &mut scratch,
        )
    }

    /// The join driver: positive literals matched left to right against
    /// `total`/`delta`, leftover variables enumerated over `universe`,
    /// `f` called once per fully bound assignment.
    fn for_each_assignment<E>(
        &self,
        total: &Database,
        delta: &Database,
        delta_occurrence: Option<usize>,
        universe: &[ConstSym],
        f: &mut impl FnMut(&Self, &[ConstSym]) -> Result<(), E>,
        scratch: &mut Vec<ConstSym>,
    ) -> Result<(), E> {
        let mut subst: Vec<Option<ConstSym>> = vec![None; self.vars.len()];
        self.join(
            0,
            total,
            delta,
            delta_occurrence,
            universe,
            &mut subst,
            f,
            scratch,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn join<E>(
        &self,
        depth: usize,
        total: &Database,
        delta: &Database,
        delta_occurrence: Option<usize>,
        universe: &[ConstSym],
        subst: &mut Vec<Option<ConstSym>>,
        f: &mut impl FnMut(&Self, &[ConstSym]) -> Result<(), E>,
        scratch: &mut Vec<ConstSym>,
    ) -> Result<(), E> {
        if depth == self.positive.len() {
            return self.finish(universe, subst, f, scratch);
        }
        let atom = self.positive[depth];
        let source = if delta_occurrence == Some(depth) {
            Source::Delta
        } else {
            Source::Total
        };
        let db = match source {
            Source::Total => total,
            Source::Delta => delta,
        };
        let Some(rel) = db.relation(atom.pred) else {
            return Ok(()); // empty relation: no matches
        };
        for tuple in rel.iter() {
            let mut trail: Vec<usize> = Vec::new();
            if self.try_match(atom, tuple, subst, &mut trail) {
                self.join(
                    depth + 1,
                    total,
                    delta,
                    delta_occurrence,
                    universe,
                    subst,
                    f,
                    scratch,
                )?;
            }
            for pos in trail {
                subst[pos] = None;
            }
        }
        Ok(())
    }

    fn try_match(
        &self,
        atom: &Atom,
        tuple: &[ConstSym],
        subst: &mut [Option<ConstSym>],
        trail: &mut Vec<usize>,
    ) -> bool {
        debug_assert_eq!(atom.args.len(), tuple.len());
        for (term, &c) in atom.args.iter().zip(tuple.iter()) {
            match term {
                Term::Const(k) => {
                    if *k != c {
                        return false;
                    }
                }
                Term::Var(v) => {
                    let pos = self.var_index[v];
                    match subst[pos] {
                        Some(bound) if bound != c => return false,
                        Some(_) => {}
                        None => {
                            subst[pos] = Some(c);
                            trail.push(pos);
                        }
                    }
                }
            }
        }
        true
    }

    /// All positive literals matched: bind leftover variables over the
    /// universe and hand each full assignment to `f`.
    fn finish<E>(
        &self,
        universe: &[ConstSym],
        subst: &mut [Option<ConstSym>],
        f: &mut impl FnMut(&Self, &[ConstSym]) -> Result<(), E>,
        scratch: &mut Vec<ConstSym>,
    ) -> Result<(), E> {
        let unbound: Vec<usize> = (0..self.vars.len())
            .filter(|&i| subst[i].is_none())
            .collect();
        if unbound.is_empty() {
            scratch.clear();
            scratch.extend(subst.iter().map(|o| o.expect("all bound")));
            return f(self, scratch);
        }
        if universe.is_empty() {
            return Ok(()); // variables with an empty range: no instances
        }
        // Projected-out variables take a single arbitrary witness; the
        // rest are enumerated mixed-radix over the universe.
        let enumerated: Vec<usize> = unbound
            .iter()
            .copied()
            .filter(|&i| self.enumerate[i])
            .collect();
        for &pos in &unbound {
            if !self.enumerate[pos] {
                subst[pos] = Some(universe[0]);
            }
        }
        let mut counter = vec![0usize; enumerated.len()];
        loop {
            for (slot, &pos) in counter.iter().zip(&enumerated) {
                subst[pos] = Some(universe[*slot]);
            }
            scratch.clear();
            scratch.extend(subst.iter().map(|o| o.expect("all bound")));
            let r = f(self, scratch);
            if r.is_err() {
                for &pos in &unbound {
                    subst[pos] = None;
                }
                return r;
            }
            // Advance.
            let mut i = 0;
            loop {
                if i == counter.len() {
                    for &pos in &unbound {
                        subst[pos] = None;
                    }
                    return Ok(());
                }
                counter[i] += 1;
                if counter[i] < universe.len() {
                    break;
                }
                counter[i] = 0;
                i += 1;
            }
        }
    }
}

/// Runs one stratum's rules (`rule_indices` into `program`) to a least
/// fixpoint over `total`, semi-naively. `stratum_preds` are the IDB
/// predicates being computed (delta tracking applies to them).
///
/// `total` is updated in place; the function returns the number of new
/// facts derived.
pub fn evaluate_stratum(
    program: &Program,
    rule_indices: &[usize],
    stratum_preds: &[datalog_ast::PredSym],
    total: &mut Database,
    universe: &[ConstSym],
) -> usize {
    let evaluators: Vec<RuleEvaluator<'_>> = rule_indices
        .iter()
        .map(|&i| RuleEvaluator::new(&program.rules()[i]))
        .collect();
    let in_stratum = |p: datalog_ast::PredSym| -> bool { stratum_preds.contains(&p) };
    run_to_fixpoint(&evaluators, &in_stratum, total, universe)
}

/// The semi-naive driver shared by [`evaluate_stratum`] and the relevant
/// grounder's envelope pass: round 0 evaluates every rule in full, then
/// delta rounds re-join only against new tuples of `in_delta` predicates.
pub(crate) fn run_to_fixpoint(
    evaluators: &[RuleEvaluator<'_>],
    in_delta: &dyn Fn(datalog_ast::PredSym) -> bool,
    total: &mut Database,
    universe: &[ConstSym],
) -> usize {
    let mut derived = 0usize;
    let mut out: Vec<GroundAtom> = Vec::new();

    // Round 0: full evaluation.
    for ev in evaluators {
        ev.emit(total, &Database::new(), None, universe, &mut out);
    }
    let mut delta = Database::new();
    for fact in out.drain(..) {
        if !total.contains(&fact) {
            total.insert(fact.clone()).expect("arity consistent");
            delta.insert(fact).expect("arity consistent");
            derived += 1;
        }
    }

    // Semi-naive rounds.
    while !delta.is_empty() {
        for ev in evaluators {
            for occ in 0..ev.positive_len() {
                if in_delta(ev.positive_pred(occ)) {
                    ev.emit(total, &delta, Some(occ), universe, &mut out);
                }
            }
        }
        let mut next = Database::new();
        for fact in out.drain(..) {
            if !total.contains(&fact) {
                total.insert(fact.clone()).expect("arity consistent");
                next.insert(fact).expect("arity consistent");
                derived += 1;
            }
        }
        delta = next;
    }
    derived
}

/// The *seeded* semi-naive driver: like [`run_to_fixpoint`], but round 0
/// is skipped — the fixpoint is restarted from `total` (assumed already
/// closed under `evaluators` before the seeds arrived) with `seed` as the
/// initial delta. Seeds not already in `total` are inserted. Returns
/// every fact the seeding added to `total` (seeds included) in insertion
/// order — for the delta grounder this is exactly ΔS, the newly
/// supportable atoms.
///
/// `fact_cap` bounds `total` like the relevant grounder's candidate
/// pass: the run aborts with `Err(count reached)` as soon as an
/// insertion pushes past it, instead of materializing an over-budget
/// fixpoint first.
pub(crate) fn run_seeded(
    evaluators: &[RuleEvaluator<'_>],
    total: &mut Database,
    seed: Vec<GroundAtom>,
    universe: &[ConstSym],
    fact_cap: u64,
) -> Result<Vec<GroundAtom>, u64> {
    let mut added: Vec<GroundAtom> = Vec::new();
    let mut delta = Database::new();
    let insert_new = |total: &mut Database,
                      delta: &mut Database,
                      added: &mut Vec<GroundAtom>,
                      fact: GroundAtom| {
        if !total.contains(&fact) {
            total.insert(fact.clone()).expect("arity consistent");
            delta.insert(fact.clone()).expect("arity consistent");
            added.push(fact);
            if total.len() as u64 > fact_cap {
                return Err(total.len() as u64);
            }
        }
        Ok(())
    };
    for fact in seed {
        insert_new(total, &mut delta, &mut added, fact)?;
    }
    let mut out: Vec<GroundAtom> = Vec::new();
    while !delta.is_empty() {
        for ev in evaluators {
            debug_assert!(
                !ev.check_negatives,
                "run_seeded expects envelope evaluators"
            );
            for occ in 0..ev.positive_len() {
                if delta.relation(ev.positive_pred(occ)).is_none() {
                    continue;
                }
                // The fallible join (not `emit`) so a single runaway
                // occurrence aborts mid-enumeration; the buffer holds
                // not-yet-deduplicated heads, so the bound carries a 2×
                // slack rather than the exact cap.
                ev.for_each_substitution_delta::<u64>(total, &delta, occ, universe, &mut |a| {
                    out.push(ev.ground_atom(&ev.rule.head, a));
                    if total.len() as u64 + out.len() as u64 > fact_cap.saturating_mul(2) {
                        return Err(total.len() as u64 + out.len() as u64);
                    }
                    Ok(())
                })?;
            }
        }
        let mut next = Database::new();
        for fact in out.drain(..) {
            insert_new(total, &mut next, &mut added, fact)?;
        }
        delta = next;
    }
    Ok(added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_database, parse_program, PredSym};

    #[test]
    fn transitive_closure() {
        let p = parse_program("t(X, Y) :- e(X, Y).\nt(X, Z) :- t(X, Y), e(Y, Z).").unwrap();
        let mut db = parse_database("e(a, b).\ne(b, c).\ne(c, d).").unwrap();
        let u = Database::universe(&p, &db);
        let n = evaluate_stratum(&p, &[0, 1], &[PredSym::new("t")], &mut db, &u);
        assert_eq!(n, 6); // ab bc cd ac bd ad
        assert!(db.contains(&GroundAtom::from_texts("t", &["a", "d"])));
        assert!(!db.contains(&GroundAtom::from_texts("t", &["d", "a"])));
    }

    #[test]
    fn envelope_ignores_negative_literals() {
        // p(X) :- e(X), not q(X). with q(a) present: the envelope derives
        // p(a) anyway, the strict evaluator does not.
        let p = parse_program("p(X) :- e(X), not q(X).").unwrap();
        let db = parse_database("e(a).\nq(a).").unwrap();
        let u = Database::universe(&p, &db);
        let rule = &p.rules()[0];

        let mut out = Vec::new();
        RuleEvaluator::new(rule).emit(&db, &Database::new(), None, &u, &mut out);
        assert!(out.is_empty());

        RuleEvaluator::envelope(rule).emit(&db, &Database::new(), None, &u, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], GroundAtom::from_texts("p", &["a"]));
    }

    #[test]
    fn substitution_enumeration_is_exact_and_unique() {
        // win(X) :- move(X, Y), not win(Y): one substitution per move
        // tuple, negation not consulted.
        let p = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        let db = parse_database("move(a, b).\nmove(b, c).").unwrap();
        let u = Database::universe(&p, &db);
        let ev = RuleEvaluator::new(&p.rules()[0]);
        let mut seen: Vec<Vec<String>> = Vec::new();
        ev.for_each_substitution::<Infallible>(&db, &u, &mut |a| {
            seen.push(a.iter().map(|c| c.as_str().to_owned()).collect());
            Ok(())
        })
        .unwrap();
        seen.sort();
        assert_eq!(seen, vec![vec!["a", "b"], vec!["b", "c"]]);
    }

    #[test]
    fn substitution_enumeration_ranges_unbound_vars_over_universe() {
        // p ← ¬q(X): X unbound by positives, ranges over U.
        let p = parse_program("p :- not q(X).\nr(a).\nr(b).").unwrap();
        let db = Database::new();
        let u = Database::universe(&p, &db);
        assert_eq!(u.len(), 2);
        let ev = RuleEvaluator::new(&p.rules()[0]);
        let mut count = 0;
        ev.for_each_substitution::<Infallible>(&db, &u, &mut |a| {
            assert_eq!(a.len(), 1);
            count += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(count, 2);
    }

    #[test]
    fn projection_collapses_dont_care_variables() {
        // X occurs only under negation: the envelope derives p once, not
        // |U| duplicate times; the unprojected enumeration still sees
        // both substitutions.
        let p = parse_program("p :- not q(X).\nr(a).\nr(b).").unwrap();
        let db = Database::new();
        let u = Database::universe(&p, &db);
        assert_eq!(u.len(), 2);
        let mut out = Vec::new();
        RuleEvaluator::envelope(&p.rules()[0]).emit(&db, &Database::new(), None, &u, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], GroundAtom::from_texts("p", &[]));
        // With an empty universe the rule still has no instances at all.
        RuleEvaluator::envelope(&p.rules()[0]).emit(&db, &Database::new(), None, &[], &mut out);
        assert_eq!(out.len(), 1); // nothing appended
    }

    #[test]
    fn substitution_enumeration_stops_on_error() {
        let p = parse_program("p(X) :- e(X).").unwrap();
        let db = parse_database("e(a).\ne(b).\ne(c).").unwrap();
        let u = Database::universe(&p, &db);
        let ev = RuleEvaluator::new(&p.rules()[0]);
        let mut count = 0u32;
        let r = ev.for_each_substitution(&db, &u, &mut |_| {
            count += 1;
            if count == 2 {
                Err("stop")
            } else {
                Ok(())
            }
        });
        assert_eq!(r, Err("stop"));
        assert_eq!(count, 2);
    }
}
