//! The join-based relevant grounder ([`GroundMode::Relevant`]).
//!
//! Instead of enumerating all |U|^k substitutions per rule, this grounder
//! computes the **supportable set** S — the greatest set of ground atoms
//! with
//!
//! ```text
//! S = Δ ∪ { head(rσ) : rule r, substitution σ, positive body of rσ ⊆ S }
//! ```
//!
//! and emits exactly the rule instances whose positive body lies in S,
//! into a sparse interned [`AtomTable`](crate::AtomTable). S is precisely
//! the set of atoms that survive the EDB-false/unsupported cascade of
//! `close(M₀, G)` (operations 2 and 4 on the full graph): everything the
//! relevant grounder omits is deleted and decided **false** by the very
//! first close round, so the post-close residual graph — and with it
//! every semantics in this workspace — is identical to Full mode's (see
//! the [`crate::grounder`] module docs for the argument, and the
//! differential property suites for the evidence). Note S is a
//! *greatest* fixpoint: a positive loop like `p ← p` survives `close`
//! (its rule node keeps its incoming edge), so it must be grounded even
//! though no least-model computation ever derives `p`.
//!
//! The computation is three join passes over [`RuleEvaluator`]s:
//!
//! 1. **Candidates** — each rule joined on its positive *EDB* literals
//!    only ([`RuleEvaluator::edb_skeleton`]), other variables ranging
//!    over U: a pre-fixpoint T̂ ⊇ S, never larger than the dense atom
//!    space.
//! 2. **Downward iteration** — the positive-envelope operator
//!    ([`RuleEvaluator::envelope`]) applied repeatedly from T̂ until it
//!    stabilizes; by Knaster–Tarski the limit is S.
//! 3. **Emission** — each rule's positive body joined against S
//!    ([`RuleEvaluator::for_each_substitution`]), each satisfying
//!    substitution emitted exactly once; head and body atoms (including
//!    negative literals, so the instance is the paper's untruncated rule
//!    node) are interned on first touch. Δ's facts are interned first so
//!    the initial model M₀(Δ) is fully representable.

use datalog_ast::{ConstSym, Database, GroundAtom, Program, Sign};

use crate::atoms::{AtomId, AtomInterner, MAX_ATOM_SPACE};
use crate::graph::{GroundGraph, GroundRule};
use crate::grounder::{GroundConfig, GroundError, GroundMode};
use crate::seminaive::RuleEvaluator;

/// Grounds `program` against `database` relevantly. See the module docs.
pub(crate) fn ground_relevant(
    program: &Program,
    database: &Database,
    config: &GroundConfig,
) -> Result<GroundGraph, GroundError> {
    Ok(ground_relevant_parts(program, database, config)?.0)
}

/// [`ground_relevant`] also handing back the supportable set S — the
/// incremental session stores it so delta grounding can extend it
/// without recomputing the gfp from scratch.
pub(crate) fn ground_relevant_parts(
    program: &Program,
    database: &Database,
    config: &GroundConfig,
) -> Result<(GroundGraph, Database), GroundError> {
    debug_assert_eq!(config.mode, GroundMode::Relevant);
    let universe = Database::universe(program, database);
    let supportable = supportable_set(program, database, config, &universe)?;
    let graph = emit_instances(program, database, config, &universe, &supportable)?;
    Ok((graph, supportable))
}

/// The number of database facts about predicates the program never
/// mentions: they sit in the databases we join against but never become
/// atoms, so budget arithmetic must discount them.
pub(crate) fn ignored_fact_count(program: &Program, database: &Database) -> u64 {
    database
        .facts()
        .filter(|f| program.arity(f.pred).is_none())
        .count() as u64
}

/// Passes 1 + 2: the supportable set S (see the module docs).
pub(crate) fn supportable_set(
    program: &Program,
    database: &Database,
    config: &GroundConfig,
    universe: &[ConstSym],
) -> Result<Database, GroundError> {
    let atom_budget = config.max_atoms.min(MAX_ATOM_SPACE);
    let ignored_facts = ignored_fact_count(program, database);
    let fact_cap = atom_budget.saturating_add(ignored_facts);
    let too_many = |count: u64| GroundError::TooManyAtoms {
        required: count.saturating_sub(ignored_facts),
        budget: config.max_atoms,
    };

    // Pass 1: candidate heads T̂ — join each rule on its positive EDB
    // literals only, streaming each head straight into the candidate
    // database so memory stays bounded by the atom budget (T̂ never
    // exceeds the dense atom space Σ |U|^arity, so an instance Full mode
    // accepts is never rejected here).
    let mut pass1 = tiebreak_trace::span("ground", "candidates_pass", &[]);
    let skeletons: Vec<RuleEvaluator<'_>> = program
        .rules()
        .iter()
        .map(|r| RuleEvaluator::edb_skeleton(r, program))
        .collect();
    let mut candidates = database.clone();
    for (rule, ev) in program.rules().iter().zip(&skeletons) {
        ev.for_each_substitution::<GroundError>(database, universe, &mut |assignment| {
            candidates
                .insert(ev.ground_atom(&rule.head, assignment))
                .expect("arity consistent");
            if candidates.len() as u64 > fact_cap {
                return Err(too_many(candidates.len() as u64));
            }
            Ok(())
        })?;
    }
    pass1.arg("candidates", candidates.len() as u64);
    drop(pass1);

    // Pass 2: downward iteration of the positive-envelope operator from
    // T̂ to its greatest fixpoint S. Each round discards atoms whose
    // every support needed an atom discarded earlier; Δ is re-seeded
    // every round (M₀ makes its atoms true regardless of rules). The
    // rounds only shrink (F(X) ⊆ X from a pre-fixpoint), so the cap
    // check is purely defensive.
    let mut pass2 = tiebreak_trace::span("ground", "envelope_pass", &[]);
    let envelopes: Vec<RuleEvaluator<'_>> = program
        .rules()
        .iter()
        .map(RuleEvaluator::envelope)
        .collect();
    let mut supportable = candidates;
    let mut rounds: u64 = 0;
    loop {
        rounds += 1;
        let mut next = database.clone();
        for (rule, ev) in program.rules().iter().zip(&envelopes) {
            ev.for_each_substitution::<GroundError>(&supportable, universe, &mut |assignment| {
                next.insert(ev.ground_atom(&rule.head, assignment))
                    .expect("arity consistent");
                if next.len() as u64 > fact_cap {
                    return Err(too_many(next.len() as u64));
                }
                Ok(())
            })?;
        }
        let stable = next == supportable;
        supportable = next;
        if stable {
            break;
        }
    }
    pass2.arg("rounds", rounds);
    pass2.arg("supportable", supportable.len() as u64);
    Ok(supportable)
}

/// Pass 3: emit every instance whose positive body lies in S.
pub(crate) fn emit_instances(
    program: &Program,
    database: &Database,
    config: &GroundConfig,
    universe: &[ConstSym],
    supportable: &Database,
) -> Result<GroundGraph, GroundError> {
    let _span = tiebreak_trace::span("ground", "emit_pass", &[]);
    let mut interner = AtomInterner::new(universe.to_vec(), config.max_atoms);
    let mut delta_facts: Vec<GroundAtom> = database
        .facts()
        .filter(|f| program.arity(f.pred).is_some())
        .collect();
    delta_facts.sort_unstable(); // deterministic ids for Δ
    for fact in &delta_facts {
        interner
            .intern(fact)
            .map_err(|ov| GroundError::TooManyAtoms {
                required: ov.required,
                budget: config.max_atoms,
            })?;
    }

    let budget = config.max_rule_instances;
    let mut rules_out: Vec<GroundRule> = Vec::new();
    let mut emitted: u64 = 0;

    for (rule_index, rule) in program.rules().iter().enumerate() {
        let ev = RuleEvaluator::new(rule);
        ev.for_each_substitution::<GroundError>(supportable, universe, &mut |assignment| {
            if config.prune_decided {
                // Positive literals are satisfied in S by
                // construction (EDB positives ∈ Δ); only a negative
                // literal on a Δ fact can be M₀-false here.
                for lit in &rule.body {
                    if lit.sign == Sign::Neg
                        && database.contains(&ev.ground_atom(&lit.atom, assignment))
                    {
                        return Ok(());
                    }
                }
            }
            emitted += 1;
            if emitted > budget {
                // Abort rather than walking the rest of the space;
                // the error reports the count reached (a lower
                // bound on the true requirement).
                return Err(GroundError::TooManyRuleInstances {
                    required: emitted,
                    budget,
                });
            }
            let mut intern = |atom: &GroundAtom| -> Result<AtomId, GroundError> {
                interner
                    .intern(atom)
                    .map_err(|ov| GroundError::TooManyAtoms {
                        required: ov.required,
                        budget: config.max_atoms,
                    })
            };
            let head = intern(&ev.ground_atom(&rule.head, assignment))?;
            let body = rule
                .body
                .iter()
                .map(|lit| Ok((intern(&ev.ground_atom(&lit.atom, assignment))?, lit.sign)))
                .collect::<Result<Box<[(AtomId, Sign)]>, GroundError>>()?;
            rules_out.push(GroundRule {
                head,
                body,
                rule_index: rule_index as u32,
                subst: assignment.into(),
            });
            Ok(())
        })?;
    }

    Ok(GroundGraph::from_parts(interner.finish(), rules_out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grounder::ground;
    use datalog_ast::{parse_database, parse_program};

    fn relevant() -> GroundConfig {
        GroundConfig {
            mode: GroundMode::Relevant,
            ..GroundConfig::default()
        }
    }

    #[test]
    fn win_move_grounds_to_supportable_instances_only() {
        let p = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        let d = parse_database("move(a, b).\nmove(b, c).").unwrap();
        let g = ground(&p, &d, &relevant()).unwrap();
        // One instance per move tuple (vs 9 in Full mode).
        assert_eq!(g.rule_count(), 2);
        // Atoms: 2 Δ move facts + win(a), win(b), win(c) (vs 12).
        assert_eq!(g.atom_count(), 5);
        assert!(g.atoms().is_sparse());
        for rule in g.rules() {
            let (mv, sign) = rule.body[0];
            assert_eq!(sign, Sign::Pos);
            assert!(d.contains(&g.atoms().decode(mv)));
        }
    }

    #[test]
    fn positive_loops_survive_relevance() {
        // close(M₀) leaves p ← p, ¬q and q ← q, ¬p fully intact, so the
        // relevant grounder must not discard them (gfp, not lfp).
        let p = parse_program("p :- p, not q.\nq :- q, not p.").unwrap();
        let g = ground(&p, &Database::new(), &relevant()).unwrap();
        assert_eq!(g.rule_count(), 2);
        assert_eq!(g.atom_count(), 2);
    }

    #[test]
    fn unsupportable_chains_are_discarded() {
        // a ← b, b ← c: no base case, both unfounded *and* unsupported —
        // close falsifies both, so relevance drops everything.
        let p = parse_program("a :- b.\nb :- c.\nc :- d.").unwrap();
        let g = ground(&p, &Database::new(), &relevant()).unwrap();
        assert_eq!(g.rule_count(), 0);
        assert_eq!(g.atom_count(), 0);
    }

    #[test]
    fn delta_facts_are_always_represented() {
        // A Δ fact no rule touches must still be in the atom table (it is
        // true in every model).
        let p = parse_program("p(X) :- e(X).").unwrap();
        let d = parse_database("e(a).\np(zz).").unwrap();
        let g = ground(&p, &d, &relevant()).unwrap();
        assert!(g
            .atoms()
            .id_of(&datalog_ast::GroundAtom::from_texts("p", &["zz"]))
            .is_some());
    }

    #[test]
    fn negative_literal_atoms_are_interned() {
        // ¬q(a) occurs in a supportable instance: q(a) must be a node
        // even though nothing derives it (close makes it false).
        let p = parse_program("p(X) :- e(X), not q(X).").unwrap();
        let d = parse_database("e(a).").unwrap();
        let g = ground(&p, &d, &relevant()).unwrap();
        let qa = g
            .atoms()
            .id_of(&datalog_ast::GroundAtom::from_texts("q", &["a"]))
            .unwrap();
        assert!(g.heads_of(qa).is_empty());
        assert_eq!(g.uses_of(qa).len(), 1);
    }

    #[test]
    fn relevant_instance_budget_reports_real_count() {
        let p = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        let d = parse_database("move(a, b).\nmove(b, c).").unwrap();
        let err = ground(
            &p,
            &d,
            &GroundConfig {
                max_rule_instances: 1,
                mode: GroundMode::Relevant,
                ..GroundConfig::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                GroundError::TooManyRuleInstances {
                    required: 2,
                    budget: 1
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn relevant_mode_composes_with_prune_decided() {
        let p = parse_program("p(X) :- e(X), not q(X).").unwrap();
        let d = parse_database("e(a).\ne(b).\nq(a).").unwrap();
        let plain = ground(&p, &d, &relevant()).unwrap();
        let pruned = ground(
            &p,
            &d,
            &GroundConfig {
                prune_decided: true,
                mode: GroundMode::Relevant,
                ..GroundConfig::default()
            },
        )
        .unwrap();
        // ¬q(a) is false under M₀ (q(a) ∈ Δ): pruning drops that instance.
        assert_eq!(plain.rule_count(), 2);
        assert_eq!(pruned.rule_count(), 1);
    }

    #[test]
    fn candidate_pass_respects_the_atom_budget() {
        // All-IDB body: the EDB skeleton binds nothing, so the candidate
        // space for big/3 is |U|³ = 125000 — the streaming cap must turn
        // that into a prompt TooManyAtoms, not an OOM.
        let p = parse_program(
            "big(X, Y, Z) :- p(X), q(Y), r(Z).\np(X) :- e(X).\nq(X) :- e(X).\nr(X) :- e(X).",
        )
        .unwrap();
        let mut d = datalog_ast::Database::new();
        for i in 0..50 {
            d.insert(datalog_ast::GroundAtom::from_texts(
                "e",
                &[&format!("c{i}")],
            ))
            .expect("facts");
        }
        let err = ground(
            &p,
            &d,
            &GroundConfig {
                max_atoms: 1000,
                mode: GroundMode::Relevant,
                ..GroundConfig::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, GroundError::TooManyAtoms { required, budget: 1000 } if required > 1000),
            "{err:?}"
        );
    }

    #[test]
    fn dont_care_variables_do_not_blow_up_candidate_generation() {
        // X1..X4 appear only under negation: the head-projection gives
        // them one witness each during candidate/envelope passes, while
        // instance emission still enumerates them (|U|⁴ = 16 instances).
        let p = parse_program("p :- not q(X1), not q(X2), not q(X3), not q(X4).").unwrap();
        // e is not a program predicate: its facts only contribute the
        // constants a, b to the universe.
        let d = parse_database("e(a).\ne(b).").unwrap();
        let g = ground(&p, &d, &relevant()).unwrap();
        assert_eq!(g.rule_count(), 16);
        // Atoms: p, q(a), q(b).
        assert_eq!(g.atom_count(), 3);
    }

    #[test]
    fn propositional_facts_fire() {
        let p = parse_program("p(a).\nq(X) :- p(X).").unwrap();
        let g = ground(&p, &Database::new(), &relevant()).unwrap();
        // p(a) is a bodiless instance; q(a) :- p(a) is supportable.
        assert_eq!(g.rule_count(), 2);
        assert_eq!(g.atom_count(), 2);
    }
}
