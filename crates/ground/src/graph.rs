//! The ground graph *G(Π, Δ)*.
//!
//! Paper, Section 2: a bipartite directed graph with predicate nodes (all
//! ground atoms over *U*, see [`AtomTable`]) and rule nodes (one per rule
//! per substitution of its variables by constants of *U*), a positive edge
//! from each rule node to its instantiated head, and a signed edge from
//! each instantiated body atom to the rule node.
//!
//! Rule nodes carry provenance (source rule index and substitution) so
//! interpreters can explain derivations.

use datalog_ast::{ConstSym, Program, Sign};

use crate::atoms::{AtomId, AtomTable};

/// Identifier of a rule node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RuleId(pub u32);

impl RuleId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One rule node: an instantiation `r(a₁, …, a_k)` of a source rule.
#[derive(Clone, Debug)]
pub struct GroundRule {
    /// The instantiated head atom.
    pub head: AtomId,
    /// The instantiated body: `(atom, sign)` per literal, in source order.
    /// The same atom may occur several times (even with both signs).
    pub body: Box<[(AtomId, Sign)]>,
    /// Index of the source rule in the program.
    pub rule_index: u32,
    /// The substitution: constants assigned to the rule's variables in
    /// [`datalog_ast::Rule::variables`] order. Empty for variable-free
    /// rules.
    pub subst: Box<[ConstSym]>,
}

/// The ground graph: atoms (via the table) plus rule nodes and their
/// incidence lists.
#[derive(Clone, Debug)]
pub struct GroundGraph {
    atoms: AtomTable,
    rules: Vec<GroundRule>,
    /// For each atom: the rule nodes in whose body it occurs, with sign.
    atom_uses: Vec<Vec<(RuleId, Sign)>>,
    /// For each atom: the rule nodes whose head it is.
    atom_heads: Vec<Vec<RuleId>>,
}

impl GroundGraph {
    /// Assembles a ground graph from its parts. `rules` must reference
    /// only atoms of `atoms`. (Normally called via [`crate::ground`].)
    pub fn from_parts(atoms: AtomTable, rules: Vec<GroundRule>) -> Self {
        let mut atom_uses: Vec<Vec<(RuleId, Sign)>> = vec![Vec::new(); atoms.len()];
        let mut atom_heads: Vec<Vec<RuleId>> = vec![Vec::new(); atoms.len()];
        for (i, rule) in rules.iter().enumerate() {
            let id = RuleId(i as u32);
            atom_heads[rule.head.index()].push(id);
            for &(a, s) in rule.body.iter() {
                atom_uses[a.index()].push((id, s));
            }
        }
        GroundGraph {
            atoms,
            rules,
            atom_uses,
            atom_heads,
        }
    }

    /// The atom table (predicate nodes).
    pub fn atoms(&self) -> &AtomTable {
        &self.atoms
    }

    /// Number of atom nodes.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// The rule nodes.
    pub fn rules(&self) -> &[GroundRule] {
        &self.rules
    }

    /// Number of rule nodes.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// The rule node with id `r`.
    pub fn rule(&self, r: RuleId) -> &GroundRule {
        &self.rules[r.index()]
    }

    /// The body occurrences of `atom` across all rule nodes.
    pub fn uses_of(&self, atom: AtomId) -> &[(RuleId, Sign)] {
        &self.atom_uses[atom.index()]
    }

    /// The rule nodes whose head is `atom`.
    pub fn heads_of(&self, atom: AtomId) -> &[RuleId] {
        &self.atom_heads[atom.index()]
    }

    /// Total number of edges (head edges + body edges).
    pub fn edge_count(&self) -> usize {
        self.rules.len() + self.rules.iter().map(|r| r.body.len()).sum::<usize>()
    }

    /// Pretty-prints a rule node as `rule#i[subst]: head :- body`.
    pub fn describe_rule(&self, program: &Program, r: RuleId) -> String {
        use std::fmt::Write as _;
        let rule = self.rule(r);
        let src = &program.rules()[rule.rule_index as usize];
        let vars = src.variables();
        let mut s = format!("r{}", rule.rule_index);
        if !rule.subst.is_empty() {
            s.push('[');
            for (i, (v, c)) in vars.iter().zip(rule.subst.iter()).enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{v}={c}");
            }
            s.push(']');
        }
        let _ = write!(s, ": {}", self.atoms.decode(rule.head));
        if !rule.body.is_empty() {
            s.push_str(" :- ");
            for (i, &(a, sign)) in rule.body.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                if sign.is_neg() {
                    s.push_str("not ");
                }
                let _ = write!(s, "{}", self.atoms.decode(a));
            }
        }
        s
    }
}
