//! The ground graph *G(Π, Δ)*.
//!
//! Paper, Section 2: a bipartite directed graph with predicate nodes (all
//! ground atoms over *U*, see [`AtomTable`]) and rule nodes (one per rule
//! per substitution of its variables by constants of *U*), a positive edge
//! from each rule node to its instantiated head, and a signed edge from
//! each instantiated body atom to the rule node.
//!
//! Rule nodes carry provenance (source rule index and substitution) so
//! interpreters can explain derivations.
//!
//! The graph is **extendable**: the delta grounder of the incremental
//! session appends newly supportable atoms ([`GroundGraph::intern_atom`])
//! and rule instances ([`GroundGraph::push_rule`]) after the initial
//! build, and [`GroundGraph::forward_cone`] computes the set of nodes a
//! mutation can possibly affect — the forward closure along graph edges
//! (body atom → rule node → head atom), which is exactly how far `close`
//! propagation can travel.

use datalog_ast::{ConstSym, GroundAtom, Program, Sign};

use crate::atoms::{AtomId, AtomSpaceOverflow, AtomTable};

/// Identifier of a rule node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RuleId(pub u32);

impl RuleId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One rule node: an instantiation `r(a₁, …, a_k)` of a source rule.
#[derive(Clone, Debug)]
pub struct GroundRule {
    /// The instantiated head atom.
    pub head: AtomId,
    /// The instantiated body: `(atom, sign)` per literal, in source order.
    /// The same atom may occur several times (even with both signs).
    pub body: Box<[(AtomId, Sign)]>,
    /// Index of the source rule in the program.
    pub rule_index: u32,
    /// The substitution: constants assigned to the rule's variables in
    /// [`datalog_ast::Rule::variables`] order. Empty for variable-free
    /// rules.
    pub subst: Box<[ConstSym]>,
}

/// The forward cone of a mutation: the nodes reachable from the changed
/// atoms (and any freshly appended rule instances) along graph edges.
/// See [`GroundGraph::forward_cone`].
#[derive(Clone, Debug)]
pub struct Cone {
    /// Member atoms, in discovery order.
    pub atoms: Vec<AtomId>,
    /// Member rule nodes, in discovery order.
    pub rules: Vec<RuleId>,
    /// Membership bitmap over all atoms.
    pub atom_in: Vec<bool>,
    /// Membership bitmap over all rule nodes.
    pub rule_in: Vec<bool>,
}

/// Resident-size accounting for one prepared [`GroundGraph`] — what a
/// serving tier's admission control and LRU eviction budget against.
/// See [`GroundGraph::footprint`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphFootprint {
    /// Atom (predicate) nodes.
    pub atoms: usize,
    /// Rule nodes.
    pub rules: usize,
    /// Graph edges (head + body).
    pub edges: usize,
    /// Approximate resident bytes of the graph's dominant allocations.
    pub approx_bytes: usize,
}

/// The ground graph: atoms (via the table) plus rule nodes and their
/// incidence lists.
#[derive(Clone, Debug)]
pub struct GroundGraph {
    atoms: AtomTable,
    rules: Vec<GroundRule>,
    /// For each atom: the rule nodes in whose body it occurs, with sign.
    atom_uses: Vec<Vec<(RuleId, Sign)>>,
    /// For each atom: the rule nodes whose head it is.
    atom_heads: Vec<Vec<RuleId>>,
}

impl GroundGraph {
    /// Assembles a ground graph from its parts. `rules` must reference
    /// only atoms of `atoms`. (Normally called via [`crate::ground`].)
    pub fn from_parts(atoms: AtomTable, rules: Vec<GroundRule>) -> Self {
        let mut atom_uses: Vec<Vec<(RuleId, Sign)>> = vec![Vec::new(); atoms.len()];
        let mut atom_heads: Vec<Vec<RuleId>> = vec![Vec::new(); atoms.len()];
        for (i, rule) in rules.iter().enumerate() {
            let id = RuleId(i as u32);
            atom_heads[rule.head.index()].push(id);
            for &(a, s) in &rule.body {
                atom_uses[a.index()].push((id, s));
            }
        }
        GroundGraph {
            atoms,
            rules,
            atom_uses,
            atom_heads,
        }
    }

    /// The atom table (predicate nodes).
    pub fn atoms(&self) -> &AtomTable {
        &self.atoms
    }

    /// Number of atom nodes.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// The rule nodes.
    pub fn rules(&self) -> &[GroundRule] {
        &self.rules
    }

    /// Number of rule nodes.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// The rule node with id `r`.
    pub fn rule(&self, r: RuleId) -> &GroundRule {
        &self.rules[r.index()]
    }

    /// The body occurrences of `atom` across all rule nodes.
    pub fn uses_of(&self, atom: AtomId) -> &[(RuleId, Sign)] {
        &self.atom_uses[atom.index()]
    }

    /// The rule nodes whose head is `atom`.
    pub fn heads_of(&self, atom: AtomId) -> &[RuleId] {
        &self.atom_heads[atom.index()]
    }

    /// Total number of edges (head edges + body edges).
    pub fn edge_count(&self) -> usize {
        self.rules.len() + self.rules.iter().map(|r| r.body.len()).sum::<usize>()
    }

    /// The graph's resident-size accounting: node/edge counts plus an
    /// approximate byte estimate of the dominant allocations (rule
    /// bodies and substitutions, incidence lists, atom-table spines).
    ///
    /// This is the unit a serving tier budgets prepared sessions in —
    /// the same graph the ground budgets ([`crate::GroundConfig`]) cap
    /// at build time, re-measured as delta grounding grows it.
    pub fn footprint(&self) -> GraphFootprint {
        let atoms = self.atom_count();
        let rules = self.rule_count();
        let edges = self.edge_count();
        let subst_consts: usize = self.rules.iter().map(|r| r.subst.len()).sum();
        // Per atom: decode entry + index slot + two adjacency spines.
        // Per rule: the GroundRule header + two boxed-slice headers.
        // Per edge: a body slot plus its incidence-list mirror.
        let approx_bytes = atoms * 64 + rules * 72 + edges * 16 + subst_consts * 4;
        GraphFootprint {
            atoms,
            rules,
            edges,
            approx_bytes,
        }
    }

    /// Interns a new atom into a sparse table (see
    /// [`AtomTable::intern`]), growing the incidence lists so the new id
    /// is immediately addressable.
    ///
    /// # Errors
    ///
    /// [`AtomSpaceOverflow`] past the `max_atoms` budget.
    ///
    /// # Panics
    ///
    /// If the atom table uses the dense layout.
    pub fn intern_atom(
        &mut self,
        atom: &GroundAtom,
        max_atoms: u64,
    ) -> Result<AtomId, AtomSpaceOverflow> {
        let id = self.atoms.intern(atom, max_atoms)?;
        while self.atom_uses.len() < self.atoms.len() {
            self.atom_uses.push(Vec::new());
            self.atom_heads.push(Vec::new());
        }
        Ok(id)
    }

    /// Appends a rule node, wiring its head and body incidence. All of
    /// its atoms must already be in the table.
    pub fn push_rule(&mut self, rule: GroundRule) -> RuleId {
        let id = RuleId(u32::try_from(self.rules.len()).expect("rule ids fit u32 within budget"));
        self.atom_heads[rule.head.index()].push(id);
        for &(a, s) in &rule.body {
            self.atom_uses[a.index()].push((id, s));
        }
        self.rules.push(rule);
        id
    }

    /// The forward closure of `seed_atoms` ∪ `seed_rules` along graph
    /// edges (body atom → rule node → head atom): every node whose
    /// `close` state a change at the seeds could possibly influence.
    /// Nodes are collected dead or alive — a mutation can *revive*
    /// previously deleted nodes, so the cone must be computed on the
    /// static graph.
    pub fn forward_cone(
        &self,
        seed_atoms: impl IntoIterator<Item = AtomId>,
        seed_rules: impl IntoIterator<Item = RuleId>,
    ) -> Cone {
        let mut cone = Cone {
            atoms: Vec::new(),
            rules: Vec::new(),
            atom_in: vec![false; self.atom_count()],
            rule_in: vec![false; self.rule_count()],
        };
        let mut atom_stack: Vec<AtomId> = Vec::new();
        let mut rule_stack: Vec<RuleId> = Vec::new();
        for a in seed_atoms {
            if !cone.atom_in[a.index()] {
                cone.atom_in[a.index()] = true;
                atom_stack.push(a);
            }
        }
        for r in seed_rules {
            if !cone.rule_in[r.index()] {
                cone.rule_in[r.index()] = true;
                rule_stack.push(r);
            }
        }
        loop {
            if let Some(a) = atom_stack.pop() {
                cone.atoms.push(a);
                for &(r, _) in self.uses_of(a) {
                    if !cone.rule_in[r.index()] {
                        cone.rule_in[r.index()] = true;
                        rule_stack.push(r);
                    }
                }
            } else if let Some(r) = rule_stack.pop() {
                cone.rules.push(r);
                let head = self.rule(r).head;
                if !cone.atom_in[head.index()] {
                    cone.atom_in[head.index()] = true;
                    atom_stack.push(head);
                }
            } else {
                break;
            }
        }
        cone
    }

    /// Pretty-prints a rule node as `rule#i[subst]: head :- body`.
    pub fn describe_rule(&self, program: &Program, r: RuleId) -> String {
        use std::fmt::Write as _;
        let rule = self.rule(r);
        let src = &program.rules()[rule.rule_index as usize];
        let vars = src.variables();
        let mut s = format!("r{}", rule.rule_index);
        if !rule.subst.is_empty() {
            s.push('[');
            for (i, (v, c)) in vars.iter().zip(rule.subst.iter()).enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{v}={c}");
            }
            s.push(']');
        }
        let _ = write!(s, ": {}", self.atoms.decode(rule.head));
        if !rule.body.is_empty() {
            s.push_str(" :- ");
            for (i, &(a, sign)) in rule.body.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                if sign.is_neg() {
                    s.push_str("not ");
                }
                let _ = write!(s, "{}", self.atoms.decode(a));
            }
        }
        s
    }
}
