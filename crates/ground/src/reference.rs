//! Naive reference implementations — executable specifications.
//!
//! The worklist [`Closer`](crate::Closer) is the production engine; this
//! module re-implements `close(M, G)` and the largest unfounded set
//! *literally from the paper's prose*, scanning the whole graph on every
//! round. They are quadratic and exist to cross-validate the incremental
//! engine (see the property tests), not to be fast.

// The reference scans by index on purpose — it mirrors the paper's "for
// each node" prose and keeps the borrow structure trivial.
#![allow(clippy::needless_range_loop)]

use datalog_ast::Sign;

use crate::atoms::AtomId;
use crate::close::CloseConflict;
use crate::graph::{GroundGraph, RuleId};
use crate::model::{PartialModel, TruthValue};

/// The residual graph left by [`naive_close`]: which nodes are still in G.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResidualGraph {
    /// `atom_in[a]` — the atom node is still in the graph.
    pub atom_in: Vec<bool>,
    /// `rule_in[r]` — the rule node is still in the graph.
    pub rule_in: Vec<bool>,
}

/// Literal implementation of the paper's `close(M, G)`: apply the four
/// operations until none is applicable, scanning everything each round.
///
/// # Errors
///
/// [`CloseConflict`] if a rule with no incoming edges fires onto an atom
/// already false (possible only when the caller pre-assigned values that
/// `close` contradicts).
pub fn naive_close(
    graph: &GroundGraph,
    model: &mut PartialModel,
) -> Result<ResidualGraph, CloseConflict> {
    let mut atom_in = vec![true; graph.atom_count()];
    let mut rule_in = vec![true; graph.rule_count()];

    loop {
        let mut changed = false;

        // Ops 1 and 2: a defined atom is deleted from G, along with every
        // rule node whose corresponding body literal it falsifies.
        for i in 0..graph.atom_count() {
            let id = AtomId(i as u32);
            if !atom_in[i] || !model.get(id).is_defined() {
                continue;
            }
            atom_in[i] = false;
            changed = true;
            for &(rule, sign) in graph.uses_of(id) {
                if !rule_in[rule.index()] {
                    continue;
                }
                let literal_false = matches!(
                    (model.get(id), sign),
                    (TruthValue::True, Sign::Neg) | (TruthValue::False, Sign::Pos)
                );
                if literal_false {
                    rule_in[rule.index()] = false;
                }
            }
        }

        // Op 3: a rule node with no incoming edges fires.
        for r in 0..graph.rule_count() {
            if !rule_in[r] {
                continue;
            }
            let rule = graph.rule(RuleId(r as u32));
            let no_incoming = rule.body.iter().all(|&(a, _)| !atom_in[a.index()]);
            if no_incoming {
                rule_in[r] = false;
                changed = true;
                match model.get(rule.head) {
                    TruthValue::False => return Err(CloseConflict { atom: rule.head }),
                    TruthValue::True => {}
                    TruthValue::Undefined => model.set(rule.head, TruthValue::True),
                }
            }
        }

        // Op 4: an atom with no incoming edges becomes false.
        for i in 0..graph.atom_count() {
            let id = AtomId(i as u32);
            if !atom_in[i] || model.get(id).is_defined() {
                continue;
            }
            let no_incoming = graph.heads_of(id).iter().all(|r| !rule_in[r.index()]);
            if no_incoming {
                model.set(id, TruthValue::False);
                changed = true;
                // Deletion happens on the next round via op 1/2.
            }
        }

        if !changed {
            return Ok(ResidualGraph { atom_in, rule_in });
        }
    }
}

/// Literal implementation of the largest unfounded set: the maximal set D
/// of residual atoms such that the subgraph of G⁺ induced by D and the
/// rule nodes preceding them has no source. Computed as a greatest
/// fixpoint: repeatedly remove atoms with a source among their rules.
pub fn naive_largest_unfounded(graph: &GroundGraph, residual: &ResidualGraph) -> Vec<AtomId> {
    let mut in_d: Vec<bool> = residual.atom_in.clone();

    loop {
        let mut changed = false;
        for i in 0..graph.atom_count() {
            if !in_d[i] {
                continue;
            }
            let id = AtomId(i as u32);
            // An atom stays in D only if it is not a source itself (some
            // residual rule heads it) and none of those rules is a source
            // (every heading rule positively depends on some atom of D).
            let mut has_rule = false;
            let mut externally_supported = false;
            for &r in graph.heads_of(id) {
                if !residual.rule_in[r.index()] {
                    continue;
                }
                has_rule = true;
                let rule = graph.rule(r);
                let depends_on_d = rule
                    .body
                    .iter()
                    .any(|&(b, s)| s.is_pos() && in_d[b.index()]);
                if !depends_on_d {
                    externally_supported = true;
                    break;
                }
            }
            if !has_rule || externally_supported {
                in_d[i] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    in_d.iter()
        .enumerate()
        .filter(|&(_, &b)| b)
        .map(|(i, _)| AtomId(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::close::Closer;
    use crate::grounder::{ground, GroundConfig};
    use datalog_ast::{parse_database, parse_program};

    fn cross_check(src: &str, db_src: &str) {
        let p = parse_program(src).unwrap();
        let d = parse_database(db_src).unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();

        // Production engine.
        let mut fast_model = PartialModel::initial(&p, &d, g.atoms());
        let mut closer = Closer::new(&g);
        closer.bootstrap(&fast_model);
        closer.run(&mut fast_model).expect("no conflict");
        let fast_unfounded = {
            let mut u = closer.largest_unfounded_set();
            u.sort();
            u
        };

        // Reference.
        let mut naive_model = PartialModel::initial(&p, &d, g.atoms());
        let residual = naive_close(&g, &mut naive_model).expect("no conflict");
        let mut naive_unfounded = naive_largest_unfounded(&g, &residual);
        naive_unfounded.sort();

        assert_eq!(fast_model, naive_model, "close disagreement on {src}");
        assert_eq!(
            fast_unfounded, naive_unfounded,
            "unfounded-set disagreement on {src}"
        );
        // Residual atoms are exactly the undefined ones.
        for i in 0..g.atom_count() {
            assert_eq!(
                residual.atom_in[i],
                !naive_model.get(AtomId(i as u32)).is_defined()
            );
        }
    }

    #[test]
    fn agrees_on_the_paper_examples() {
        cross_check("p :- not q.\nq :- not p.", "");
        cross_check("p :- p, not q.\nq :- q, not p.", "");
        cross_check(
            "p1 :- not p2, not p3.\np2 :- not p1, not p3.\np3 :- not p1, not p2.",
            "",
        );
        cross_check("p(a) :- not p(X), e(b).", "e(b).");
    }

    #[test]
    fn agrees_on_positive_and_stratified_programs() {
        cross_check(
            "t(X, Y) :- e(X, Y).\nt(X, Z) :- t(X, Y), e(Y, Z).",
            "e(a, b).\ne(b, c).",
        );
        cross_check(
            "win(X) :- move(X, Y), not win(Y).",
            "move(a, b).\nmove(b, a).\nmove(c, a).",
        );
    }

    #[test]
    fn naive_conflict_detection() {
        let p = parse_program("p :- e.").unwrap();
        let d = parse_database("e.").unwrap();
        let g = ground(&p, &d, &GroundConfig::default()).unwrap();
        let mut m = PartialModel::initial(&p, &d, g.atoms());
        let pa = g.atoms().atom_id("p".into(), &[]).unwrap();
        m.set(pa, TruthValue::False);
        assert!(naive_close(&g, &mut m).is_err());
    }
}
